// Working-set estimator tests (§4.2).
#include <gtest/gtest.h>

#include "perf/workingset.hpp"
#include "sgxsim/runtime.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::make_enclave;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_touch_some(void);
    public int ecall_touch_more(void);
  };
  untrusted { void ocall_noop(void); };
};
)";

class WorkingSetTest : public testing::Test {
 protected:
  void SetUp() override {
    EnclaveConfig config;
    config.code_pages = 8;
    config.heap_pages = 64;
    config.stack_pages = 4;
    config.tcs_count = 2;
    eid_ = make_enclave(urts_, kEdl, config);
    table_ = make_ocall_table({&empty_ocall});
    Enclave& e = urts_.enclave(eid_);
    e.register_ecall("ecall_touch_some", [](TrustedContext& ctx, void*) {
      const auto base = ctx.enclave().heap_base_page() * kPageSize;
      for (std::uint64_t p = 0; p < 8; ++p) ctx.touch(base + p * kPageSize, 1, MemAccess::kWrite);
      return SgxStatus::kSuccess;
    });
    e.register_ecall("ecall_touch_more", [](TrustedContext& ctx, void*) {
      const auto base = ctx.enclave().heap_base_page() * kPageSize;
      for (std::uint64_t p = 0; p < 32; ++p) ctx.touch(base + p * kPageSize, 1, MemAccess::kWrite);
      return SgxStatus::kSuccess;
    });
  }

  Urts urts_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(WorkingSetTest, CountsTouchedPages) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  // 8 heap pages + code/TCS/stack pages touched on entry.
  const auto pages = ws.accessed_page_count();
  EXPECT_GE(pages, 8u);
  EXPECT_LT(pages, 20u);
  const auto breakdown = ws.breakdown();
  EXPECT_EQ(breakdown.at(PageType::kHeap), 8u);
  EXPECT_GE(breakdown.at(PageType::kCode), 1u);
  ws.stop();
}

TEST_F(WorkingSetTest, WorkingSetIsMuchSmallerThanEnclave) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  // §4.2: guard and padding pages make the enclave much larger than its
  // working set.
  EXPECT_LT(ws.accessed_page_count(), e.total_pages() / 4);
  ws.stop();
}

TEST_F(WorkingSetTest, CheckpointSeparatesPhases) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);  // "start-up": 32 heap pages
  const auto startup = ws.checkpoint();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);  // "steady state": 8 heap pages
  const auto steady = ws.accessed_pages();
  ws.stop();

  // The SecureKeeper pattern: start-up set bigger than the steady-state set.
  EXPECT_GT(startup.size(), steady.size());
  EXPECT_GE(startup.size(), 32u);
  // Re-touched pages are counted again after the checkpoint re-strip.
  bool heap_in_steady = false;
  for (const auto p : steady) heap_in_steady |= e.page_type(p) == PageType::kHeap;
  EXPECT_TRUE(heap_in_steady);
}

TEST_F(WorkingSetTest, EachPageCountedOncePerInterval) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  const auto first = ws.accessed_page_count();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);  // same pages again
  EXPECT_EQ(ws.accessed_page_count(), first);
  ws.stop();
}

TEST_F(WorkingSetTest, StopRestoresPermissions) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  EXPECT_EQ(e.mmu_permissions(0), 0u);
  ws.stop();
  EXPECT_NE(e.mmu_permissions(e.heap_base_page()), 0u);
  // Execution continues untracked after stop.
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(ws.accessed_page_count(), 0u);
}

TEST_F(WorkingSetTest, DestructorRestoresWhenRunning) {
  Enclave& e = urts_.enclave(eid_);
  {
    perf::WorkingSetEstimator ws(e);
    ws.start();
    EXPECT_EQ(e.mmu_permissions(e.heap_base_page()), 0u);
  }
  EXPECT_NE(e.mmu_permissions(e.heap_base_page()), 0u);
}

TEST_F(WorkingSetTest, SummaryMentionsPagesAndTypes) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  const std::string s = ws.summary();
  EXPECT_NE(s.find("pages"), std::string::npos);
  EXPECT_NE(s.find("heap="), std::string::npos);
  ws.stop();
}

TEST_F(WorkingSetTest, BytesMatchPages) {
  Enclave& e = urts_.enclave(eid_);
  perf::WorkingSetEstimator ws(e);
  ws.start();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(ws.accessed_bytes(), ws.accessed_page_count() * kPageSize);
  ws.stop();
}

}  // namespace
