// Binary format v3: the telemetry appendix round-trips byte-identically and
// v2 files (written before the appendix existed) still load cleanly with the
// v3 fields at their defaults.  (save() always writes the current format —
// v5 since the time-series tables landed; tracedb_v5_test.cpp covers those.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tracedb/database.hpp"

namespace {

using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::MetricKind;
using tracedb::TraceDatabase;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

/// Hand-assembles a minimal format-v2 file: magic + six tables (one call,
/// the rest empty) and *no* v3 appendix — byte-for-byte what the previous
/// serializer wrote.
std::string write_v2_file() {
  const std::string path = temp_path("tracedb_v2_compat.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  const auto u8 = [&](std::uint8_t v) { std::fwrite(&v, 1, 1, f); };
  const auto u32 = [&](std::uint32_t v) { std::fwrite(&v, 4, 1, f); };
  const auto u64 = [&](std::uint64_t v) { std::fwrite(&v, 8, 1, f); };
  const auto i64 = [&](std::int64_t v) { std::fwrite(&v, 8, 1, f); };

  std::fwrite("SGXPTRC2", 1, 8, f);
  u64(1);       // calls: one record
  u8(0);        //   type = ecall
  u8(0);        //   kind = generic
  u32(7);       //   thread_id
  u64(1);       //   enclave_id
  u32(3);       //   call_id
  i64(-1);      //   parent = none
  u64(100);     //   start_ns
  u64(4305);    //   end_ns
  u32(2);       //   aex_count
  u64(0);       // aexs: empty
  u64(0);       // paging: empty
  u64(0);       // syncs: empty
  u64(0);       // enclaves: empty
  u64(0);       // call_names: empty
  // v2 ends here: no dropped count, no metric tables.
  std::fclose(f);
  return path;
}

TEST(FormatV3, LoadsV2FilesWithDefaultedTelemetryFields) {
  const std::string path = write_v2_file();
  const TraceDatabase db = TraceDatabase::load(path);
  ASSERT_EQ(db.calls().size(), 1u);
  EXPECT_EQ(db.calls()[0].thread_id, 7u);
  EXPECT_EQ(db.calls()[0].call_id, 3u);
  EXPECT_EQ(db.calls()[0].end_ns, 4305u);
  EXPECT_EQ(db.calls()[0].aex_count, 2u);
  EXPECT_EQ(db.dropped_events(), 0u);
  EXPECT_TRUE(db.metric_series().empty());
  EXPECT_TRUE(db.metric_samples().empty());
  std::filesystem::remove(path);
}

TEST(FormatV3, RejectsUnknownMagic) {
  const std::string path = temp_path("tracedb_bad_magic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("SGXPTRC1", 1, 8, f);
  std::fclose(f);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TraceDatabase build_v3_db() {
  TraceDatabase db;
  CallRecord c;
  c.type = CallType::kEcall;
  c.thread_id = 1;
  c.enclave_id = 1;
  c.call_id = 0;
  c.start_ns = 10;
  c.end_ns = 4215;
  db.add_call(c);

  const auto counter = db.add_metric_series(MetricKind::kCounter, "logger.events", "events");
  const auto gauge = db.add_metric_series(MetricKind::kGauge, "sgxsim.epc_resident", "pages");
  db.add_metric_sample({counter, 1000, 2.0});
  db.add_metric_sample({gauge, 1000, 512.0});
  db.add_metric_sample({counter, 2000, 17.5});  // fractional values survive

  // A real dropped event: seal the shard via merge, then append late.
  auto& shard = db.register_shard(/*owner_thread=*/1);
  db.merge_shards();
  EXPECT_EQ(shard.add_call(c), tracedb::kShardSealed);
  db.merge_shards();  // collects the drop into dropped_events()
  EXPECT_EQ(db.dropped_events(), 1u);
  return db;
}

TEST(FormatV3, RoundTripsByteIdentically) {
  const TraceDatabase original = build_v3_db();
  const std::string path_a = temp_path("tracedb_v3_a.bin");
  const std::string path_b = temp_path("tracedb_v3_b.bin");
  original.save(path_a);

  const TraceDatabase reloaded = TraceDatabase::load(path_a);
  EXPECT_EQ(reloaded.dropped_events(), 1u);
  ASSERT_EQ(reloaded.metric_series().size(), 2u);
  EXPECT_EQ(reloaded.metric_series()[0].name, "logger.events");
  EXPECT_EQ(reloaded.metric_series()[0].kind, MetricKind::kCounter);
  EXPECT_EQ(reloaded.metric_series()[1].name, "sgxsim.epc_resident");
  EXPECT_EQ(reloaded.metric_series()[1].kind, MetricKind::kGauge);
  ASSERT_EQ(reloaded.metric_samples().size(), 3u);
  EXPECT_EQ(reloaded.metric_samples()[0].timestamp_ns, 1000u);
  EXPECT_DOUBLE_EQ(reloaded.metric_samples()[2].value, 17.5);

  reloaded.save(path_b);
  const std::string bytes_a = slurp(path_a);
  const std::string bytes_b = slurp(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(bytes_a.substr(0, 8), "SGXPTRC6");
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

TEST(FormatV3, SeriesRegistrationIsIdempotentByName) {
  TraceDatabase db;
  const auto a = db.add_metric_series(MetricKind::kCounter, "x", "u");
  const auto b = db.add_metric_series(MetricKind::kCounter, "x", "other");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.metric_series().size(), 1u);
  const auto c = db.add_metric_series(MetricKind::kGauge, "y", "");
  EXPECT_NE(a, c);
  EXPECT_EQ(db.metric_series().size(), 2u);
}

}  // namespace
