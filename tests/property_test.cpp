// Cross-module property tests: algebraic invariants checked over randomised
// inputs (seeded — failures reproduce deterministically).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bignum/bignum.hpp"
#include "minidb/db.hpp"
#include "perf/parents.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using bignum::BigNum;
using support::Rng;

// --- statistics ----------------------------------------------------------------

class StatsProperty : public testing::TestWithParam<int> {};

TEST_P(StatsProperty, SummaryInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values;
  const int n = GetParam();
  values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) values.push_back(static_cast<double>(rng.next_below(1'000'000)));
  const auto s = support::summarize(values);

  EXPECT_EQ(s.count, static_cast<std::size_t>(n));
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
  EXPECT_GE(s.stddev, 0.0);
  // The mean really is sum/count.
  double sum = 0;
  for (const double v : values) sum += v;
  EXPECT_NEAR(s.mean, sum / n, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatsProperty, testing::Values(1, 2, 10, 1000, 9999));

TEST(HistogramProperty, TotalMatchesInRangeSamples) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    support::Histogram h(0.0, 1000.0, 1 + rng.next_below(50));
    std::uint64_t in_range = 0;
    for (int i = 0; i < 500; ++i) {
      const double v = static_cast<double>(rng.next_below(1'500));
      if (v <= 1000.0) ++in_range;
      h.add(v);
    }
    EXPECT_EQ(h.total(), in_range);
    std::uint64_t bins_sum = 0;
    for (std::size_t b = 0; b < h.bin_count(); ++b) bins_sum += h.count_at(b);
    EXPECT_EQ(bins_sum, h.total());
  }
}

// --- bignum algebra -----------------------------------------------------------------

class BignumAlgebra : public testing::TestWithParam<int> {};

TEST_P(BignumAlgebra, RingLaws) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  auto next = [&rng] { return rng.next_u64(); };
  const int bits = GetParam();
  for (int iter = 0; iter < 6; ++iter) {
    const BigNum a = BigNum::random(next, bits);
    const BigNum b = BigNum::random(next, bits / 2 + 1);
    const BigNum c = BigNum::random(next, bits / 3 + 1);

    EXPECT_EQ(a.mul(b), b.mul(a));                              // commutativity
    EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));                // associativity
    EXPECT_EQ(a.add(b).mul(c), a.mul(c).add(b.mul(c)));         // distributivity
    EXPECT_EQ(a.mul(BigNum(1)), a);                             // identity
    EXPECT_TRUE(a.mul(BigNum(0)).is_zero());                    // annihilator
    EXPECT_EQ(a.shift_left(13).shift_right(13), a);             // shift inverse
    EXPECT_EQ(a.add(b).sub(b), a);                              // sub inverse
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, BignumAlgebra, testing::Values(64, 200, 521, 1024, 2048));

TEST(BignumAlgebra, ModexpExponentAddition) {
  // a^(x+y) = a^x * a^y (mod n)
  Rng rng(99);
  auto next = [&rng] { return rng.next_u64(); };
  const BigNum a = BigNum::random(next, 256);
  const BigNum n = BigNum::random(next, 256);
  const BigNum x(123456789);
  const BigNum y(987654321);
  const BigNum lhs = a.modexp(x.add(y), n);
  const BigNum rhs = a.modexp(x, n).mul(a.modexp(y, n)).mod(n);
  EXPECT_EQ(lhs, rhs);
}

TEST(BignumAlgebra, HexRoundTripRandom) {
  Rng rng(5);
  auto next = [&rng] { return rng.next_u64(); };
  for (const int bits : {1, 31, 32, 33, 64, 100, 1000}) {
    const BigNum a = BigNum::random(next, bits);
    EXPECT_EQ(BigNum::from_hex(a.to_hex()), a) << bits;
    EXPECT_EQ(a.bit_length(), bits);
  }
}

// --- database vs model (mixed operations) ----------------------------------------------

TEST(DatabaseProperty, MixedOpsMatchStdMap) {
  support::VirtualClock clock;
  minidb::HostVfs vfs(clock);
  minidb::Database db(vfs, "/prop.db");
  std::map<std::string, std::string> model;
  Rng rng(2024);

  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(300));
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 6) {
      const std::string value = rng.next_string(rng.next_in(1, 100));
      db.put(key, value);
      model[key] = value;
    } else if (dice < 8) {
      EXPECT_EQ(db.erase(key), model.erase(key) > 0) << key;
    } else {
      const auto got = db.get(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << key;
      } else {
        EXPECT_EQ(got, it->second) << key;
      }
    }
  }
  EXPECT_EQ(db.size(), model.size());
}

TEST(DatabaseProperty, RollbackIsAtomicOverBatches) {
  support::VirtualClock clock;
  minidb::HostVfs vfs(clock);
  minidb::Database db(vfs, "/atomic.db");
  Rng rng(4);
  std::map<std::string, std::string> committed;

  for (int txn = 0; txn < 30; ++txn) {
    const bool commit = rng.chance(0.5);
    db.begin();
    std::map<std::string, std::string> staged;
    for (int i = 0; i < 20; ++i) {
      const std::string key = "t" + std::to_string(txn) + "-" + std::to_string(i);
      const std::string value = rng.next_string(40);
      db.put_in_txn(key, value);
      staged[key] = value;
    }
    if (commit) {
      db.commit();
      committed.insert(staged.begin(), staged.end());
    } else {
      db.rollback();
    }
  }
  EXPECT_EQ(db.size(), committed.size());
  for (const auto& [k, v] : committed) EXPECT_EQ(db.get(k), v);
}

// --- indirect parents: order invariance within a thread ----------------------------------

TEST(ParentsProperty, IndirectParentIsAlwaysEarlierSameTypeSameParent) {
  Rng rng(11);
  tracedb::TraceDatabase db;
  // Random flat trace: top-level ecalls with nested ocalls.
  std::uint64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    tracedb::CallRecord e;
    e.type = tracedb::CallType::kEcall;
    e.thread_id = static_cast<tracedb::ThreadId>(1 + rng.next_below(3));
    e.enclave_id = 1;
    e.call_id = static_cast<tracedb::CallId>(rng.next_below(4));
    e.start_ns = t;
    e.end_ns = t + 10'000;
    const auto parent = db.add_call(e);
    const std::uint64_t n_ocalls = rng.next_below(3);
    for (std::uint64_t o = 0; o < n_ocalls; ++o) {
      tracedb::CallRecord oc;
      oc.type = tracedb::CallType::kOcall;
      oc.thread_id = e.thread_id;
      oc.enclave_id = 1;
      oc.call_id = static_cast<tracedb::CallId>(rng.next_below(3));
      oc.start_ns = t + 1'000 + o * 2'000;
      oc.end_ns = oc.start_ns + 1'000;
      oc.parent = parent;
      db.add_call(oc);
    }
    t += 20'000;
  }

  const auto indirect = perf::compute_indirect_parents(db);
  const auto& calls = db.calls();
  for (std::size_t i = 0; i < calls.size(); ++i) {
    const auto ip = indirect[i];
    if (ip == tracedb::kNoParent) continue;
    const auto& c = calls[i];
    const auto& p = calls[static_cast<std::size_t>(ip)];
    EXPECT_EQ(p.type, c.type);
    EXPECT_EQ(p.thread_id, c.thread_id);
    EXPECT_EQ(p.parent, c.parent);
    EXPECT_LT(p.start_ns, c.start_ns);
  }
}

}  // namespace
