// minissl tests: error queue, BIO/pipes, handshake + record protocol
// (native), the TaLoS enclave packaging and the nginx/curl exchange.
#include <gtest/gtest.h>

#include "minissl/http.hpp"
#include "minissl/talos.hpp"
#include "perf/logger.hpp"
#include "tracedb/query.hpp"

namespace {

using namespace minissl;

// --- error queue -----------------------------------------------------------------

TEST(ErrQueue, FifoSemantics) {
  ERR_clear_error();
  EXPECT_EQ(ERR_get_error(), 0u);
  ERR_put_error(SslErrorCode::kBadRecordMac);
  ERR_put_error(SslErrorCode::kProtocolViolation);
  EXPECT_EQ(ERR_peek_error(), static_cast<std::uint64_t>(SslErrorCode::kBadRecordMac));
  EXPECT_EQ(ERR_get_error(), static_cast<std::uint64_t>(SslErrorCode::kBadRecordMac));
  EXPECT_EQ(ERR_get_error(), static_cast<std::uint64_t>(SslErrorCode::kProtocolViolation));
  EXPECT_EQ(ERR_get_error(), 0u);
}

TEST(ErrQueue, ClearEmpties) {
  ERR_put_error(SslErrorCode::kBadRecordMac);
  ERR_clear_error();
  EXPECT_EQ(ERR_queue_depth(), 0u);
  EXPECT_EQ(ERR_peek_error(), 0u);
}

// --- pipes and BIO ----------------------------------------------------------------

TEST(Pipes, BytesFlowBothWays) {
  SimConnection conn;
  PipeEnd client = conn.client_end();
  PipeEnd server = conn.server_end();
  const std::uint8_t msg[] = {1, 2, 3};
  client.write(msg, 3);
  EXPECT_EQ(server.pending(), 3u);
  std::uint8_t buf[8];
  EXPECT_EQ(server.read(buf, sizeof(buf)), 3u);
  EXPECT_EQ(buf[2], 3);
  server.write(msg, 2);
  EXPECT_EQ(client.read(buf, sizeof(buf)), 2u);
}

TEST(BioBuffer, PeekConsumeRead) {
  SimConnection conn;
  Bio bio(std::make_unique<PipeEnd>(conn.server_end()));
  PipeEnd client = conn.client_end();
  const std::uint8_t msg[] = {9, 8, 7, 6};
  client.write(msg, 4);

  std::uint8_t buf[4];
  EXPECT_EQ(bio.peek(buf, 2), 2u);
  EXPECT_EQ(buf[0], 9);
  EXPECT_EQ(bio.pending(), 4u);  // peek does not consume
  bio.consume(2);
  EXPECT_EQ(bio.read(buf, 4), 2u);
  EXPECT_EQ(buf[0], 7);
  EXPECT_EQ(bio.int_ctrl(BioCtrl::kPending, 0), 0);
  EXPECT_EQ(bio.int_ctrl(BioCtrl::kWPending, 0), 0);
  EXPECT_EQ(bio.int_ctrl(BioCtrl::kFlush, 0), 1);
}

// --- native TLS ---------------------------------------------------------------------

class NativeTlsTest : public testing::Test {
 protected:
  NativeTlsTest()
      : server_(ctx_, std::make_unique<PipeEnd>(conn_.server_end()), true, 1),
        client_(ctx_, std::make_unique<PipeEnd>(conn_.client_end()), false, 2) {}

  /// Pumps both handshakes to completion.
  void handshake() {
    for (int i = 0; i < 10; ++i) {
      client_.do_handshake();
      server_.do_handshake();
      if (client_.ssl().handshake_done() && server_.ssl().handshake_done()) return;
    }
    FAIL() << "handshake did not complete";
  }

  SslCtx ctx_;
  SimConnection conn_;
  NativeTlsSession server_;
  NativeTlsSession client_;
};

TEST_F(NativeTlsTest, HandshakeDerivesMatchingKeys) {
  handshake();
  // Round-trip proves both sides derived the same session key.
  const std::string msg = "hello over TLS";
  EXPECT_EQ(client_.write(msg.data(), static_cast<int>(msg.size())),
            static_cast<int>(msg.size()));
  char buf[64];
  const int n = server_.read(buf, sizeof(buf));
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), msg);
}

TEST_F(NativeTlsTest, HandshakeWantReadBeforePeerActs) {
  // The server cannot progress before the ClientHello arrives.
  const int ret = server_.do_handshake();
  EXPECT_EQ(ret, -1);
  EXPECT_EQ(server_.get_error(ret), SSL_ERROR_WANT_READ);
}

TEST_F(NativeTlsTest, AlpnNegotiated) {
  handshake();
  EXPECT_EQ(client_.ssl().alpn_selected(), "http/1.1");
  EXPECT_EQ(server_.ssl().alpn_selected(), "http/1.1");
  EXPECT_FALSE(client_.ssl().peer_certificate().empty());
}

TEST_F(NativeTlsTest, ReadWantsDataWhenNoneSent) {
  handshake();
  char buf[8];
  const int n = server_.read(buf, sizeof(buf));
  EXPECT_EQ(n, -1);
  EXPECT_EQ(server_.get_error(n), SSL_ERROR_WANT_READ);
}

TEST_F(NativeTlsTest, LargePayloadFragmentsAcrossRecords) {
  handshake();
  const std::string big(50'000, 'z');
  EXPECT_EQ(client_.write(big.data(), static_cast<int>(big.size())),
            static_cast<int>(big.size()));
  std::string received;
  char buf[17'000];
  while (received.size() < big.size()) {
    const int n = server_.read(buf, sizeof(buf));
    ASSERT_GT(n, 0);
    received.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(received, big);
}

TEST_F(NativeTlsTest, TamperedRecordFailsMac) {
  handshake();
  const std::string msg = "sensitive";
  client_.write(msg.data(), static_cast<int>(msg.size()));
  // Flip one ciphertext byte in flight: corrupt via a direct pipe write that
  // replaces the record... simpler: write garbage that parses as a record
  // header but fails the MAC.
  PipeEnd raw = conn_.client_end();  // writes into the server's rx queue
  // Drain the valid record first so the server sees only the bad one.
  char buf[64];
  ASSERT_GT(server_.read(buf, sizeof(buf)), 0);
  const std::uint8_t bogus[] = {23, 3, 0, 'x', 'y', 'z', 0, 0, 0, 0, 0, 0, 0, 0};
  raw.write(bogus, sizeof(bogus));
  server_.err_clear();
  const int n = server_.read(buf, sizeof(buf));
  EXPECT_EQ(n, -1);
  EXPECT_EQ(server_.get_error(n), SSL_ERROR_SSL);
  EXPECT_EQ(server_.err_peek(), static_cast<std::uint64_t>(SslErrorCode::kBadRecordMac));
}

TEST_F(NativeTlsTest, ShutdownExchangesCloseNotify) {
  handshake();
  EXPECT_EQ(client_.shutdown(), 0);  // ours sent, peer's not yet seen
  char buf[8];
  EXPECT_EQ(server_.read(buf, sizeof(buf)), 0);  // clean EOF
  EXPECT_EQ(server_.get_error(0), SSL_ERROR_ZERO_RETURN);
  EXPECT_EQ(server_.shutdown(), 1);   // both directions closed
  EXPECT_EQ(client_.shutdown(), 1);
}

TEST_F(NativeTlsTest, IoBeforeHandshakeFails) {
  char buf[8];
  EXPECT_EQ(client_.read(buf, sizeof(buf)), -1);
  EXPECT_EQ(client_.write(buf, 1), -1);
  EXPECT_EQ(client_.get_error(-1), SSL_ERROR_SSL);
  client_.err_clear();
}

// --- nginx + curl over native TLS ---------------------------------------------------

TEST(Http, NativeExchangeServesRequest) {
  SslCtx ctx;
  SimConnection conn;
  NativeTlsSession server(ctx, std::make_unique<PipeEnd>(conn.server_end()), true, 1);
  NativeTlsSession client(ctx, std::make_unique<PipeEnd>(conn.client_end()), false, 2);
  MiniNginx nginx;
  MiniCurl curl("/index.html");
  ASSERT_TRUE(run_exchange(nginx, server, curl, client));
  EXPECT_NE(curl.response().find("200 OK"), std::string::npos);
  EXPECT_NE(curl.response().find("sgx-perf reproduction"), std::string::npos);
  EXPECT_NE(nginx.last_request().find("GET /index.html"), std::string::npos);
}

// --- TaLoS ---------------------------------------------------------------------------

class TalosTest : public testing::Test {
 protected:
  sgxsim::Urts urts_;
};

TEST_F(TalosTest, ExchangeThroughEnclave) {
  TalosEnclave talos(urts_);
  SimConnection conn;
  // Server side terminates TLS inside the enclave; the client is plain curl.
  const auto conn_id = talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
  auto server_session = talos.new_session(conn_id, /*server=*/true);
  ASSERT_NE(server_session, nullptr);

  SslCtx client_ctx;
  NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()), false, 9);

  MiniNginx nginx;
  MiniCurl curl;
  ASSERT_TRUE(run_exchange(nginx, *server_session, curl, client));
  EXPECT_NE(curl.response().find("200 OK"), std::string::npos);
  // The server-side callbacks were executed outside the enclave as ocalls.
  EXPECT_GE(talos.info_callback_invocations, 1u);
  EXPECT_GE(talos.alpn_callback_invocations, 1u);
}

TEST_F(TalosTest, EveryApiCallIsAnEcall) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  {
    TalosEnclave talos(urts_);
    SimConnection conn;
    const auto conn_id =
        talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
    auto server_session = talos.new_session(conn_id, true);
    SslCtx client_ctx;
    NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()), false, 9);
    MiniNginx nginx;
    MiniCurl curl;
    ASSERT_TRUE(run_exchange(nginx, *server_session, curl, client));
  }
  logger.detach();

  std::map<std::string, std::size_t> ecall_counts;
  std::map<std::string, std::size_t> ocall_counts;
  for (const auto& c : trace.calls()) {
    const auto name = trace.name_of(c.enclave_id, c.type, c.call_id);
    if (c.type == tracedb::CallType::kEcall) ++ecall_counts[name];
    if (c.type == tracedb::CallType::kOcall) ++ocall_counts[name];
  }
  // The Figure 5 cast is present.
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_new"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_set_fd"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_set_accept_state"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_do_handshake"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_read"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_write"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_shutdown"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_free"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_ERR_clear_error"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_SSL_get_rbio"], 1u);
  EXPECT_GE(ecall_counts["sgx_ecall_BIO_int_ctrl"], 1u);
  // Socket I/O and callbacks left the enclave.
  EXPECT_GE(ocall_counts["enclave_ocall_read"], 1u);
  EXPECT_GE(ocall_counts["enclave_ocall_write"], 1u);
  EXPECT_GE(ocall_counts["enclave_ocall_execute_ssl_ctx_info_callback"], 1u);
  EXPECT_GE(ocall_counts["enclave_ocall_alpn_select_cb"], 1u);
}

TEST_F(TalosTest, OcallsHaveEcallParents) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  {
    TalosEnclave talos(urts_);
    SimConnection conn;
    const auto conn_id =
        talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
    auto server_session = talos.new_session(conn_id, true);
    SslCtx client_ctx;
    NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()), false, 9);
    MiniNginx nginx;
    MiniCurl curl;
    ASSERT_TRUE(run_exchange(nginx, *server_session, curl, client));
  }
  logger.detach();

  for (const auto& c : trace.calls()) {
    if (c.type == tracedb::CallType::kOcall) {
      ASSERT_NE(c.parent, tracedb::kNoParent);
      EXPECT_EQ(trace.calls()[static_cast<std::size_t>(c.parent)].type,
                tracedb::CallType::kEcall);
    }
  }
}

TEST_F(TalosTest, ManyRequestsAccumulatePerRequestCallPattern) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  constexpr int kRequests = 20;
  {
    TalosEnclave talos(urts_);
    SslCtx client_ctx;
    for (int r = 0; r < kRequests; ++r) {
      SimConnection conn;
      const auto conn_id =
          talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
      auto server_session = talos.new_session(conn_id, true);
      NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()), false,
                              static_cast<std::uint64_t>(r) + 100);
      MiniNginx nginx;
      MiniCurl curl;
      ASSERT_TRUE(run_exchange(nginx, *server_session, curl, client));
      talos.drop_connection(conn_id);
    }
  }
  logger.detach();

  // Per-connection calls occur exactly once per request (Figure 5's "1000"
  // edges), e.g. SSL_new / SSL_set_fd / SSL_set_accept_state / SSL_free.
  std::map<std::string, std::size_t> counts;
  for (const auto& c : trace.calls()) {
    if (c.type == tracedb::CallType::kEcall) {
      ++counts[trace.name_of(c.enclave_id, c.type, c.call_id)];
    }
  }
  EXPECT_EQ(counts["sgx_ecall_SSL_new"], static_cast<std::size_t>(kRequests));
  EXPECT_EQ(counts["sgx_ecall_SSL_set_fd"], static_cast<std::size_t>(kRequests));
  EXPECT_EQ(counts["sgx_ecall_SSL_set_accept_state"], static_cast<std::size_t>(kRequests));
  EXPECT_EQ(counts["sgx_ecall_SSL_free"], static_cast<std::size_t>(kRequests));
  EXPECT_GE(counts["sgx_ecall_SSL_read"], static_cast<std::size_t>(kRequests));
  EXPECT_GE(counts["sgx_ecall_SSL_write"], static_cast<std::size_t>(kRequests));
}

TEST_F(TalosTest, InterfaceIsWide) {
  const auto spec = sgxsim::edl::parse(kTalosEdl);
  // The drop-in-replacement interface is wide (the real TaLoS has 207
  // ecalls; this reproduction models a representative subset).
  EXPECT_GE(spec.ecalls.size(), 40u);
  EXPECT_GE(spec.ocalls.size(), 8u);
  // And it is riddled with user_check pointers.
  std::size_t user_check = 0;
  for (const auto& e : spec.ecalls) user_check += e.has_user_check() ? 1 : 0;
  EXPECT_GE(user_check, 5u);
}

}  // namespace
