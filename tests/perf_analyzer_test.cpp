// Analyser tests: the Figure 4 indirect-parent rules, Equations 1-3 with the
// paper's default weights, SSC and paging detection, the security analysis
// and the report writers.
#include <gtest/gtest.h>

#include "perf/analyzer.hpp"
#include "perf/parents.hpp"
#include "perf/report.hpp"

namespace {

using namespace perf;
using tracedb::CallIndex;
using tracedb::CallKey;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::kNoParent;
using tracedb::OcallKind;
using tracedb::TraceDatabase;

CallIndex add(TraceDatabase& db, CallType type, tracedb::CallId id, std::uint64_t start,
              std::uint64_t end, CallIndex parent = kNoParent, tracedb::ThreadId tid = 1,
              tracedb::EnclaveId eid = 1) {
  CallRecord c;
  c.type = type;
  c.call_id = id;
  c.thread_id = tid;
  c.enclave_id = eid;
  c.start_ns = start;
  c.end_ns = end;
  c.parent = parent;
  return db.add_call(c);
}

bool has_finding(const AnalysisReport& r, FindingKind kind, const std::string& name) {
  for (const auto& f : r.findings) {
    if (f.kind == kind && f.subject_name == name) return true;
  }
  return false;
}

// --- Figure 4: indirect parents -------------------------------------------------

TEST(IndirectParents, Case1SuccessiveEcalls) {
  TraceDatabase db;
  add(db, CallType::kEcall, 0, 0, 10);    // E1
  add(db, CallType::kEcall, 0, 20, 30);   // E2
  add(db, CallType::kEcall, 0, 40, 50);   // E3
  const auto ip = compute_indirect_parents(db);
  EXPECT_EQ(ip[0], kNoParent);
  EXPECT_EQ(ip[1], 0);
  EXPECT_EQ(ip[2], 1);
}

TEST(IndirectParents, Case2OcallsUnderSameEcall) {
  TraceDatabase db;
  const auto e1 = add(db, CallType::kEcall, 0, 0, 100);  // E1
  add(db, CallType::kOcall, 1, 10, 20, e1);              // O2 (parent E1)
  add(db, CallType::kOcall, 2, 30, 40, e1);              // O3 (parent E1)
  const auto ip = compute_indirect_parents(db);
  EXPECT_EQ(ip[1], kNoParent);
  EXPECT_EQ(ip[2], 1);  // O3's indirect parent is O2
}

TEST(IndirectParents, Case3DeepNestingHasNone) {
  TraceDatabase db;
  const auto e1 = add(db, CallType::kEcall, 0, 0, 100);   // E1
  const auto o2 = add(db, CallType::kOcall, 1, 10, 90, e1);  // O2
  add(db, CallType::kEcall, 2, 20, 80, o2);               // E3 nested in O2
  const auto ip = compute_indirect_parents(db);
  EXPECT_EQ(ip[0], kNoParent);
  EXPECT_EQ(ip[1], kNoParent);
  EXPECT_EQ(ip[2], kNoParent);
}

TEST(IndirectParents, Case4SkipsOtherType) {
  TraceDatabase db;
  const auto e1 = add(db, CallType::kEcall, 0, 0, 50);  // E1
  add(db, CallType::kOcall, 1, 10, 20, e1);             // O2 during E1
  add(db, CallType::kEcall, 0, 60, 70);                 // E3 top level
  const auto ip = compute_indirect_parents(db);
  EXPECT_EQ(ip[2], 0);  // E3's indirect parent is E1, not O2
}

TEST(IndirectParents, SeparateThreadsDontMix) {
  TraceDatabase db;
  add(db, CallType::kEcall, 0, 0, 10, kNoParent, /*tid=*/1);
  add(db, CallType::kEcall, 0, 20, 30, kNoParent, /*tid=*/2);
  const auto ip = compute_indirect_parents(db);
  EXPECT_EQ(ip[1], kNoParent);
}

// --- Equation 1: short calls / moving -----------------------------------------

TEST(Eq1, FlagsMostlyShortOcalls) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 7, "ocall_tiny"});
  for (int i = 0; i < 100; ++i) {
    // 800 ns ocalls: 100% < 1us -> alpha branch fires.
    add(db, CallType::kOcall, 7, static_cast<std::uint64_t>(i) * 100'000,
        static_cast<std::uint64_t>(i) * 100'000 + 800);
  }
  const Analyzer an(db);
  const auto report = an.analyze();
  EXPECT_TRUE(has_finding(report, FindingKind::kShortCalls, "ocall_tiny"));
}

TEST(Eq1, SubtractsEcallTransitionTime) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 3, "ecall_thin"});
  for (int i = 0; i < 100; ++i) {
    // Raw 4,800 ns; minus the 4,205 ns transition -> ~600 ns of work.
    add(db, CallType::kEcall, 3, static_cast<std::uint64_t>(i) * 100'000,
        static_cast<std::uint64_t>(i) * 100'000 + 4'800);
  }
  const Analyzer an(db);
  EXPECT_TRUE(has_finding(an.analyze(), FindingKind::kShortCalls, "ecall_thin"));
}

TEST(Eq1, IgnoresLongCalls) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 3, "ecall_long"});
  for (int i = 0; i < 100; ++i) {
    add(db, CallType::kEcall, 3, static_cast<std::uint64_t>(i) * 100'000,
        static_cast<std::uint64_t>(i) * 100'000 + 50'000);
  }
  const Analyzer an(db);
  EXPECT_FALSE(has_finding(an.analyze(), FindingKind::kShortCalls, "ecall_long"));
}

TEST(Eq1, RespectsMinCalls) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 7, "ocall_rare"});
  for (int i = 0; i < 3; ++i) {
    add(db, CallType::kOcall, 7, static_cast<std::uint64_t>(i) * 100'000,
        static_cast<std::uint64_t>(i) * 100'000 + 500);
  }
  const Analyzer an(db);
  EXPECT_FALSE(has_finding(an.analyze(), FindingKind::kShortCalls, "ocall_rare"));
}

TEST(Eq1, ConfigurableWeights) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 7, "ocall_borderline"});
  // 40% of calls < 1us (0.35 < 0.40): fires with defaults ...
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    add(db, CallType::kOcall, 7, base, base + (i < 4 ? 500 : 400'000));
  }
  EXPECT_TRUE(has_finding(Analyzer(db).analyze(), FindingKind::kShortCalls,
                          "ocall_borderline"));
  // ... but not with alpha raised above the observed ratio.
  AnalyzerConfig strict;
  strict.eq1_alpha = 0.50;
  EXPECT_FALSE(has_finding(Analyzer(db, strict).analyze(), FindingKind::kShortCalls,
                           "ocall_borderline"));
}

// --- Equation 2: reordering ---------------------------------------------------------

TEST(Eq2, FlagsOcallAtParentStart) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 2, "ocall_alloc"});
  db.add_call_name({1, CallType::kEcall, 1, "ecall_handle"});
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 1, base, base + 200'000);
    // The ocall fires 2 us after the ecall starts — the SNC memory-allocation
    // pattern of §3.3.
    add(db, CallType::kOcall, 2, base + 2'000, base + 5'000, e);
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_TRUE(has_finding(report, FindingKind::kReorderStart, "ocall_alloc"));
  EXPECT_FALSE(has_finding(report, FindingKind::kReorderEnd, "ocall_alloc"));
}

TEST(Eq2, FlagsOcallAtParentEnd) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 2, "ocall_flush"});
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 1, base, base + 200'000);
    add(db, CallType::kOcall, 2, base + 195'000, base + 198'000, e);
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_TRUE(has_finding(report, FindingKind::kReorderEnd, "ocall_flush"));
  EXPECT_FALSE(has_finding(report, FindingKind::kReorderStart, "ocall_flush"));
}

TEST(Eq2, MidCallOcallNotFlagged) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 2, "ocall_mid"});
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 1, base, base + 200'000);
    add(db, CallType::kOcall, 2, base + 100'000, base + 103'000, e);
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_FALSE(has_finding(report, FindingKind::kReorderStart, "ocall_mid"));
  EXPECT_FALSE(has_finding(report, FindingKind::kReorderEnd, "ocall_mid"));
}

// --- Equation 3: batching / merging ----------------------------------------------

TEST(Eq3, FlagsBatchableIdenticalCalls) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 4, "ecall_bn_sub_part_words"});
  // Pairs of back-to-back identical ecalls, 200 ns apart (§5.2.3's pattern).
  std::uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    add(db, CallType::kEcall, 4, t, t + 4'500);
    t += 4'700;  // gap of 200 ns to the next identical call
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_TRUE(has_finding(report, FindingKind::kBatchable, "ecall_bn_sub_part_words"));
}

TEST(Eq3, FlagsMergeableDifferentCalls) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 0, "ocall_lseek"});
  db.add_call_name({1, CallType::kOcall, 1, "ocall_write"});
  // lseek immediately followed by write under the same ecall — §5.2.2.
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 9, base, base + 100'000);
    add(db, CallType::kOcall, 0, base + 10'000, base + 14'000, e);   // lseek 4us
    add(db, CallType::kOcall, 1, base + 14'500, base + 31'000, e);   // write right after
  }
  const auto report = Analyzer(db).analyze();
  ASSERT_TRUE(has_finding(report, FindingKind::kMergeable, "ocall_write"));
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kMergeable && f.subject_name == "ocall_write") {
      ASSERT_TRUE(f.partner.has_value());
      EXPECT_EQ(f.partner_name, "ocall_lseek");
    }
  }
}

TEST(Eq3, DistantCallsNotMerged) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 1, "ocall_write_far"});
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 10'000'000;
    const auto e = add(db, CallType::kEcall, 9, base, base + 9'000'000);
    add(db, CallType::kOcall, 0, base + 10'000, base + 14'000, e);
    add(db, CallType::kOcall, 1, base + 5'000'000, base + 5'016'000, e);  // 5 ms later
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_FALSE(has_finding(report, FindingKind::kMergeable, "ocall_write_far"));
}

TEST(Eq3, LambdaThresholdRespected) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 1, "ocall_sometimes"});
  // Only 20% of ocall_sometimes instances follow ocall_0 (< lambda 0.35).
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 9, base, base + 500'000);
    if (i % 5 == 0) {
      add(db, CallType::kOcall, 0, base + 10'000, base + 12'000, e);
      add(db, CallType::kOcall, 1, base + 12'100, base + 13'000, e);
    } else {
      add(db, CallType::kOcall, 1, base + 400'000, base + 401'000, e);
    }
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_FALSE(has_finding(report, FindingKind::kMergeable, "ocall_sometimes"));
}

// --- SSC ------------------------------------------------------------------------------

TEST(Ssc, ShortWakeOcallsFlagged) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 6, "sgx_thread_set_untrusted_event_ocall"});
  for (int i = 0; i < 20; ++i) {
    const auto idx = add(db, CallType::kOcall, 6, static_cast<std::uint64_t>(i) * 50'000,
                         static_cast<std::uint64_t>(i) * 50'000 + 3'000);
    db.set_call_kind(idx, OcallKind::kWakeOne);
  }
  const auto report = Analyzer(db).analyze();
  EXPECT_TRUE(has_finding(report, FindingKind::kSyncContention,
                          "sgx_thread_set_untrusted_event_ocall"));
}

TEST(Ssc, GenericOcallsNotFlaggedAsSync) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 6, "ocall_generic"});
  for (int i = 0; i < 20; ++i) {
    add(db, CallType::kOcall, 6, static_cast<std::uint64_t>(i) * 50'000,
        static_cast<std::uint64_t>(i) * 50'000 + 3'000);
  }
  EXPECT_FALSE(has_finding(Analyzer(db).analyze(), FindingKind::kSyncContention,
                           "ocall_generic"));
}

// --- paging ------------------------------------------------------------------------------

TEST(Paging, ManyEventsFlagged) {
  TraceDatabase db;
  for (int i = 0; i < 200; ++i) {
    db.add_paging({1, static_cast<std::uint64_t>(i % 50),
                   i % 2 == 0 ? tracedb::PageDirection::kPageIn
                              : tracedb::PageDirection::kPageOut,
                   static_cast<std::uint64_t>(i) * 1'000});
  }
  const auto report = Analyzer(db).analyze();
  bool found = false;
  for (const auto& f : report.findings) found |= f.kind == FindingKind::kPaging;
  EXPECT_TRUE(found);
}

TEST(Paging, FewEventsIgnored) {
  TraceDatabase db;
  for (int i = 0; i < 10; ++i) {
    db.add_paging({1, 1, tracedb::PageDirection::kPageOut, static_cast<std::uint64_t>(i)});
  }
  const auto report = Analyzer(db).analyze();
  for (const auto& f : report.findings) EXPECT_NE(f.kind, FindingKind::kPaging);
}

// --- security ---------------------------------------------------------------------------

TEST(Security, PrivateEcallCandidateDetected) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 2, "ecall_always_nested"});
  db.add_call_name({1, CallType::kOcall, 0, "ocall_host"});
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 0, base, base + 500'000);
    const auto o = add(db, CallType::kOcall, 0, base + 10'000, base + 400'000, e);
    add(db, CallType::kEcall, 2, base + 20'000, base + 300'000, o);
  }
  const auto report = Analyzer(db).analyze();
  ASSERT_TRUE(has_finding(report, FindingKind::kPrivateEcallCandidate, "ecall_always_nested"));
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kPrivateEcallCandidate) {
      EXPECT_NE(f.detail.find("ocall_host"), std::string::npos);
    }
  }
}

TEST(Security, TopLevelEcallNotPrivateCandidate) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 0, "ecall_top"});
  add(db, CallType::kEcall, 0, 0, 100);
  EXPECT_FALSE(has_finding(Analyzer(db).analyze(), FindingKind::kPrivateEcallCandidate,
                           "ecall_top"));
}

TEST(Security, AlreadyPrivateEcallNotReflagged) {
  TraceDatabase db;
  const auto spec = sgxsim::edl::parse(R"(
    enclave {
      trusted {
        public void ecall_pub(void);
        void ecall_priv(void);
      };
      untrusted { void ocall_x(void) allow (ecall_priv); };
    };
  )");
  db.add_call_name({1, CallType::kEcall, 1, "ecall_priv"});
  const auto e = add(db, CallType::kEcall, 0, 0, 100'000);
  const auto o = add(db, CallType::kOcall, 0, 10'000, 90'000, e);
  add(db, CallType::kEcall, 1, 20'000, 30'000, o);
  Analyzer an(db);
  an.set_interface(1, spec);
  EXPECT_FALSE(
      has_finding(an.analyze(), FindingKind::kPrivateEcallCandidate, "ecall_priv"));
}

TEST(Security, ExcessAllowedEcallsReported) {
  TraceDatabase db;
  const auto spec = sgxsim::edl::parse(R"(
    enclave {
      trusted {
        public void ecall_a(void);
        public void ecall_b(void);
      };
      untrusted { void ocall_x(void) allow (ecall_a, ecall_b); };
    };
  )");
  db.add_call_name({1, CallType::kEcall, 0, "ecall_a"});
  db.add_call_name({1, CallType::kEcall, 1, "ecall_b"});
  db.add_call_name({1, CallType::kOcall, 0, "ocall_x"});
  const auto e = add(db, CallType::kEcall, 0, 0, 100'000);
  const auto o = add(db, CallType::kOcall, 0, 10'000, 90'000, e);
  add(db, CallType::kEcall, 0, 20'000, 30'000, o);  // only ecall_a observed
  Analyzer an(db);
  an.set_interface(1, spec);
  const auto report = an.analyze();
  ASSERT_TRUE(has_finding(report, FindingKind::kExcessAllowedEcalls, "ocall_x"));
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kExcessAllowedEcalls) {
      EXPECT_NE(f.detail.find("ecall_b"), std::string::npos);
      EXPECT_EQ(f.detail.find("ecall_a,"), std::string::npos);
    }
  }
}

TEST(Security, UserCheckPointersHighlighted) {
  TraceDatabase db;
  const auto spec = sgxsim::edl::parse(R"(
    enclave {
      trusted { public void ecall_raw([user_check] void* p); };
      untrusted {};
    };
  )");
  Analyzer an(db);
  an.set_interface(1, spec);
  EXPECT_TRUE(has_finding(an.analyze(), FindingKind::kUserCheckPointer, "ecall_raw"));
}

// --- overview & report rendering ------------------------------------------------------------

TEST(Report, OverviewCountsAndText) {
  TraceDatabase db;
  tracedb::EnclaveRecord enc;
  enc.enclave_id = 1;
  enc.name = "demo";
  db.add_enclave(enc);
  db.add_call_name({1, CallType::kEcall, 0, "ecall_fast"});
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 100'000;
    const auto e = add(db, CallType::kEcall, 0, base, base + 5'000);
    add(db, CallType::kOcall, 0, base + 1'000, base + 1'500, e);
  }
  const auto report = Analyzer(db).analyze();
  ASSERT_EQ(report.overviews.size(), 1u);
  EXPECT_EQ(report.overviews[0].ecall_instances, 20u);
  EXPECT_EQ(report.overviews[0].ocall_instances, 20u);
  EXPECT_GT(report.overviews[0].ecalls_below_10us, 0.99);

  const std::string text = render_text(report);
  EXPECT_NE(text.find("ecall_fast"), std::string::npos);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("findings"), std::string::npos);
}

TEST(Report, FindingsSortedBySeverity) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 0, "ocall_small"});
  db.add_call_name({1, CallType::kOcall, 1, "ocall_big"});
  for (int i = 0; i < 10; ++i) {
    add(db, CallType::kOcall, 0, static_cast<std::uint64_t>(i) * 100'000,
        static_cast<std::uint64_t>(i) * 100'000 + 500);
  }
  for (int i = 0; i < 1000; ++i) {
    add(db, CallType::kOcall, 1, 1'000'000 + static_cast<std::uint64_t>(i) * 100'000,
        1'000'000 + static_cast<std::uint64_t>(i) * 100'000 + 500);
  }
  const auto report = Analyzer(db).analyze();
  ASSERT_GE(report.findings.size(), 2u);
  EXPECT_GE(report.findings[0].severity, report.findings[1].severity);
}

TEST(Report, CallGraphDot) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 0, "ecall_SSL_read"});
  db.add_call_name({1, CallType::kOcall, 0, "ocall_read"});
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 100'000;
    const auto e = add(db, CallType::kEcall, 0, base, base + 50'000);
    add(db, CallType::kOcall, 0, base + 10'000, base + 20'000, e);
  }
  const std::string dot = render_callgraph_dot(db);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("ecall_SSL_read"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("style=solid"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // E->E indirect edges
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);   // direct edge count
}

TEST(Report, HistogramAndScatter) {
  TraceDatabase db;
  const CallKey key{1, CallType::kEcall, 0};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 100'000;
    add(db, CallType::kEcall, 0, base, base + 14'000 + static_cast<std::uint64_t>(i % 10) * 100);
  }
  const auto hist = duration_histogram(db, key, 100);
  EXPECT_EQ(hist.bin_count(), 100u);
  EXPECT_EQ(hist.total(), 500u);

  const std::string csv = scatter_csv(db, key);
  EXPECT_NE(csv.find("time_since_start_ns,duration_ns"), std::string::npos);
  EXPECT_NE(csv.find("\n0,"), std::string::npos);  // first point at t=0

  const std::string ascii = render_scatter_ascii(db, key, 40, 10);
  EXPECT_NE(ascii.find('.'), std::string::npos);
}

TEST(Report, EmptyDatabaseRenders) {
  TraceDatabase db;
  const auto report = Analyzer(db).analyze();
  const std::string text = render_text(report);
  EXPECT_NE(text.find("no problems detected"), std::string::npos);
  EXPECT_EQ(render_scatter_ascii(db, CallKey{1, CallType::kEcall, 0}), "(no data)\n");
}

}  // namespace

namespace {

TEST(Security, MinimalAllowSetWithoutEdl) {
  tracedb::TraceDatabase db;
  db.add_call_name({1, CallType::kOcall, 0, "ocall_host"});
  db.add_call_name({1, CallType::kEcall, 1, "ecall_nested_a"});
  db.add_call_name({1, CallType::kEcall, 2, "ecall_nested_b"});
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const auto e = add(db, CallType::kEcall, 0, base, base + 900'000);
    const auto o = add(db, CallType::kOcall, 0, base + 10'000, base + 800'000, e);
    add(db, CallType::kEcall, 1, base + 20'000, base + 100'000, o);
    add(db, CallType::kEcall, 2, base + 200'000, base + 300'000, o);
  }
  const auto report = perf::Analyzer(db).analyze();
  bool found = false;
  for (const auto& f : report.findings) {
    if (f.kind == perf::FindingKind::kMinimalAllowSet && f.subject_name == "ocall_host") {
      found = true;
      EXPECT_NE(f.detail.find("ecall_nested_a"), std::string::npos);
      EXPECT_NE(f.detail.find("ecall_nested_b"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Security, MinimalAllowSetSuppressedWhenEdlGiven) {
  tracedb::TraceDatabase db;
  const auto spec = sgxsim::edl::parse(R"(
    enclave {
      trusted { public void ecall_a(void); public void ecall_b(void); };
      untrusted { void ocall_x(void) allow (ecall_b); };
    };
  )");
  const auto e = add(db, CallType::kEcall, 0, 0, 900'000);
  const auto o = add(db, CallType::kOcall, 0, 10'000, 800'000, e);
  add(db, CallType::kEcall, 1, 20'000, 100'000, o);
  perf::Analyzer an(db);
  an.set_interface(1, spec);
  for (const auto& f : an.analyze().findings) {
    EXPECT_NE(f.kind, perf::FindingKind::kMinimalAllowSet);
  }
}

// --- dropped events (format v3) --------------------------------------------------

TEST(DroppedEvents, SurfacedInReportWithWarning) {
  TraceDatabase db;
  auto& shard = db.register_shard(/*owner_thread=*/1);
  db.merge_shards();  // seals the shard: further appends are dropped
  CallRecord rec;
  rec.thread_id = 1;
  rec.enclave_id = 1;
  rec.start_ns = 10;
  rec.end_ns = 20;
  EXPECT_EQ(shard.add_call(rec), tracedb::kShardSealed);
  EXPECT_EQ(shard.add_call(rec), tracedb::kShardSealed);
  db.merge_shards();  // collects the late-writer drops

  const auto report = perf::Analyzer(db).analyze();
  EXPECT_EQ(report.dropped_events, 2u);
  const std::string text = render_text(report);
  EXPECT_NE(text.find("WARNING: 2 event(s) were dropped"), std::string::npos);
}

TEST(DroppedEvents, NoWarningOnCompleteTrace) {
  TraceDatabase db;
  add(db, CallType::kEcall, 0, 0, 1'000);
  const auto report = perf::Analyzer(db).analyze();
  EXPECT_EQ(report.dropped_events, 0u);
  EXPECT_EQ(render_text(report).find("WARNING"), std::string::npos);
}

}  // namespace
