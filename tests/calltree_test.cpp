// Call-tree/flamegraph profiler: folds the recorded parent chains into
// weighted trees, exports collapsed stacks (golden-checked) and an indented
// text rendering.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "perf/calltree.hpp"
#include "tracedb/database.hpp"

namespace {

using perf::CallTree;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

tracedb::CallIndex add_call(TraceDatabase& db, CallType type, std::uint32_t call_id,
                            tracedb::CallIndex parent, std::uint64_t start, std::uint64_t end,
                            std::uint32_t aex = 0) {
  CallRecord c;
  c.type = type;
  c.thread_id = 11;
  c.enclave_id = 1;
  c.call_id = call_id;
  c.parent = parent;
  c.start_ns = start;
  c.end_ns = end;
  c.aex_count = aex;
  return db.add_call(c);
}

/// Deterministic profile: two ecall_process instances, one with a nested
/// ocall_log that re-enters via ecall_reenter — covering every chain shape
/// the folder handles (root call, nested ocall, ocall→ecall re-entry).
TraceDatabase golden_db() {
  TraceDatabase db;
  db.add_enclave({/*enclave_id=*/1, "worker", /*created_ns=*/0, /*destroyed_ns=*/0,
                  /*tcs_count=*/2, /*size_bytes=*/1 << 20});
  db.add_call_name({1, CallType::kEcall, 0, "ecall_process"});
  db.add_call_name({1, CallType::kOcall, 0, "ocall_log"});
  db.add_call_name({1, CallType::kEcall, 1, "ecall_reenter"});

  const auto e0 = add_call(db, CallType::kEcall, 0, tracedb::kNoParent, 1'000, 9'500,
                           /*aex=*/1);
  const auto o0 = add_call(db, CallType::kOcall, 0, e0, 3'000, 4'250);
  add_call(db, CallType::kEcall, 1, o0, 3'500, 3'900);
  const auto e1 = add_call(db, CallType::kEcall, 0, tracedb::kNoParent, 20'000, 26'000);
  add_call(db, CallType::kOcall, 0, e1, 21'000, 22'000);
  return db;
}

TEST(CallTree, CollapsedStacksMatchGoldenFile) {
  const CallTree tree(golden_db());
  const std::string golden_path = std::string(GOLDEN_DIR) + "/flamegraph.txt";
  const std::string expected = slurp(golden_path);
  ASSERT_FALSE(expected.empty()) << "missing golden file: " << golden_path;
  EXPECT_EQ(tree.collapsed(), expected)
      << "collapsed-stack output drifted from " << golden_path
      << " — if intentional, regenerate the golden file";
}

TEST(CallTree, AggregatesCountsTotalsAndSelfTimes) {
  const CallTree tree(golden_db());
  const auto& root = tree.root();
  ASSERT_EQ(root.children.size(), 1u);
  const auto& worker = *root.children.begin()->second;
  EXPECT_EQ(worker.name, "worker");

  ASSERT_EQ(worker.children.size(), 1u);
  const auto& process = *worker.children.begin()->second;
  EXPECT_EQ(process.name, "ecall_process");
  EXPECT_EQ(process.count, 2u);
  EXPECT_EQ(process.total_ns, 8'500u + 6'000u);
  EXPECT_EQ(process.self_ns, (8'500u - 1'250u) + (6'000u - 1'000u));
  EXPECT_EQ(process.aex_count, 1u);

  ASSERT_EQ(process.children.size(), 1u);
  const auto& log = *process.children.begin()->second;
  EXPECT_EQ(log.count, 2u);
  EXPECT_EQ(log.total_ns, 1'250u + 1'000u);
  EXPECT_EQ(log.self_ns, (1'250u - 400u) + 1'000u);

  ASSERT_EQ(log.children.size(), 1u);
  const auto& reenter = *log.children.begin()->second;
  EXPECT_EQ(reenter.name, "ecall_reenter");
  EXPECT_EQ(reenter.count, 1u);
  EXPECT_EQ(reenter.self_ns, 400u);
}

TEST(CallTree, RenderTextShowsIndentedHierarchy) {
  const std::string text = CallTree(golden_db()).render_text();
  EXPECT_NE(text.find("worker  count=0"), std::string::npos);
  EXPECT_NE(text.find("  ecall_process  count=2"), std::string::npos);
  EXPECT_NE(text.find("    ocall_log  count=2"), std::string::npos);
  EXPECT_NE(text.find("      ecall_reenter  count=1"), std::string::npos);
}

TEST(CallTree, EmptyDatabaseYieldsEmptyOutputs) {
  TraceDatabase db;
  const CallTree tree(db);
  EXPECT_TRUE(tree.root().children.empty());
  EXPECT_EQ(tree.collapsed(), "");
  EXPECT_EQ(tree.render_text(), "");
}

TEST(CallTree, SynthesizesNamesForAnonymousEnclavesAndCalls) {
  TraceDatabase db;  // no enclave record, no call names
  add_call(db, CallType::kEcall, 7, tracedb::kNoParent, 0, 500);
  const CallTree tree(db);
  const std::string stacks = tree.collapsed();
  EXPECT_EQ(stacks, "enclave_1;ecall_7 500\n");
}

TEST(CallTree, HandlesParentsRecordedAfterChildren) {
  // Hand-built databases (and merged shards) may interleave orders; the
  // resolver must not assume parent-before-child indices.
  TraceDatabase db;
  CallRecord child;
  child.type = CallType::kOcall;
  child.enclave_id = 1;
  child.call_id = 0;
  child.parent = 1;  // forward reference
  child.start_ns = 10;
  child.end_ns = 20;
  db.add_call(child);
  CallRecord parent;
  parent.type = CallType::kEcall;
  parent.enclave_id = 1;
  parent.call_id = 0;
  parent.parent = tracedb::kNoParent;
  parent.start_ns = 0;
  parent.end_ns = 100;
  db.add_call(parent);

  const CallTree tree(db);
  const auto& enclave = *tree.root().children.begin()->second;
  const auto& ecall = *enclave.children.begin()->second;
  EXPECT_EQ(ecall.self_ns, 90u);
  ASSERT_EQ(ecall.children.size(), 1u);
  EXPECT_EQ(ecall.children.begin()->second->self_ns, 10u);
}

}  // namespace
