// EventShard / TraceDatabase sharded-writer tests: registration, the
// seal-before-merge lifecycle, out-of-order merge equivalence with a
// sequentially-built database, reference remapping, shard reuse, the
// move-constructor fix and the save() unmerged-events guard.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "tracedb/database.hpp"

namespace {

using tracedb::AexRecord;
using tracedb::CallIndex;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::EventShard;
using tracedb::kNoParent;
using tracedb::kShardSealed;
using tracedb::PagingRecord;
using tracedb::SyncRecord;
using tracedb::TraceDatabase;

CallRecord call(CallType type, tracedb::ThreadId tid, tracedb::Nanoseconds start,
                tracedb::Nanoseconds end, CallIndex parent = kNoParent) {
  CallRecord rec;
  rec.type = type;
  rec.thread_id = tid;
  rec.enclave_id = 1;
  rec.start_ns = start;
  rec.end_ns = end;
  rec.parent = parent;
  return rec;
}

bool same_call(const CallRecord& a, const CallRecord& b) {
  return a.type == b.type && a.kind == b.kind && a.thread_id == b.thread_id &&
         a.enclave_id == b.enclave_id && a.call_id == b.call_id && a.parent == b.parent &&
         a.start_ns == b.start_ns && a.end_ns == b.end_ns && a.aex_count == b.aex_count;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(EventShard, RegistrationAssignsStableIdsAndSlots) {
  TraceDatabase db;
  EXPECT_EQ(db.shard_count(), 0u);
  EventShard& a = db.register_shard(/*owner_thread=*/7, /*owner_slot=*/0);
  EventShard& b = db.register_shard(/*owner_thread=*/9, /*owner_slot=*/1);
  EXPECT_EQ(db.shard_count(), 2u);
  EXPECT_EQ(a.shard_id(), 0u);
  EXPECT_EQ(b.shard_id(), 1u);
  EXPECT_EQ(a.owner_thread(), 7u);
  EXPECT_EQ(b.owner_slot(), 1u);
  // Heap-allocated: registering more shards never moves earlier ones.
  EventShard* a_addr = &a;
  for (int i = 0; i < 32; ++i) db.register_shard(100 + i);
  EXPECT_EQ(&a, a_addr);
}

TEST(EventShard, SealDropsLateEventsAndCountsThem) {
  TraceDatabase db;
  EventShard& s = db.register_shard(1);
  const CallIndex i0 = s.add_call(call(CallType::kEcall, 1, 100, 0));
  EXPECT_EQ(i0, 0);
  EXPECT_FALSE(s.sealed());

  s.seal();
  s.seal();  // idempotent
  EXPECT_TRUE(s.sealed());

  EXPECT_EQ(s.add_call(call(CallType::kEcall, 1, 200, 0)), kShardSealed);
  s.finish_call(i0, 300, 0);  // ignored: sealed
  s.add_aex(AexRecord{});
  s.add_paging(PagingRecord{});
  s.add_sync(SyncRecord{});
  EXPECT_EQ(s.calls().size(), 1u);
  EXPECT_EQ(s.calls()[0].end_ns, 0u);
  EXPECT_EQ(s.events_recorded(), 1u);
  EXPECT_EQ(s.events_dropped(), 5u);
}

TEST(EventShard, FinishCallBoundsChecked) {
  TraceDatabase db;
  EventShard& s = db.register_shard(1);
  s.finish_call(0, 100, 0);    // no such record yet
  s.finish_call(-5, 100, 0);   // nonsense index
  s.set_call_kind(3, tracedb::OcallKind::kSleep);
  EXPECT_EQ(s.events_dropped(), 3u);
}

TEST(TraceDatabaseShards, MergeOfOutOfOrderShardsEqualsSequentialBuild) {
  // Two shards with globally interleaved (but per-shard increasing)
  // timestamps; thread 2's shard even contains a parent reference.
  TraceDatabase sharded;
  EventShard& s1 = sharded.register_shard(1, 0);
  EventShard& s2 = sharded.register_shard(2, 1);

  const CallIndex t1_e0 = s1.add_call(call(CallType::kEcall, 1, 100, 900));
  const CallIndex t2_e0 = s2.add_call(call(CallType::kEcall, 2, 150, 800));
  s2.add_call(call(CallType::kOcall, 2, 300, 400, /*parent=*/t2_e0));
  s1.add_call(call(CallType::kOcall, 1, 500, 600, /*parent=*/t1_e0));

  const auto stats = sharded.merge_shards();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.shards_merged, 2u);
  EXPECT_EQ(stats.calls, 4u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_TRUE(s1.sealed());
  EXPECT_TRUE(s1.drained());

  // The same events appended in global time order with global parents.
  TraceDatabase sequential;
  const CallIndex g0 = sequential.add_call(call(CallType::kEcall, 1, 100, 900));
  const CallIndex g1 = sequential.add_call(call(CallType::kEcall, 2, 150, 800));
  sequential.add_call(call(CallType::kOcall, 2, 300, 400, /*parent=*/g1));
  sequential.add_call(call(CallType::kOcall, 1, 500, 600, /*parent=*/g0));

  ASSERT_EQ(sharded.calls().size(), sequential.calls().size());
  for (std::size_t i = 0; i < sequential.calls().size(); ++i) {
    EXPECT_TRUE(same_call(sharded.calls()[i], sequential.calls()[i])) << "record " << i;
  }
  // Timestamps are globally sorted after the merge.
  for (std::size_t i = 1; i < sharded.calls().size(); ++i) {
    EXPECT_GE(sharded.calls()[i].start_ns, sharded.calls()[i - 1].start_ns);
  }
}

TEST(TraceDatabaseShards, MergeRemapsAexDuringCallReferences) {
  TraceDatabase db;
  EventShard& s1 = db.register_shard(1);
  EventShard& s2 = db.register_shard(2);

  // s2's ecall starts first, so s1's records shift right after the merge.
  const CallIndex local = s1.add_call(call(CallType::kEcall, 1, 200, 900));
  s2.add_call(call(CallType::kEcall, 2, 100, 150));
  AexRecord aex;
  aex.thread_id = 1;
  aex.enclave_id = 1;
  aex.timestamp_ns = 500;
  aex.during_call = local;  // shard-local
  s1.add_aex(aex);

  db.merge_shards();
  ASSERT_EQ(db.calls().size(), 2u);
  ASSERT_EQ(db.aexs().size(), 1u);
  EXPECT_EQ(db.calls()[1].thread_id, 1u);  // s1's ecall sorted second
  EXPECT_EQ(db.aexs()[0].during_call, 1);  // remapped to its global index
}

TEST(TraceDatabaseShards, MergeSortsPagingAndSyncByTimestamp) {
  TraceDatabase db;
  EventShard& s1 = db.register_shard(1);
  EventShard& s2 = db.register_shard(2);
  PagingRecord p;
  p.timestamp_ns = 300;
  s1.add_paging(p);
  p.timestamp_ns = 100;
  s2.add_paging(p);
  SyncRecord y;
  y.timestamp_ns = 50;
  s1.add_sync(y);
  y.timestamp_ns = 20;
  s2.add_sync(y);

  db.merge_shards();
  ASSERT_EQ(db.paging().size(), 2u);
  EXPECT_EQ(db.paging()[0].timestamp_ns, 100u);
  EXPECT_EQ(db.paging()[1].timestamp_ns, 300u);
  ASSERT_EQ(db.syncs().size(), 2u);
  EXPECT_EQ(db.syncs()[0].timestamp_ns, 20u);
  EXPECT_EQ(db.syncs()[1].timestamp_ns, 50u);
}

TEST(TraceDatabaseShards, ReopenedShardsRecordAgainAndMergeAppends) {
  TraceDatabase db;
  EventShard& s = db.register_shard(1);
  s.add_call(call(CallType::kEcall, 1, 100, 200));
  db.merge_shards();
  EXPECT_TRUE(s.drained());

  db.reopen_shards();
  EXPECT_FALSE(s.sealed());
  EXPECT_FALSE(s.drained());
  EXPECT_EQ(s.add_call(call(CallType::kEcall, 1, 300, 400)), 0);  // indices restart

  const auto stats = db.merge_shards();
  EXPECT_EQ(stats.calls, 1u);
  ASSERT_EQ(db.calls().size(), 2u);
  EXPECT_EQ(db.calls()[1].start_ns, 300u);
  EXPECT_EQ(db.merge_stats().merges, 2u);
  EXPECT_EQ(db.merge_stats().calls, 2u);
}

TEST(TraceDatabaseShards, ClearResetsShardsAndStats) {
  TraceDatabase db;
  EventShard& s = db.register_shard(1);
  s.add_call(call(CallType::kEcall, 1, 100, 200));
  db.merge_shards();
  db.clear();
  EXPECT_TRUE(db.calls().empty());
  EXPECT_EQ(db.merge_stats().merges, 0u);
  EXPECT_EQ(db.shard_count(), 1u);  // shards survive, reset in place
  EXPECT_FALSE(s.sealed());
  EXPECT_EQ(s.add_call(call(CallType::kEcall, 1, 300, 400)), 0);
}

TEST(TraceDatabaseShards, MoveConstructorCarriesRecordsAndShards) {
  // Regression for the move ctor that locked only the source's mutex (and
  // predated shards): both sides now lock, and shard state moves along.
  TraceDatabase source;
  EventShard& s = source.register_shard(1);
  s.add_call(call(CallType::kEcall, 1, 100, 200));
  source.merge_shards();
  source.add_call(call(CallType::kEcall, 2, 300, 400));

  TraceDatabase moved(std::move(source));
  ASSERT_EQ(moved.calls().size(), 2u);
  EXPECT_EQ(moved.shard_count(), 1u);
  EXPECT_EQ(moved.merge_stats().merges, 1u);
  // The moved-from database is empty but still usable.
  EXPECT_TRUE(source.calls().empty());      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.shard_count(), 0u);      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.merge_stats().merges, 0u);
}

TEST(TraceDatabaseShards, SaveRefusesUnmergedShardEvents) {
  const std::string path = testing::TempDir() + "/shard_guard.bin";
  TraceDatabase db;
  EventShard& s = db.register_shard(1);
  s.add_call(call(CallType::kEcall, 1, 100, 200));
  EXPECT_THROW(db.save(path), std::logic_error);
  db.merge_shards();
  EXPECT_NO_THROW(db.save(path));
  std::remove(path.c_str());
}

TEST(TraceDatabaseShards, SingleShardSerializesIdenticallyToDirectBuild) {
  // The acceptance bar for the refactor: a single-threaded trace routed
  // through a shard must serialize bit-identically to the direct path.
  const std::string direct_path = testing::TempDir() + "/direct.bin";
  const std::string sharded_path = testing::TempDir() + "/sharded.bin";

  TraceDatabase direct;
  TraceDatabase sharded;
  EventShard& s = sharded.register_shard(1);
  CallIndex parent_direct = kNoParent;
  CallIndex parent_local = kNoParent;
  for (int i = 0; i < 10; ++i) {
    const auto start = static_cast<tracedb::Nanoseconds>(100 * i + 100);
    if (i % 2 == 0) {
      parent_direct = direct.add_call(call(CallType::kEcall, 1, start, start + 50));
      parent_local = s.add_call(call(CallType::kEcall, 1, start, start + 50));
    } else {
      direct.add_call(call(CallType::kOcall, 1, start, start + 50, parent_direct));
      s.add_call(call(CallType::kOcall, 1, start, start + 50, parent_local));
    }
  }
  sharded.merge_shards();
  direct.save(direct_path);
  sharded.save(sharded_path);
  EXPECT_EQ(slurp(direct_path), slurp(sharded_path));
  std::remove(direct_path.c_str());
  std::remove(sharded_path.c_str());
}

}  // namespace
