// minikv tests: wire format, backend store semantics, end-to-end encrypted
// proxying, the narrow enclave interface, connection-storm synchronisation
// and the multi-client driver.
#include <gtest/gtest.h>

#include <set>

#include "minikv/driver.hpp"
#include "perf/logger.hpp"
#include "perf/workingset.hpp"
#include "support/strutil.hpp"
#include "tracedb/query.hpp"

namespace {

using namespace minikv;

// --- wire format -----------------------------------------------------------------

TEST(WireFormat, RequestRoundTrip) {
  Request r;
  r.xid = 42;
  r.client_id = 7;
  r.op = OpCode::kCreate;
  r.path = {'/', 'a'};
  r.payload = {1, 2, 3};
  const auto back = Request::deserialize(r.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->xid, 42u);
  EXPECT_EQ(back->client_id, 7u);
  EXPECT_EQ(back->op, OpCode::kCreate);
  EXPECT_EQ(back->path, r.path);
  EXPECT_EQ(back->payload, r.payload);
}

TEST(WireFormat, ResponseRoundTrip) {
  Response r;
  r.xid = 1;
  r.client_id = 2;
  r.op = OpCode::kGetData;
  r.result = OpResult::kNoNode;
  const auto back = Response::deserialize(r.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result, OpResult::kNoNode);
}

TEST(WireFormat, TruncatedInputRejected) {
  Request r;
  r.path = {'/', 'x'};
  auto bytes = r.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(Request::deserialize(bytes).has_value());
  EXPECT_FALSE(Response::deserialize({1, 2, 3}).has_value());
}

// --- Store -----------------------------------------------------------------------

class StoreTest : public testing::Test {
 protected:
  Request make(OpCode op, const std::string& path, const std::string& data = "") {
    Request r;
    r.op = op;
    r.path.assign(path.begin(), path.end());
    r.payload.assign(data.begin(), data.end());
    return r;
  }

  support::VirtualClock clock_;
  Store store_{clock_};
};

TEST_F(StoreTest, CreateGetSetDelete) {
  EXPECT_EQ(store_.handle(make(OpCode::kCreate, "/a", "1")).result, OpResult::kOk);
  EXPECT_EQ(store_.handle(make(OpCode::kCreate, "/a", "1")).result, OpResult::kNodeExists);
  const auto get = store_.handle(make(OpCode::kGetData, "/a"));
  EXPECT_EQ(get.result, OpResult::kOk);
  EXPECT_EQ(std::string(get.payload.begin(), get.payload.end()), "1");
  EXPECT_EQ(store_.handle(make(OpCode::kSetData, "/a", "2")).result, OpResult::kOk);
  EXPECT_EQ(store_.handle(make(OpCode::kSetData, "/b", "x")).result, OpResult::kNoNode);
  EXPECT_EQ(store_.handle(make(OpCode::kExists, "/a")).result, OpResult::kOk);
  EXPECT_EQ(store_.handle(make(OpCode::kDelete, "/a")).result, OpResult::kOk);
  EXPECT_EQ(store_.handle(make(OpCode::kDelete, "/a")).result, OpResult::kNoNode);
  EXPECT_EQ(store_.node_count(), 0u);
}

TEST_F(StoreTest, OpsAdvanceVirtualTime) {
  const auto t0 = clock_.now();
  (void)store_.handle(make(OpCode::kCreate, "/a"));
  EXPECT_GT(clock_.now(), t0);
  EXPECT_EQ(store_.requests_handled(), 1u);
}

// --- proxy end-to-end --------------------------------------------------------------

class ProxyTest : public testing::Test {
 protected:
  ProxyTest() : store_(urts_.clock()), proxy_(urts_, store_) {}

  Request make(std::uint64_t client, OpCode op, const std::string& path,
               const std::string& data = "") {
    Request r;
    r.client_id = client;
    r.xid = next_xid_++;
    r.op = op;
    r.path.assign(path.begin(), path.end());
    r.payload.assign(data.begin(), data.end());
    return r;
  }

  sgxsim::Urts urts_;
  Store store_;
  KvProxy proxy_;
  std::uint64_t next_xid_ = 1;
};

TEST_F(ProxyTest, EndToEndCreateAndGet) {
  ASSERT_EQ(proxy_.connect_client(0), sgxsim::SgxStatus::kSuccess);
  const auto create = proxy_.process(make(0, OpCode::kCreate, "/app/x", "secret-data"));
  ASSERT_TRUE(create.has_value());
  EXPECT_EQ(create->result, OpResult::kOk);

  const auto get = proxy_.process(make(0, OpCode::kGetData, "/app/x"));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->result, OpResult::kOk);
  EXPECT_EQ(std::string(get->payload.begin(), get->payload.end()), "secret-data");
}

TEST_F(ProxyTest, BackendOnlySeesCiphertext) {
  ASSERT_EQ(proxy_.connect_client(0), sgxsim::SgxStatus::kSuccess);
  (void)proxy_.process(make(0, OpCode::kCreate, "/app/plain-path", "plain-payload"));
  // Inspect every node stored in the backend: neither the path nor the
  // payload may contain the plaintext.
  EXPECT_EQ(store_.node_count(), 1u);
  const auto get = proxy_.process(make(0, OpCode::kGetData, "/app/plain-path"));
  ASSERT_TRUE(get.has_value());  // decryption succeeds through the proxy
  // A direct (unproxied) lookup with the plaintext path must miss.
  Request direct;
  direct.op = OpCode::kGetData;
  const std::string path = "/app/plain-path";
  direct.path.assign(path.begin(), path.end());
  EXPECT_EQ(store_.handle(direct).result, OpResult::kNoNode);
}

TEST_F(ProxyTest, UnconnectedClientRejected) {
  const auto resp = proxy_.process(make(5, OpCode::kGetData, "/x"));
  EXPECT_FALSE(resp.has_value());
}

TEST_F(ProxyTest, InterfaceIsNarrow) {
  const auto spec = sgxsim::edl::parse(kKvEdl);
  EXPECT_EQ(spec.ecalls.size(), 2u);   // "just two ecalls
  EXPECT_EQ(spec.ocalls.size(), 6u);   //  and six ocalls" (§5.2.4)
}

TEST_F(ProxyTest, OnlyThreeOcallsEverCalled) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  ASSERT_EQ(proxy_.connect_client(0), sgxsim::SgxStatus::kSuccess);
  for (int i = 0; i < 20; ++i) {
    (void)proxy_.process(make(0, i % 2 == 0 ? OpCode::kCreate : OpCode::kGetData,
                        support::format("/n%d", i / 2), "payload"));
  }
  logger.detach();

  std::set<std::string> ocalls_seen;
  std::set<std::string> ecalls_seen;
  for (const auto& c : trace.calls()) {
    const auto name = trace.name_of(c.enclave_id, c.type, c.call_id);
    if (c.type == tracedb::CallType::kOcall) ocalls_seen.insert(name);
    if (c.type == tracedb::CallType::kEcall) ecalls_seen.insert(name);
  }
  EXPECT_EQ(ecalls_seen.size(), 2u);
  // send_to_server, send_to_client, print_debug — and nothing else.
  EXPECT_EQ(ocalls_seen.size(), 3u);
  EXPECT_TRUE(ocalls_seen.contains("ocall_send_to_server"));
  EXPECT_TRUE(ocalls_seen.contains("ocall_send_to_client"));
  EXPECT_TRUE(ocalls_seen.contains("ocall_print_debug"));
  EXPECT_GE(proxy_.debug_prints.load(), 1u);
}

TEST_F(ProxyTest, EcallDurationsAreWellAboveTransitionCost) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  ASSERT_EQ(proxy_.connect_client(0), sgxsim::SgxStatus::kSuccess);
  for (int i = 0; i < 50; ++i) {
    (void)proxy_.process(make(0, OpCode::kCreate, support::format("/node-%d", i),
                        std::string(1000, 'x')));
  }
  logger.detach();

  // §5.2.4: both ecalls have mean execution ~4-6x the transition cost.
  const auto groups = tracedb::group_calls(trace);
  for (const auto& [key, instances] : groups) {
    if (key.type != tracedb::CallType::kEcall) continue;
    std::uint64_t total = 0;
    for (const auto idx : instances) {
      total += trace.calls()[static_cast<std::size_t>(idx)].duration();
    }
    const auto mean = total / instances.size();
    EXPECT_GT(mean, 2 * urts_.cost().full_ecall_ns())
        << trace.name_of(key.enclave_id, key.type, key.call_id);
  }
}

// --- driver -------------------------------------------------------------------------

TEST(Driver, MultiClientWorkloadCompletes) {
  sgxsim::Urts urts;
  Store store(urts.clock());
  KvProxy proxy(urts, store);
  DriverConfig config;
  config.clients = 4;
  config.ops_per_client = 50;
  const DriverReport report = run_workload(proxy, config);
  EXPECT_EQ(report.operations, 4u * 50u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.throughput_ops_per_s, 0.0);
}

TEST(Driver, ConnectionStormCausesSyncOcallsButSteadyStateDoesNot) {
  sgxsim::Urts urts;
  Store store(urts.clock());
  KvProxy proxy(urts, store);
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  DriverConfig config;
  config.clients = 8;
  config.ops_per_client = 40;
  const DriverReport report = run_workload(proxy, config);
  logger.detach();
  EXPECT_EQ(report.failures, 0u);

  // Sync ocalls (sleep/wake) may appear during the connection storm; the
  // steady state must not produce any (per-client queues are uncontended).
  // Connect ecalls are identified by their debug-print child ocall.
  support::Nanoseconds last_connect_end = 0;
  const auto& calls = trace.calls();
  for (const auto& c : calls) {
    if (c.type != tracedb::CallType::kOcall || c.parent == tracedb::kNoParent) continue;
    if (trace.name_of(c.enclave_id, c.type, c.call_id) != "ocall_print_debug") continue;
    last_connect_end =
        std::max(last_connect_end, calls[static_cast<std::size_t>(c.parent)].end_ns);
  }
  ASSERT_GT(last_connect_end, 0u);
  std::size_t sync_after_storm = 0;
  for (const auto& s : trace.syncs()) {
    if (s.timestamp_ns > last_connect_end) ++sync_after_storm;
  }
  EXPECT_EQ(sync_after_storm, 0u);
}

TEST(Driver, WorkingSetSmallerDuringExecutionThanStartup) {
  sgxsim::Urts urts;
  Store store(urts.clock());
  KvProxy proxy(urts, store);
  perf::WorkingSetEstimator ws(urts.enclave(proxy.enclave_id()));

  ws.start();
  ASSERT_EQ(proxy.connect_client(0), sgxsim::SgxStatus::kSuccess);
  const auto startup = ws.checkpoint();

  Request req;
  req.client_id = 0;
  req.op = OpCode::kCreate;
  const std::string path = "/x";
  req.path.assign(path.begin(), path.end());
  req.payload.assign(800, 7);
  for (int i = 0; i < 20; ++i) {
    req.xid = static_cast<std::uint64_t>(i + 1);
    (void)proxy.process(req);
    req.op = OpCode::kSetData;
  }
  const auto steady = ws.accessed_pages();
  ws.stop();

  EXPECT_GT(startup.size(), 0u);
  EXPECT_GT(steady.size(), 0u);
  // The SecureKeeper shape: start-up touches more pages than steady state.
  EXPECT_LE(steady.size(), startup.size());
}

}  // namespace
