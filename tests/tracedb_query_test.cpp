// Query-layer edge cases (empty database, single-event traces) and the
// format-v4 appendix: latency-table round trips, version spanning
// (v2 → v3 → v4) and geometry validation on load.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"
#include "tracedb/merge.hpp"
#include "tracedb/query.hpp"

namespace {

using tracedb::CallKey;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(QueryEdgeCases, EmptyDatabaseYieldsEmptyViews) {
  TraceDatabase db;
  EXPECT_TRUE(tracedb::group_calls(db).empty());
  EXPECT_TRUE(tracedb::durations_of(db, CallKey{1, CallType::kEcall, 0}).empty());
  EXPECT_TRUE(tracedb::scatter_of(db, CallKey{1, CallType::kEcall, 0}).empty());
  EXPECT_TRUE(tracedb::calls_in_range(db, CallType::kEcall, 0, ~0ULL).empty());
  EXPECT_EQ(tracedb::distinct_calls(db, 1, CallType::kEcall), 0u);
  EXPECT_EQ(tracedb::total_calls(db, 1, CallType::kOcall), 0u);
  EXPECT_EQ(tracedb::fraction_shorter_than(db, 1, CallType::kEcall, 10'000), 0.0);
  EXPECT_EQ(tracedb::paging_counts(db, 1), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(db.find_latency(1, CallType::kEcall, 0), nullptr);
  EXPECT_EQ(db.stream_dropped(), 0u);
}

TEST(QueryEdgeCases, SingleEventTrace) {
  TraceDatabase db;
  CallRecord c;
  c.type = CallType::kEcall;
  c.thread_id = 3;
  c.enclave_id = 5;
  c.call_id = 2;
  c.start_ns = 100;
  c.end_ns = 350;
  db.add_call(c);

  const CallKey key{5, CallType::kEcall, 2};
  const auto groups = tracedb::group_calls(db);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->first, key);

  const auto durations = tracedb::durations_of(db, key);
  ASSERT_EQ(durations.size(), 1u);
  EXPECT_EQ(durations[0], 250u);

  EXPECT_EQ(tracedb::distinct_calls(db, 5, CallType::kEcall), 1u);
  EXPECT_EQ(tracedb::total_calls(db, 5, CallType::kEcall), 1u);
  // 250ns < 10us, so the whole population is "short".
  EXPECT_EQ(tracedb::fraction_shorter_than(db, 5, CallType::kEcall, 10'000), 1.0);
  // Subtracting more than the duration must clamp, not wrap.
  EXPECT_EQ(tracedb::fraction_shorter_than(db, 5, CallType::kEcall, 10'000, 4'205), 1.0);
  // Range filter: [start, start+1) hits, [start+1, ...) misses.
  EXPECT_EQ(tracedb::calls_in_range(db, CallType::kEcall, 100, 101).size(), 1u);
  EXPECT_TRUE(tracedb::calls_in_range(db, CallType::kEcall, 101, ~0ULL).empty());
}

TEST(FormatV4, LatencyTableRoundTrips) {
  TraceDatabase db;
  tracedb::LatencyRecord rec;
  rec.enclave_id = 1;
  rec.type = CallType::kEcall;
  rec.call_id = 4;
  rec.count = 3;
  rec.sum_ns = 3'300;
  rec.buckets = {{telemetry::hdr::index_of(1'000), 2}, {telemetry::hdr::index_of(1'300), 1}};
  db.set_latency(rec);
  db.set_stream_dropped(17);

  const std::string path = temp_path("tracedb_v4_roundtrip.bin");
  db.save(path);
  const TraceDatabase reloaded = TraceDatabase::load(path);
  std::filesystem::remove(path);

  EXPECT_EQ(reloaded.stream_dropped(), 17u);
  const auto* found = reloaded.find_latency(1, CallType::kEcall, 4);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 3u);
  EXPECT_EQ(found->sum_ns, 3'300u);
  EXPECT_EQ(found->buckets, rec.buckets);
  EXPECT_EQ(reloaded.find_latency(1, CallType::kOcall, 4), nullptr);
}

TEST(FormatV4, SetLatencyUpsertsByKey) {
  TraceDatabase db;
  tracedb::LatencyRecord rec;
  rec.enclave_id = 2;
  rec.type = CallType::kOcall;
  rec.call_id = 0;
  rec.count = 1;
  db.set_latency(rec);
  rec.count = 9;
  db.set_latency(rec);  // same key: replaces, not appends
  ASSERT_EQ(db.latencies().size(), 1u);
  EXPECT_EQ(db.latencies()[0].count, 9u);
}

/// Hand-assembles a v2 file (pre-telemetry, pre-latency): the current loader
/// must default every newer table.  This is the version-spanning guarantee —
/// each older format is exactly a newer file that ends early.
TEST(FormatV4, LoadsV2FilesWithDefaultedLatencyTable) {
  const std::string path = temp_path("tracedb_v2_for_v4.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const auto u8 = [&](std::uint8_t v) { std::fwrite(&v, 1, 1, f); };
  const auto u32 = [&](std::uint32_t v) { std::fwrite(&v, 4, 1, f); };
  const auto u64 = [&](std::uint64_t v) { std::fwrite(&v, 8, 1, f); };
  const auto i64 = [&](std::int64_t v) { std::fwrite(&v, 8, 1, f); };
  std::fwrite("SGXPTRC2", 1, 8, f);
  u64(1);      // one call
  u8(0);       // ecall
  u8(0);       // generic
  u32(7);      // thread
  u64(1);      // enclave
  u32(0);      // call id
  i64(-1);     // no parent
  u64(0);      // start
  u64(900);    // end
  u32(0);      // aex
  u64(0);      // aexs
  u64(0);      // paging
  u64(0);      // syncs
  u64(0);      // enclaves
  u64(0);      // call names
  std::fclose(f);

  const TraceDatabase db = TraceDatabase::load(path);
  std::filesystem::remove(path);
  EXPECT_EQ(db.calls().size(), 1u);
  EXPECT_TRUE(db.latencies().empty());
  EXPECT_EQ(db.stream_dropped(), 0u);
  EXPECT_TRUE(db.metric_series().empty());
}

TEST(FormatV4, V3SaveIsAPrefixOfV4Save) {
  // A v4 file is a v3 file plus the appendix: loading a v4 trace and saving
  // again must preserve every older table bit-for-bit.
  TraceDatabase db;
  CallRecord c;
  c.type = CallType::kOcall;
  c.enclave_id = 9;
  c.call_id = 1;
  c.start_ns = 5;
  c.end_ns = 50;
  db.add_call(c);
  tracedb::LatencyRecord rec;
  rec.enclave_id = 9;
  rec.type = CallType::kOcall;
  rec.call_id = 1;
  rec.count = 1;
  rec.sum_ns = 45;
  rec.buckets = {{telemetry::hdr::index_of(45), 1}};
  db.set_latency(rec);

  const std::string path = temp_path("tracedb_v4_reload.bin");
  db.save(path);
  const TraceDatabase once = TraceDatabase::load(path);
  const std::string path2 = temp_path("tracedb_v4_reload2.bin");
  once.save(path2);

  std::ifstream a(path, std::ios::binary);
  std::ifstream b(path2, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(bytes_a.substr(0, 8), "SGXPTRC6");
  std::filesystem::remove(path);
  std::filesystem::remove(path2);
}

/// The parallel tournament-tree merge must emit exactly the order a global
/// sort by (timestamp, shard id, append index) would — regardless of thread
/// count, timestamp ties, or out-of-order appends within a shard.
TEST(ParallelMerge, IsByteIdenticalToSequentialOrder) {
  std::uint64_t state = 42;
  const auto rnd = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  constexpr std::size_t kShards = 5;
  constexpr std::size_t kPerShard = 6'000;  // > segment threshold in aggregate
  std::vector<std::vector<tracedb::Nanoseconds>> keys(kShards);
  std::vector<std::uint32_t> ids;
  for (std::size_t s = 0; s < kShards; ++s) {
    ids.push_back(static_cast<std::uint32_t>(10 + s));
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < kPerShard; ++i) {
      t += rnd() % 3;            // frequent cross-shard ties (step can be 0)
      keys[s].push_back(t + rnd() % 8);  // local out-of-order jitter
    }
  }

  const auto seq = tracedb::parallel_merge_order(keys, ids, 1);
  ASSERT_EQ(seq.size(), kShards * kPerShard);
  // Reference order: the global-sort contract.
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const auto& a = seq[i - 1];
    const auto& b = seq[i];
    const auto ka = keys[a.shard][a.local];
    const auto kb = keys[b.shard][b.local];
    ASSERT_LE(ka, kb);
    if (ka == kb) {
      if (a.shard == b.shard) {
        ASSERT_LT(a.local, b.local);
      } else {
        ASSERT_LT(ids[a.shard], ids[b.shard]);
      }
    }
  }

  for (const std::size_t threads : {2u, 3u, 8u}) {
    const auto par = tracedb::parallel_merge_order(keys, ids, threads);
    ASSERT_EQ(par.size(), seq.size()) << threads << " threads";
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ASSERT_EQ(par[i].shard, seq[i].shard) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(par[i].local, seq[i].local) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelMerge, HandlesEmptyAndSingleShardInputs) {
  EXPECT_TRUE(tracedb::parallel_merge_order({}, {}, 4).empty());
  EXPECT_TRUE(tracedb::parallel_merge_order({{}, {}}, {1, 2}, 4).empty());
  const auto one = tracedb::parallel_merge_order({{5, 3, 9}}, {1}, 4);
  ASSERT_EQ(one.size(), 3u);
  EXPECT_EQ(one[0].local, 1u);  // 3
  EXPECT_EQ(one[1].local, 0u);  // 5
  EXPECT_EQ(one[2].local, 2u);  // 9
}

TEST(FormatV4, RejectsMismatchedBucketGeometry) {
  TraceDatabase db;
  db.set_stream_dropped(1);
  const std::string path = temp_path("tracedb_v4_badgeom.bin");
  db.save(path);

  // Corrupt the geometry header (sub_bits byte directly after the
  // stream-drop counter at the end of the v3 payload).
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  // Layout of the v4 appendix: u64 stream_dropped, u8 sub_bits,
  // u8 max_exponent, u64 latency-row count (empty here).
  f.seekp(size - 10);
  const char bad_sub_bits = 6;
  f.write(&bad_sub_bits, 1);
  f.close();

  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
