// telemetry::Ledger — the event-conservation audit (DESIGN.md §13).
//
// Pins the observability contract end-to-end: stage accounting and the
// audit's leak/indeterminate semantics, JSON round-trip through the same
// document shape the `status` query emits, conservation across a live
// embedded MonitorSession (including a forced overload that must attribute
// every lost event to the subscriber-ring stage and nothing else), the
// on-disk store cross-check, and the fleet ingest stage's treatment of
// truncated producer streams (unquantifiable loss must FAIL the audit).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "fleet/aggregator.hpp"
#include "fleet/corpus.hpp"
#include "perf/logger.hpp"
#include "perf/session.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/stressor.hpp"
#include "support/json.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/prometheus.hpp"
#include "tracedb/database.hpp"
#include "tracedb/store/store.hpp"

namespace {

using telemetry::Ledger;
using telemetry::LedgerStage;

TEST(LedgerStageTest, DropBucketsMergeByReason) {
  LedgerStage stage;
  stage.add_drop("ring_overflow", 3);
  stage.add_drop("sealed_shard", 0);  // zero counts keep the schema shape-stable
  stage.add_drop("ring_overflow", 2);
  ASSERT_EQ(stage.drops.size(), 2u);
  EXPECT_EQ(stage.drops[0].reason, "ring_overflow");
  EXPECT_EQ(stage.drops[0].count, 5u);
  EXPECT_EQ(stage.drops[1].count, 0u);
  EXPECT_EQ(stage.dropped_total(), 5u);
}

TEST(LedgerStageTest, LeakIsSignedProducedMinusDeliveredMinusDrops) {
  LedgerStage stage;
  stage.produced = 10;
  stage.delivered = 7;
  stage.add_drop("x", 2);
  EXPECT_EQ(stage.leak(), 1);  // one event unaccounted for
  stage.delivered = 9;
  EXPECT_EQ(stage.leak(), -1);  // delivered more than produced: also a leak
}

TEST(LedgerAuditTest, ConservedStagesPass) {
  Ledger led;
  auto& a = led.stage("record");
  a.produced = 100;
  a.delivered = 98;
  a.add_drop("sealed_shard", 2);
  auto& b = led.stage("stream");
  b.produced = 98;
  b.delivered = 98;
  const auto audit = led.audit();
  EXPECT_TRUE(audit.ok);
  EXPECT_TRUE(audit.first_leak_stage.empty());
  EXPECT_EQ(audit.stages_failed, 0u);
  EXPECT_EQ(audit.total_dropped, 2u);
}

TEST(LedgerAuditTest, FirstLeakingStageIsNamed) {
  Ledger led;
  led.stage("record").produced = 5;
  led.stage("record").delivered = 5;
  auto& leaky = led.stage("stream");
  leaky.produced = 5;
  leaky.delivered = 3;  // two events vanish with no drop bucket
  auto& also = led.stage("session");
  also.produced = 3;
  also.delivered = 1;
  const auto audit = led.audit();
  EXPECT_FALSE(audit.ok);
  EXPECT_EQ(audit.first_leak_stage, "stream");
  EXPECT_EQ(audit.first_leak, 2);
  EXPECT_EQ(audit.stages_failed, 2u);
}

TEST(LedgerAuditTest, IndeterminateLossFailsEvenWhenCountersBalance) {
  Ledger led;
  auto& stage = led.stage("fleet_ingest", "frames");
  stage.produced = 10;
  stage.delivered = 10;
  stage.indeterminate = 1;  // a producer died mid-stream: loss of unknown size
  const auto audit = led.audit();
  EXPECT_FALSE(audit.ok);
  EXPECT_EQ(audit.first_leak_stage, "fleet_ingest");
  EXPECT_EQ(audit.first_leak, 0);
  EXPECT_EQ(audit.first_indeterminate, 1u);
}

TEST(LedgerJsonTest, RoundTripsThroughStatusDocumentShape) {
  Ledger led;
  auto& record = led.stage("record");
  record.produced = 42;
  record.delivered = 40;
  record.add_drop("sealed_shard", 2);
  auto& wire = led.stage("fleet_wire", "frames");
  wire.produced = 7;
  wire.delivered = 6;
  wire.add_drop("consumer_gone", 1);
  wire.indeterminate = 3;

  support::json::Writer w;
  w.begin_object();
  w.key("ledger");
  led.write_json(w);
  w.end_object();
  const auto doc = support::json::parse(w.take());
  const auto* embedded = doc.find("ledger");
  ASSERT_NE(embedded, nullptr);

  const Ledger back = telemetry::ledger_from_json(*embedded);
  ASSERT_EQ(back.stages().size(), 2u);
  EXPECT_EQ(back.stages()[0].name, "record");
  EXPECT_EQ(back.stages()[0].produced, 42u);
  EXPECT_EQ(back.stages()[0].dropped_total(), 2u);
  EXPECT_EQ(back.stages()[1].unit, "frames");
  EXPECT_EQ(back.stages()[1].indeterminate, 3u);
  // The audits agree in full.
  EXPECT_EQ(back.audit().ok, led.audit().ok);
  EXPECT_EQ(back.audit().total_dropped, led.audit().total_dropped);
}

TEST(LedgerJsonTest, MalformedStagesThrow) {
  const auto doc = support::json::parse(R"({"stages":[{"stage":"x"}]})");
  EXPECT_THROW((void)telemetry::ledger_from_json(doc), std::runtime_error);
}

TEST(LedgerPrometheusTest, ExportsStageCountersAndConservationGauge) {
  Ledger led;
  auto& stage = led.stage("stream");
  stage.produced = 9;
  stage.delivered = 8;
  stage.add_drop("ring_overflow", 1);
  std::vector<telemetry::MetricSnapshotRow> rows;
  telemetry::append_ledger_rows(led, rows);
  const std::string text = telemetry::render_prometheus(rows);
  EXPECT_NE(text.find("sgxperf_ledger_stream_produced 9\n"), std::string::npos);
  EXPECT_NE(text.find("sgxperf_ledger_stream_dropped_ring_overflow 1\n"), std::string::npos);
  EXPECT_NE(text.find("sgxperf_ledger_conservation_ok 1\n"), std::string::npos);
}

// --- live session conservation ----------------------------------------------

struct EmbeddedRun {
  tracedb::TraceDatabase db;
  Ledger ledger;
  perf::SessionStats stats;
};

/// One lockstep stressor under an embedded MonitorSession, polled only after
/// the workload finishes — with a tiny ring that alone forces overload.
EmbeddedRun run_embedded(const std::string& stressor_name, std::size_t capacity,
                         std::uint64_t duration_ns) {
  EmbeddedRun out;
  const auto stressor = stress::make_stressor(stressor_name);
  if (stressor == nullptr) throw std::runtime_error("unknown stressor");

  sgxsim::Urts urts;
  perf::Logger logger(out.db);
  logger.attach(urts);

  perf::MonitorSessionConfig config;
  config.identity = {"ledger-test", stressor_name};
  config.subscription_capacity = capacity;
  config.online.window_ns = 1'000'000;
  perf::MonitorSession session(logger, urts, config);
  if (!session.ok()) throw std::runtime_error("no subscriber slot");

  stress::StressConfig scfg;
  scfg.threads = 2;
  scfg.duration_ns = duration_ns;
  scfg.seed = 7;
  scfg.lockstep = true;
  stress::run_stressor(*stressor, urts, scfg);

  session.poll();
  logger.detach();
  session.finish();
  out.ledger = session.ledger();
  out.stats = session.stats();
  return out;
}

TEST(LedgerSessionTest, QuiescedRunConservesEveryStage) {
  const auto run = run_embedded("ocall-storm", 1 << 18, 20'000'000);
  const auto audit = run.ledger.audit();
  EXPECT_TRUE(audit.ok) << run.ledger.render_table();
  EXPECT_EQ(audit.total_dropped, 0u);
  const auto* record = run.ledger.find("record");
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->produced, 0u);
  EXPECT_EQ(record->produced, record->delivered);
}

// The forced-overload satellite: with an 8-slot ring and no polling during
// an ocall storm, nearly every event must drop — and every single loss must
// be attributed to exactly the subscriber-ring stage.  The audit still
// passes: overload is *accounted* loss, not a leak.
TEST(LedgerSessionTest, ForcedOverloadAttributesAllLossToTheRingStage) {
  const auto run = run_embedded("ocall-storm", 8, 20'000'000);

  const auto* stream = run.ledger.find("stream");
  ASSERT_NE(stream, nullptr);
  EXPECT_GT(stream->dropped_total(), 0u) << "an 8-slot ring cannot hold an ocall storm";
  ASSERT_EQ(stream->drops.size(), 1u);
  EXPECT_EQ(stream->drops[0].reason, "ring_overflow");
  EXPECT_EQ(stream->drops[0].count, run.stats.stream_dropped);
  EXPECT_EQ(stream->leak(), 0);

  // Every other stage is drop-free and leak-free: no unattributed loss.
  for (const auto& stage : run.ledger.stages()) {
    if (stage.name == "stream") continue;
    EXPECT_EQ(stage.dropped_total(), 0u) << stage.name;
    EXPECT_EQ(stage.leak(), 0) << stage.name;
    EXPECT_EQ(stage.indeterminate, 0u) << stage.name;
  }
  EXPECT_TRUE(run.ledger.audit().ok) << run.ledger.render_table();
}

// --- persisted builders -----------------------------------------------------

TEST(LedgerBuilderTest, DatabaseBuilderMatchesPersistedCounters) {
  const auto run = run_embedded("cpu", 1 << 18, 10'000'000);
  const Ledger led = telemetry::ledger_from_database(run.db);
  EXPECT_TRUE(led.audit().ok);
  const auto* record = led.find("record");
  ASSERT_NE(record, nullptr);
  const std::uint64_t db_events = run.db.calls().size() + run.db.aexs().size() +
                                  run.db.paging().size() + run.db.syncs().size();
  EXPECT_EQ(record->delivered, db_events);
}

TEST(LedgerBuilderTest, StoreBuilderCrossChecksTheChunkDirectory) {
  const auto run = run_embedded("cpu", 1 << 18, 10'000'000);
  const std::string dir = testing::TempDir() + "/ledger_test.store";
  tracedb::store::pack(run.db, dir);
  const Ledger led = telemetry::ledger_from_store(dir);
  EXPECT_TRUE(led.audit().ok) << led.render_table();
  const auto* store = led.find("store");
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->produced, 0u);
  EXPECT_EQ(store->produced, store->delivered);
}

// --- fleet ingest stage -----------------------------------------------------

/// The corpus's storm producer, rendered once to a wire byte stream.
const std::string& storm_stream() {
  static const std::string bytes = [] {
    fleet::CorpusConfig config;
    config.producers.push_back({"host-t", "storm", "ocall-storm", 2, 20'000'000, 7, 0});
    return fleet::run_corpus_producer(config.producers[0], config);
  }();
  return bytes;
}

TEST(LedgerFleetTest, CleanStreamPassesTheIngestAudit) {
  fleet::Aggregator agg;
  const auto id = agg.connect();
  agg.ingest(id, storm_stream());
  agg.disconnect(id);
  Ledger led;
  agg.fill_ledger(led);
  const auto* ingest = led.find("fleet_ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_GT(ingest->produced, 0u);
  EXPECT_TRUE(led.audit().ok) << led.render_table();
}

TEST(LedgerFleetTest, TruncatedStreamFailsTheAuditAtFleetIngest) {
  fleet::Aggregator agg;
  const auto id = agg.connect();
  // Cut the stream mid-way: the bye frame never arrives, so the producer's
  // remaining loss has no knowable size — exactly what must fail the audit.
  agg.ingest(id, storm_stream().substr(0, storm_stream().size() / 2));
  agg.disconnect(id);
  Ledger led;
  agg.fill_ledger(led);
  const auto audit = led.audit();
  EXPECT_FALSE(audit.ok);
  EXPECT_EQ(audit.first_leak_stage, "fleet_ingest");
  const auto* ingest = led.find("fleet_ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_GT(ingest->indeterminate, 0u);
}

TEST(LedgerFleetTest, StatusJsonCarriesAParsableLedger) {
  fleet::Aggregator agg;
  const auto id = agg.connect();
  agg.ingest(id, storm_stream());
  agg.disconnect(id);
  const auto doc = support::json::parse(agg.status_json());
  const auto* producers = doc.find("producers");
  ASSERT_NE(producers, nullptr);
  const auto* ledger = doc.find("ledger");
  ASSERT_NE(ledger, nullptr);
  const Ledger led = telemetry::ledger_from_json(*ledger);
  EXPECT_TRUE(led.audit().ok);
  ASSERT_FALSE(led.stages().empty());
  EXPECT_EQ(led.stages()[0].name, "fleet_ingest");
  EXPECT_EQ(led.stages()[0].unit, "frames");
}

}  // namespace
