#include <gtest/gtest.h>

#include <stdexcept>

#include "sgxsim/driver.hpp"
#include "sgxsim/heap.hpp"
#include "sgxsim/runtime.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::FnMs;
using test_helpers::invoke_fn_ocall;
using test_helpers::make_enclave;

constexpr const char* kSimpleEdl = R"(
enclave {
  trusted {
    public int ecall_work(void);
    public int ecall_with_ocall(void);
    int ecall_private(void);
  };
  untrusted {
    void ocall_noop(void) allow (ecall_private);
    void ocall_fn(void);
  };
};
)";

// --- FreeListAllocator --------------------------------------------------------

TEST(FreeListAllocator, AllocatesAndFrees) {
  FreeListAllocator a(1024);
  const auto x = a.allocate(100);
  ASSERT_NE(x, FreeListAllocator::kFailed);
  EXPECT_EQ(a.used(), 112u);  // rounded to 16
  a.deallocate(x);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.largest_free_block(), 1024u);
}

TEST(FreeListAllocator, ExhaustionFails) {
  FreeListAllocator a(256);
  EXPECT_NE(a.allocate(200), FreeListAllocator::kFailed);
  EXPECT_EQ(a.allocate(100), FreeListAllocator::kFailed);
}

TEST(FreeListAllocator, CoalescesNeighbours) {
  FreeListAllocator a(300);
  const auto x = a.allocate(64);
  const auto y = a.allocate(64);
  const auto z = a.allocate(64);
  ASSERT_NE(z, FreeListAllocator::kFailed);
  a.deallocate(x);
  a.deallocate(z);
  EXPECT_LT(a.largest_free_block(), 300u - a.used());
  a.deallocate(y);  // bridges x..z and the tail
  EXPECT_EQ(a.largest_free_block(), 300u);
  EXPECT_EQ(a.allocation_count(), 0u);
}

TEST(FreeListAllocator, ZeroSizedAllocationsWork) {
  FreeListAllocator a(64);
  const auto x = a.allocate(0);
  ASSERT_NE(x, FreeListAllocator::kFailed);
  EXPECT_GT(a.used(), 0u);
}

TEST(FreeListAllocator, DoubleFreeThrows) {
  FreeListAllocator a(64);
  const auto x = a.allocate(16);
  a.deallocate(x);
  EXPECT_THROW(a.deallocate(x), std::logic_error);
  EXPECT_THROW(a.deallocate(999), std::logic_error);
}

TEST(FreeListAllocator, ReusesFreedSpace) {
  FreeListAllocator a(160);
  const auto x = a.allocate(64);
  ASSERT_NE(a.allocate(64), FreeListAllocator::kFailed);
  a.deallocate(x);
  EXPECT_NE(a.allocate(64), FreeListAllocator::kFailed);
}

// --- Driver / EPC ----------------------------------------------------------------

TEST(Driver, PagesResidentAfterAdd) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 16);
  d.add_page(1, 0);
  d.add_page(1, 1);
  EXPECT_TRUE(d.is_resident(1, 0));
  EXPECT_TRUE(d.is_resident(1, 1));
  EXPECT_EQ(d.resident_pages(), 2u);
}

TEST(Driver, EvictsLruWhenFull) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 2);
  d.add_page(1, 0);
  d.add_page(1, 1);
  d.ensure_resident(1, 0);  // touch 0: now 1 is LRU
  d.add_page(1, 2);         // evicts 1
  EXPECT_TRUE(d.is_resident(1, 0));
  EXPECT_FALSE(d.is_resident(1, 1));
  EXPECT_TRUE(d.is_resident(1, 2));
  EXPECT_EQ(d.page_out_count(), 1u);
}

TEST(Driver, EnsureResidentFaultsInEvictedPages) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 2);
  d.add_page(1, 0);
  d.add_page(1, 1);
  d.add_page(1, 2);  // evicts 0
  const auto t0 = clock.now();
  EXPECT_TRUE(d.ensure_resident(1, 0));  // faults back in, evicting 1
  EXPECT_GE(clock.now() - t0, cost.page_in_ns);
  EXPECT_EQ(d.page_in_count(), 1u);
  EXPECT_FALSE(d.ensure_resident(1, 0));  // now a hit
}

TEST(Driver, HooksObservePaging) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 1);
  int ins = 0;
  int outs = 0;
  d.set_trace_hooks([&](EnclaveId, std::uint64_t, PageDirection dir, support::Nanoseconds) {
    (dir == PageDirection::kIn ? ins : outs)++;
  });
  d.add_page(1, 0);
  d.add_page(1, 1);      // evicts 0 -> out
  d.ensure_resident(1, 0);  // evicts 1 -> out, loads 0 -> in
  EXPECT_EQ(outs, 2);
  EXPECT_EQ(ins, 1);
  d.clear_trace_hooks();
  d.ensure_resident(1, 1);
  EXPECT_EQ(ins, 1);  // unchanged after detach
}

TEST(Driver, RemoveEnclaveFreesPages) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 8);
  d.add_page(1, 0);
  d.add_page(2, 0);
  d.remove_enclave(1);
  EXPECT_FALSE(d.is_resident(1, 0));
  EXPECT_TRUE(d.is_resident(2, 0));
}

TEST(Driver, SharedEpcEvictsAcrossEnclaves) {
  support::VirtualClock clock;
  const CostModel cost;
  Driver d(clock, cost, 2);
  d.add_page(1, 0);
  d.add_page(1, 1);
  d.add_page(2, 0);  // the EPC is shared: enclave 1 loses a page
  EXPECT_EQ(d.resident_pages(), 2u);
  EXPECT_FALSE(d.is_resident(1, 0));
}

TEST(Driver, RejectsZeroCapacity) {
  support::VirtualClock clock;
  const CostModel cost;
  EXPECT_THROW(Driver(clock, cost, 0), std::invalid_argument);
}

// --- CostModel presets --------------------------------------------------------------

TEST(CostModel, PresetRoundTripsMatchPaper) {
  // §2.3.1: ~2,130 / ~3,850 / ~4,890 ns round trips.
  EXPECT_EQ(CostModel::preset(PatchLevel::kUnpatched).transition_round_trip_ns(), 2130u);
  EXPECT_EQ(CostModel::preset(PatchLevel::kSpectre).transition_round_trip_ns(), 3850u);
  EXPECT_EQ(CostModel::preset(PatchLevel::kSpectreL1tf).transition_round_trip_ns(), 4890u);
}

TEST(CostModel, FullCallCostsMatchTable2) {
  const CostModel m = CostModel::preset(PatchLevel::kUnpatched);
  EXPECT_EQ(m.full_ecall_ns(), 4205u);               // Table 2 native single ecall
  EXPECT_EQ(m.full_ecall_ns() + m.full_ocall_ns(), 8013u);  // Table 2 ecall + ocall
}

// --- Enclave layout -------------------------------------------------------------------

TEST(Enclave, LayoutIsPowerOfTwoWithPadding) {
  Urts urts;
  EnclaveConfig config;
  config.code_pages = 10;
  config.heap_pages = 20;
  config.stack_pages = 4;
  config.tcs_count = 2;
  const EnclaveId eid = make_enclave(urts, kSimpleEdl, config);
  Enclave& e = urts.enclave(eid);
  const auto total = e.total_pages();
  EXPECT_EQ(total & (total - 1), 0u) << "size must be a power of two";
  EXPECT_EQ(e.page_type(0), PageType::kSecs);
  EXPECT_EQ(e.page_type(1), PageType::kCode);
  EXPECT_EQ(e.page_type(e.heap_base_page()), PageType::kHeap);
  EXPECT_EQ(e.page_type(total - 1), PageType::kPadding);
}

TEST(Enclave, MeasurementIsDeterministic) {
  Urts urts;
  const EnclaveId a = make_enclave(urts, kSimpleEdl);
  const EnclaveId b = make_enclave(urts, kSimpleEdl);
  EXPECT_EQ(urts.enclave(a).measurement(), urts.enclave(b).measurement());

  EnclaveConfig bigger;
  bigger.heap_pages = 512;
  const EnclaveId c = make_enclave(urts, kSimpleEdl, bigger);
  EXPECT_NE(urts.enclave(a).measurement(), urts.enclave(c).measurement());
}

TEST(Enclave, RegisterUnknownEcallThrows) {
  Urts urts;
  const EnclaveId eid = make_enclave(urts, kSimpleEdl);
  EXPECT_THROW(urts.enclave(eid).register_ecall(
                   "nope", [](TrustedContext&, void*) { return SgxStatus::kSuccess; }),
               std::invalid_argument);
}

TEST(Enclave, TcsPoolExhausts) {
  Urts urts;
  EnclaveConfig config;
  config.tcs_count = 2;
  const EnclaveId eid = make_enclave(urts, kSimpleEdl, config);
  Enclave& e = urts.enclave(eid);
  const auto a = e.acquire_tcs();
  const auto b = e.acquire_tcs();
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(e.acquire_tcs().has_value());
  e.release_tcs(*a);
  EXPECT_TRUE(e.acquire_tcs().has_value());
}

TEST(Enclave, HeapExhaustionReturnsZero) {
  Urts urts;
  EnclaveConfig config;
  config.heap_pages = 2;  // 8 KiB heap
  const EnclaveId eid = make_enclave(urts, kSimpleEdl, config);
  Enclave& e = urts.enclave(eid);
  const EnclaveAddr a = e.heap_alloc(4096);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(e.heap_alloc(8192), 0u);  // §2.3.3: the heap is not infinite
  e.heap_free(a);
  EXPECT_NE(e.heap_alloc(4096), 0u);
}

// --- ecall dispatch and costs ------------------------------------------------------

class RuntimeTest : public testing::Test {
 protected:
  void SetUp() override {
    eid_ = make_enclave(urts_, kSimpleEdl);
    table_ = make_ocall_table({&empty_ocall, &invoke_fn_ocall});
    Enclave& e = urts_.enclave(eid_);
    e.register_ecall("ecall_work", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
    e.register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
      return ctx.ocall(0, nullptr);
    });
    e.register_ecall("ecall_private",
                     [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
  }

  Urts urts_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(RuntimeTest, EmptyEcallCostsTable2Native) {
  const auto t0 = urts_.clock().now();
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(urts_.clock().now() - t0, urts_.cost().full_ecall_ns());  // 4,205 ns
}

TEST_F(RuntimeTest, EcallPlusOcallCostsTable2Native) {
  const auto t0 = urts_.clock().now();
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(urts_.clock().now() - t0, urts_.cost().full_ecall_ns() + urts_.cost().full_ocall_ns());
}

TEST_F(RuntimeTest, PatchLevelsSlowTransitions) {
  const auto run = [&] {
    const auto t0 = urts_.clock().now();
    urts_.sgx_ecall(eid_, 0, &table_, nullptr);
    return urts_.clock().now() - t0;
  };
  const auto unpatched = run();
  urts_.set_patch_level(PatchLevel::kSpectre);
  const auto spectre = run();
  urts_.set_patch_level(PatchLevel::kSpectreL1tf);
  const auto l1tf = run();
  EXPECT_EQ(spectre - unpatched, 3850u - 2130u);
  EXPECT_EQ(l1tf - unpatched, 4890u - 2130u);
}

TEST_F(RuntimeTest, InvalidIdsAreRejected) {
  EXPECT_EQ(urts_.sgx_ecall(999, 0, &table_, nullptr), SgxStatus::kInvalidEnclaveId);
  EXPECT_EQ(urts_.sgx_ecall(eid_, 99, &table_, nullptr), SgxStatus::kInvalidFunction);
}

TEST_F(RuntimeTest, UnregisteredEcallIsInvalidFunction) {
  const EnclaveId other = make_enclave(urts_, kSimpleEdl);
  EXPECT_EQ(urts_.sgx_ecall(other, 0, &table_, nullptr), SgxStatus::kInvalidFunction);
}

TEST_F(RuntimeTest, PrivateEcallRejectedFromOutside) {
  EXPECT_EQ(urts_.sgx_ecall(eid_, 2, &table_, nullptr), SgxStatus::kEcallNotAllowed);
}

TEST_F(RuntimeTest, PrivateEcallAllowedFromAllowedOcall) {
  // ecall_with_ocall -> ocall_fn -> ecall_private.  ocall_noop (id 0) allows
  // ecall_private, ocall_fn (id 1) does not.
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_with_ocall", [this](TrustedContext& ctx, void*) {
    FnMs ms;
    SgxStatus inner = SgxStatus::kSuccess;
    ms.fn = [this, &inner] {
      inner = urts_.sgx_ecall(eid_, 2, &table_, nullptr);
      return SgxStatus::kSuccess;
    };
    // ocall_fn does NOT allow ecall_private.
    const SgxStatus st = ctx.ocall(1, &ms);
    EXPECT_EQ(st, SgxStatus::kSuccess);
    EXPECT_EQ(inner, SgxStatus::kEcallNotAllowed);

    // ocall_noop DOES allow it... but ocall_noop is empty_ocall, so route the
    // nested ecall through the allowed ocall id 0 using a custom table.
    return SgxStatus::kSuccess;
  });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess);

  // Now the allowed path: replace ocall 0 with the fn dispatcher.
  OcallTable allowed_table = make_ocall_table({&invoke_fn_ocall, &empty_ocall});
  e.register_ecall("ecall_with_ocall", [this, &allowed_table](TrustedContext& ctx, void*) {
    FnMs ms;
    SgxStatus inner = SgxStatus::kUnexpected;
    ms.fn = [this, &inner, &allowed_table] {
      inner = urts_.sgx_ecall(eid_, 2, &allowed_table, nullptr);
      return SgxStatus::kSuccess;
    };
    const SgxStatus st = ctx.ocall(0, &ms);  // ocall_noop allows ecall_private
    EXPECT_EQ(st, SgxStatus::kSuccess);
    EXPECT_EQ(inner, SgxStatus::kSuccess);
    return SgxStatus::kSuccess;
  });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &allowed_table, nullptr), SgxStatus::kSuccess);
}

TEST_F(RuntimeTest, NestedEcallNeedsSecondTcs) {
  EnclaveConfig config;
  config.tcs_count = 1;
  const EnclaveId eid = make_enclave(urts_, kSimpleEdl, config);
  Enclave& e = urts_.enclave(eid);
  e.register_ecall("ecall_private", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
  OcallTable table = make_ocall_table({&invoke_fn_ocall, &empty_ocall});
  SgxStatus inner = SgxStatus::kSuccess;
  e.register_ecall("ecall_with_ocall", [&, eid](TrustedContext& ctx, void*) {
    FnMs ms;
    ms.fn = [&, eid] {
      inner = urts_.sgx_ecall(eid, 2, &table, nullptr);
      return SgxStatus::kSuccess;
    };
    return ctx.ocall(0, &ms);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid, 1, &table, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(inner, SgxStatus::kOutOfTcs);  // the single TCS is held by the outer ecall
}

TEST_F(RuntimeTest, ThrowingEcallReportsCrashAndReleasesTcs) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work",
                   [](TrustedContext&, void*) -> SgxStatus { throw std::runtime_error("boom"); });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kEnclaveCrashed);
  // The TCS must have been released: another call still works.
  e.register_ecall("ecall_work", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
}

TEST_F(RuntimeTest, OcallOutOfRangeRejected) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work",
                   [](TrustedContext& ctx, void*) { return ctx.ocall(99, nullptr); });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kOcallNotAllowed);
}

TEST_F(RuntimeTest, WorkAdvancesVirtualTime) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    ctx.work(1'000'000);
    return SgxStatus::kSuccess;
  });
  const auto t0 = urts_.clock().now();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_GE(urts_.clock().now() - t0, 1'000'000u + urts_.cost().full_ecall_ns());
}

TEST_F(RuntimeTest, CopyInChargesPerByte) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    ctx.copy_in(100'000);  // 100 KB at 0.05 ns/B = 5,000 ns
    return SgxStatus::kSuccess;
  });
  const auto t0 = urts_.clock().now();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(urts_.clock().now() - t0, urts_.cost().full_ecall_ns() + 5'000u);
}

TEST_F(RuntimeTest, LongEcallExperiencesTimerAexs) {
  Enclave& e = urts_.enclave(eid_);
  int aex_count = 0;
  urts_.hooks().aep = [&](EnclaveId, ThreadId, support::Nanoseconds, AexCause) { ++aex_count; };
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    // ~45.4 ms of in-enclave work, in 1M slices like the paper's loop.
    for (int i = 0; i < 1'000'000; ++i) ctx.work(45);
    return SgxStatus::kSuccess;
  });
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  // 45 ms / 3.943 ms per tick ~ 11.4 AEXs (Table 2 reports ~11.5).
  EXPECT_GE(aex_count, 10);
  EXPECT_LE(aex_count, 13);
}

TEST_F(RuntimeTest, ShortEcallSeesNoAex) {
  int aex_count = 0;
  urts_.hooks().aep = [&](EnclaveId, ThreadId, support::Nanoseconds, AexCause) { ++aex_count; };
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(aex_count, 0);
}

TEST_F(RuntimeTest, DestroyEnclave) {
  EXPECT_EQ(urts_.destroy_enclave(eid_), SgxStatus::kSuccess);
  EXPECT_EQ(urts_.destroy_enclave(eid_), SgxStatus::kInvalidEnclaveId);
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kInvalidEnclaveId);
}

TEST_F(RuntimeTest, EcallHookShadowsAndChains) {
  int shadow_calls = 0;
  urts_.hooks().sgx_ecall = [&](EnclaveId eid, CallId id, const OcallTable* table, void* ms) {
    ++shadow_calls;
    return urts_.real_sgx_ecall(eid, id, table, ms);
  };
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(shadow_calls, 1);
  urts_.hooks().sgx_ecall = nullptr;
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  EXPECT_EQ(shadow_calls, 1);
}

TEST_F(RuntimeTest, EnclaveTooBigForEpcPagesDuringCreation) {
  // EPC of 64 pages; enclave wants ~128: creation succeeds but pages out.
  Urts small(CostModel::preset(PatchLevel::kUnpatched), 64);
  EnclaveConfig config;
  config.heap_pages = 100;
  const EnclaveId eid = make_enclave(small, kSimpleEdl, config);
  Enclave& e = small.enclave(eid);
  EXPECT_GT(e.total_pages(), 64u);
  EXPECT_GT(small.driver().page_out_count(), 0u);
}

TEST_F(RuntimeTest, HeapTouchCausesPagingWhenEpcTooSmall) {
  Urts small(CostModel::preset(PatchLevel::kUnpatched), 32);
  EnclaveConfig config;
  config.heap_pages = 64;
  config.code_pages = 4;
  config.stack_pages = 2;
  config.tcs_count = 1;
  const EnclaveId eid = make_enclave(small, kSimpleEdl, config);
  Enclave& e = small.enclave(eid);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    // Touch the whole heap twice; the second sweep faults pages back in.
    Enclave& enc = ctx.enclave();
    const auto base = enc.heap_base_page() * kPageSize;
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (std::uint64_t p = 0; p < 64; ++p) {
        ctx.touch(base + p * kPageSize, 1, MemAccess::kWrite);
      }
    }
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({&empty_ocall, &empty_ocall});
  const auto ins_before = small.driver().page_in_count();
  EXPECT_EQ(small.sgx_ecall(eid, 0, &table, nullptr), SgxStatus::kSuccess);
  EXPECT_GT(small.driver().page_in_count(), ins_before + 32);
}

}  // namespace
