#include <gtest/gtest.h>

#include "sgxsim/edl.hpp"

namespace {

using namespace sgxsim::edl;

constexpr const char* kSample = R"(
// A sample enclave interface.
enclave {
  trusted {
    public int ecall_encrypt([in, size=len] const char* buf, size_t len,
                             [out, size=len] char* out);
    public void ecall_status(void);
    int ecall_internal([user_check] void* scratch);
  };
  untrusted {
    void ocall_print([in, size=n] const char* msg, size_t n);
    int ocall_fetch([out, size=cap] char* buf, size_t cap) allow (ecall_internal);
    void ocall_raw([user_check] void* p);
  };
};
)";

TEST(EdlParser, ParsesCounts) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_EQ(spec.ecalls.size(), 3u);
  EXPECT_EQ(spec.ocalls.size(), 3u);
}

TEST(EdlParser, IdsFollowDeclarationOrder) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_EQ(spec.ecall_id("ecall_encrypt"), 0u);
  EXPECT_EQ(spec.ecall_id("ecall_status"), 1u);
  EXPECT_EQ(spec.ecall_id("ecall_internal"), 2u);
  EXPECT_EQ(spec.ocall_id("ocall_print"), 0u);
  EXPECT_FALSE(spec.ecall_id("nope").has_value());
}

TEST(EdlParser, PublicPrivate) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_TRUE(spec.ecalls[0].is_public);
  EXPECT_TRUE(spec.ecalls[1].is_public);
  EXPECT_FALSE(spec.ecalls[2].is_public);
}

TEST(EdlParser, PointerDirections) {
  const InterfaceSpec spec = parse(kSample);
  const auto& enc = spec.ecalls[0];
  ASSERT_EQ(enc.params.size(), 3u);
  EXPECT_EQ(enc.params[0].direction, PointerDirection::kIn);
  EXPECT_EQ(enc.params[0].size_expr, "len");
  EXPECT_EQ(enc.params[1].direction, PointerDirection::kNone);
  EXPECT_EQ(enc.params[2].direction, PointerDirection::kOut);
  EXPECT_TRUE(spec.ecalls[2].has_user_check());
  EXPECT_TRUE(spec.ocalls[2].has_user_check());
  EXPECT_FALSE(spec.ocalls[0].has_user_check());
}

TEST(EdlParser, VoidParameterList) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_TRUE(spec.ecalls[1].params.empty());
}

TEST(EdlParser, AllowClause) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_TRUE(spec.ocalls[0].allowed_ecalls.empty());
  ASSERT_EQ(spec.ocalls[1].allowed_ecalls.size(), 1u);
  EXPECT_EQ(spec.ocalls[1].allowed_ecalls[0], "ecall_internal");
  EXPECT_TRUE(spec.is_allowed(1, 2));   // ocall_fetch allows ecall_internal
  EXPECT_FALSE(spec.is_allowed(0, 2));  // ocall_print allows nothing
  EXPECT_FALSE(spec.is_allowed(9, 0));  // out-of-range ocall
}

TEST(EdlParser, TypesPreserved) {
  const InterfaceSpec spec = parse(kSample);
  EXPECT_EQ(spec.ecalls[0].params[0].type, "const char*");
  EXPECT_EQ(spec.ecalls[0].return_type, "int");
  EXPECT_EQ(spec.ecalls[1].return_type, "void");
}

TEST(EdlParser, MultiWordTypes) {
  const InterfaceSpec spec = parse(R"(
    enclave {
      trusted {
        public void e([in, size=4] const unsigned char* p);
      };
      untrusted {};
    };
  )");
  EXPECT_EQ(spec.ecalls[0].params[0].type, "const unsigned char*");
}

TEST(EdlParser, CommentsSkipped) {
  const InterfaceSpec spec = parse(R"(
    enclave {
      /* block
         comment */
      trusted {
        public void e(void);  // line comment
      };
      untrusted {};
    };
  )");
  EXPECT_EQ(spec.ecalls.size(), 1u);
}

TEST(EdlParser, ImportStatementsSkipped) {
  const InterfaceSpec spec = parse(R"(
    enclave {
      from other import thing;
      trusted { public void e(void); };
      untrusted {};
    };
  )");
  EXPECT_EQ(spec.ecalls.size(), 1u);
}

TEST(EdlParser, UnattributedPointerBecomesUserCheck) {
  const InterfaceSpec spec = parse(R"(
    enclave {
      trusted { public void e(char* raw); };
      untrusted {};
    };
  )");
  EXPECT_EQ(spec.ecalls[0].params[0].direction, PointerDirection::kUserCheck);
}

TEST(EdlParser, InOutCombines) {
  const InterfaceSpec spec = parse(R"(
    enclave {
      trusted { public void e([in, out, size=8] char* buf); };
      untrusted {};
    };
  )");
  EXPECT_EQ(spec.ecalls[0].params[0].direction, PointerDirection::kInOut);
}

TEST(EdlParser, ErrorsOnGarbage) {
  EXPECT_THROW(parse("banana {"), std::runtime_error);
  EXPECT_THROW(parse("enclave { trusted { public } };"), std::runtime_error);
  EXPECT_THROW(parse("enclave { trusted {}; untrusted {}; }"), std::runtime_error);  // missing ;
}

TEST(EdlParser, ErrorsOnUnknownAllowTarget) {
  EXPECT_THROW(parse(R"(
    enclave {
      trusted { public void e(void); };
      untrusted { void o(void) allow (missing_ecall); };
    };
  )"),
               std::runtime_error);
}

TEST(EdlParser, ErrorsOnUnknownAttribute) {
  EXPECT_THROW(parse(R"(
    enclave {
      trusted { public void e([bogus] char* p); };
      untrusted {};
    };
  )"),
               std::runtime_error);
}

TEST(EdlParser, ErrorMessageCarriesLocation) {
  try {
    (void)parse("enclave {\n  banana");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos) << e.what();
  }
}

TEST(EdlParser, ParseFileMissing) {
  EXPECT_THROW(parse_file("/nonexistent/foo.edl"), std::runtime_error);
}

}  // namespace
