// Determinism of the stress suite: identical (stressor, threads, seed,
// duration) configs must produce identical bogo-ops counts and byte-identical
// merged traces — across thread counts 1/2/7 and regardless of the merge
// parallelism.  This is what makes the stressors usable as golden corpora:
// the lockstep scheduler serializes ops in worker order (pinning ThreadId
// registration), the virtual clock serializes time, and the shard merge is a
// unique total order, so nothing observable depends on OS scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/stressor.hpp"
#include "tracedb/database.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

stress::StressResult run_once(const std::string& name, std::size_t threads,
                              std::size_t merge_threads, const std::string& trace_path) {
  const auto stressor = stress::make_stressor(name);
  EXPECT_NE(stressor, nullptr) << name;
  sgxsim::Urts urts;
  tracedb::TraceDatabase db;
  perf::LoggerConfig logger_config;
  logger_config.merge_threads = merge_threads;
  perf::Logger logger(db, logger_config);
  logger.attach(urts);
  stress::StressConfig config;
  config.threads = threads;
  config.duration_ns = 20'000'000;
  config.seed = 7;
  const auto result = stress::run_stressor(*stressor, urts, config);
  logger.detach();
  EXPECT_EQ(db.merge_stats().dropped, 0u) << name;
  db.save(trace_path);
  return result;
}

TEST(StressDeterminism, IdenticalConfigsProduceIdenticalRuns) {
  const std::string dir = ::testing::TempDir();
  for (const std::string name : {"cpu", "sync", "ocall-storm"}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      const std::string tag = name + "-t" + std::to_string(threads);
      const std::string path_a = dir + "stress_det_a_" + tag + ".bin";
      const std::string path_b = dir + "stress_det_b_" + tag + ".bin";
      const auto a = run_once(name, threads, 0, path_a);
      const auto b = run_once(name, threads, 0, path_b);

      EXPECT_GT(a.bogo_ops, 0u) << tag;
      EXPECT_EQ(a.bogo_ops, b.bogo_ops) << tag;
      EXPECT_EQ(a.per_thread_ops, b.per_thread_ops) << tag;
      EXPECT_EQ(a.elapsed_ns, b.elapsed_ns) << tag;

      const auto bytes_a = read_file(path_a);
      const auto bytes_b = read_file(path_b);
      EXPECT_FALSE(bytes_a.empty()) << tag;
      EXPECT_EQ(bytes_a, bytes_b) << tag << ": merged traces are not byte-identical";
    }
  }
}

TEST(StressDeterminism, MergeParallelismDoesNotChangeTheTrace) {
  const std::string dir = ::testing::TempDir();
  const std::string serial = dir + "stress_det_merge1.bin";
  const std::string parallel = dir + "stress_det_merge4.bin";
  const auto a = run_once("ocall-storm", 7, 1, serial);
  const auto b = run_once("ocall-storm", 7, 4, parallel);
  EXPECT_EQ(a.bogo_ops, b.bogo_ops);
  EXPECT_EQ(read_file(serial), read_file(parallel));
}

}  // namespace
