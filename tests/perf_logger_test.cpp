// Event logger tests: sgx_ecall shadowing, ocall table rewriting with
// generated stubs, direct parents, sync classification, AEX counting and
// tracing, paging capture, and the Table 2 overhead calibration.
#include <gtest/gtest.h>

#include "perf/logger.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::FnMs;
using test_helpers::invoke_fn_ocall;
using test_helpers::make_enclave;
using tracedb::CallType;
using tracedb::OcallKind;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_work(void);
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
    void ocall_fn(void);
  };
};
)";

class LoggerTest : public testing::Test {
 protected:
  void SetUp() override {
    logger_ = std::make_unique<perf::Logger>(db_);
    logger_->attach(urts_);
    eid_ = make_enclave(urts_, kEdl);
    table_ = make_ocall_table({&empty_ocall, &invoke_fn_ocall});
    Enclave& e = urts_.enclave(eid_);
    e.register_ecall("ecall_work", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
    e.register_ecall("ecall_with_ocall",
                     [](TrustedContext& ctx, void*) { return ctx.ocall(0, nullptr); });
  }

  void TearDown() override { logger_->detach(); }

  /// Merges the per-thread shards so the database can be inspected while
  /// the logger stays attached.
  tracedb::TraceDatabase& trace() {
    logger_->flush();
    return db_;
  }

  Urts urts_;
  tracedb::TraceDatabase db_;
  std::unique_ptr<perf::Logger> logger_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(LoggerTest, RecordsEcall) {
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  ASSERT_EQ(trace().calls().size(), 1u);
  const auto& c = db_.calls()[0];
  EXPECT_EQ(c.type, CallType::kEcall);
  EXPECT_EQ(c.call_id, 0u);
  EXPECT_EQ(c.enclave_id, eid_);
  EXPECT_EQ(c.parent, tracedb::kNoParent);
  EXPECT_GT(c.duration(), 0u);
}

TEST_F(LoggerTest, EcallOverheadMatchesTable2) {
  // Native ecall: 4,205 ns.  With logging: 5,572 ns (≈1,366 ns overhead).
  const auto t0 = urts_.clock().now();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  const auto elapsed = urts_.clock().now() - t0;
  EXPECT_EQ(elapsed, urts_.cost().full_ecall_ns() + urts_.cost().logger_ecall_pre_ns +
                         urts_.cost().logger_ecall_post_ns);
  EXPECT_EQ(elapsed, 5571u);  // 4205 + 1366
}

TEST_F(LoggerTest, OcallOverheadMatchesTable2) {
  const auto t0 = urts_.clock().now();
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);
  const auto elapsed = urts_.clock().now() - t0;
  // ecall-with-logging + ocall + ocall-logging = 5,571 + 3,808 + 1,320.
  EXPECT_EQ(elapsed, 5571u + urts_.cost().full_ocall_ns() + 1320u);
}

TEST_F(LoggerTest, OcallGetsDirectParent) {
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);
  ASSERT_EQ(trace().calls().size(), 2u);
  const auto& ecall = db_.calls()[0];
  const auto& ocall = db_.calls()[1];
  EXPECT_EQ(ecall.type, CallType::kEcall);
  EXPECT_EQ(ocall.type, CallType::kOcall);
  EXPECT_EQ(ocall.parent, 0);  // index of the ecall
  EXPECT_GE(ocall.start_ns, ecall.start_ns);
  EXPECT_LE(ocall.end_ns, ecall.end_ns);
}

TEST_F(LoggerTest, OcallDurationExcludesTransitions) {
  // §4.1.2: ocall timestamps are recorded outside the enclave, so an empty
  // ocall's traced duration is just the stub dispatch — far below the
  // transition cost.
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);
  ASSERT_EQ(trace().calls().size(), 2u);
  const auto& ocall = db_.calls()[1];
  EXPECT_LT(ocall.duration(), urts_.cost().transition_round_trip_ns());
}

TEST_F(LoggerTest, StubTablesAreCachedPerTable) {
  auto& registry = perf::OcallStubRegistry::instance();
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);
  const auto stubs_after_first = registry.stubs_in_use();
  EXPECT_EQ(stubs_after_first, table_.entries.size());
  urts_.sgx_ecall(eid_, 1, &table_, nullptr);
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(registry.stubs_in_use(), stubs_after_first);  // created once (§4.1.2)
  EXPECT_EQ(registry.tables_cached(), 1u);
}

TEST_F(LoggerTest, NestedEcallDuringOcallGetsOcallParent) {
  constexpr const char* kNestedEdl = R"(
    enclave {
      trusted {
        public int ecall_outer(void);
        public int ecall_inner(void);
      };
      untrusted {
        void ocall_fn(void) allow (ecall_inner);
      };
    };
  )";
  EnclaveConfig config;
  config.tcs_count = 2;
  const EnclaveId eid = make_enclave(urts_, kNestedEdl, config);
  OcallTable table = make_ocall_table({&invoke_fn_ocall});
  Enclave& e = urts_.enclave(eid);
  e.register_ecall("ecall_inner",
                   [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
  e.register_ecall("ecall_outer", [&, eid](TrustedContext& ctx, void*) {
    FnMs ms;
    ms.fn = [&, eid] { return urts_.sgx_ecall(eid, 1, &table, nullptr); };
    return ctx.ocall(0, &ms);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid, 0, &table, nullptr), SgxStatus::kSuccess);

  ASSERT_EQ(trace().calls().size(), 3u);
  const auto& outer = db_.calls()[0];
  const auto& ocall = db_.calls()[1];
  const auto& inner = db_.calls()[2];
  EXPECT_EQ(outer.parent, tracedb::kNoParent);
  EXPECT_EQ(ocall.parent, 0);
  EXPECT_EQ(inner.type, CallType::kEcall);
  EXPECT_EQ(inner.parent, 1);  // direct parent is the ocall
}

TEST_F(LoggerTest, SyncOcallsClassified) {
  constexpr const char* kSyncEdl = R"(
    enclave {
      trusted { public int ecall_wake(void); };
      untrusted {};
    };
  )";
  const EnclaveId eid = make_enclave(urts_, kSyncEdl);
  OcallTable table = make_ocall_table({});
  Enclave& e = urts_.enclave(eid);
  const MutexId m = e.create_mutex();
  // Simulate the contended-unlock path: pre-insert a fake waiter so unlock
  // issues the wake-one ocall.
  e.register_ecall("ecall_wake", [&, m](TrustedContext& ctx, void*) {
    EXPECT_EQ(ctx.mutex_lock(m), SgxStatus::kSuccess);
    {
      std::lock_guard lock(e.sync_mu());
      e.mutex_state(m).waiters.push_back(12345);
    }
    return ctx.mutex_unlock(m);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid, 0, &table, nullptr), SgxStatus::kSuccess);

  ASSERT_EQ(trace().calls().size(), 2u);
  const auto& wake = db_.calls()[1];
  EXPECT_EQ(wake.type, CallType::kOcall);
  EXPECT_EQ(wake.kind, OcallKind::kWakeOne);
  ASSERT_EQ(db_.syncs().size(), 1u);
  EXPECT_EQ(db_.syncs()[0].kind, tracedb::SyncKind::kWakeup);
  EXPECT_EQ(db_.syncs()[0].target_thread_id, 12345u);
  // The wake ocall carries the SDK name.
  EXPECT_EQ(db_.name_of(eid, CallType::kOcall, wake.call_id),
            "sgx_thread_set_untrusted_event_ocall");
}

TEST_F(LoggerTest, AexCounting) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    for (int i = 0; i < 100'000; ++i) ctx.work(450);  // ~45 ms
    return SgxStatus::kSuccess;
  });
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  ASSERT_EQ(trace().calls().size(), 1u);
  const auto& c = db_.calls()[0];
  EXPECT_GE(c.aex_count, 10u);
  EXPECT_LE(c.aex_count, 13u);
  EXPECT_TRUE(db_.aexs().empty());  // counting only, not tracing
}

TEST_F(LoggerTest, AexTracingRecordsTimestamps) {
  logger_->detach();
  perf::LoggerConfig config;
  config.trace_aex = true;
  logger_ = std::make_unique<perf::Logger>(db_, config);
  logger_->attach(urts_);

  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    for (int i = 0; i < 100'000; ++i) ctx.work(450);
    return SgxStatus::kSuccess;
  });
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  ASSERT_FALSE(trace().aexs().empty());
  const auto& c = db_.calls().back();
  EXPECT_EQ(c.aex_count, db_.aexs().size());
  for (const auto& aex : db_.aexs()) {
    EXPECT_EQ(aex.during_call, static_cast<tracedb::CallIndex>(db_.calls().size() - 1));
    EXPECT_GE(aex.timestamp_ns, c.start_ns);
    EXPECT_LE(aex.timestamp_ns, c.end_ns);
  }
}

TEST_F(LoggerTest, PagingEventsCaptured) {
  // Rebuild a machine with a tiny EPC to force paging.
  Urts small(CostModel::preset(PatchLevel::kUnpatched), 48);
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(small);
  EnclaveConfig config;
  config.heap_pages = 64;
  config.code_pages = 4;
  config.stack_pages = 2;
  config.tcs_count = 1;
  const EnclaveId eid = make_enclave(small, kEdl, config);
  Enclave& e = small.enclave(eid);
  e.register_ecall("ecall_work", [](TrustedContext& ctx, void*) {
    const auto base = ctx.enclave().heap_base_page() * kPageSize;
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (std::uint64_t p = 0; p < 64; ++p) ctx.touch(base + p * kPageSize, 1, MemAccess::kWrite);
    }
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({&empty_ocall, &empty_ocall});
  small.sgx_ecall(eid, 0, &table, nullptr);
  logger.detach();

  EXPECT_FALSE(db.paging().empty());
  bool saw_in = false;
  bool saw_out = false;
  for (const auto& p : db.paging()) {
    saw_in |= p.direction == tracedb::PageDirection::kPageIn;
    saw_out |= p.direction == tracedb::PageDirection::kPageOut;
    EXPECT_EQ(p.enclave_id, eid);
  }
  EXPECT_TRUE(saw_in);
  EXPECT_TRUE(saw_out);
}

TEST_F(LoggerTest, EnclaveLifecycleRecorded) {
  ASSERT_FALSE(db_.enclaves().empty());
  const auto& rec = db_.enclaves()[0];
  EXPECT_EQ(rec.enclave_id, eid_);
  EXPECT_EQ(rec.tcs_count, urts_.enclave(eid_).tcs_count());
  EXPECT_EQ(rec.destroyed_ns, 0u);
  urts_.destroy_enclave(eid_);
  EXPECT_GT(db_.enclaves()[0].destroyed_ns, 0u);
}

TEST_F(LoggerTest, CallNamesComeFromEdl) {
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(db_.name_of(eid_, CallType::kEcall, 0), "ecall_work");
  EXPECT_EQ(db_.name_of(eid_, CallType::kEcall, 1), "ecall_with_ocall");
  EXPECT_EQ(db_.name_of(eid_, CallType::kOcall, 0), "ocall_noop");
}

TEST_F(LoggerTest, DetachStopsTracing) {
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(trace().calls().size(), 1u);
  logger_->detach();
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  EXPECT_EQ(db_.calls().size(), 1u);  // no longer traced
  logger_->attach(urts_);             // re-attach for TearDown symmetry
}

TEST_F(LoggerTest, DoubleAttachThrows) {
  EXPECT_THROW(logger_->attach(urts_), std::logic_error);
}

TEST_F(LoggerTest, DetachWithCallsInFlightFinalizesOpenRecords) {
  // Detach from *inside* a traced ocall: both the ocall and its enclosing
  // ecall are still open.  Detach must finalize them (end = detach time),
  // not leak half-open records, and the unwinding frames must not record
  // anything further or crash on the torn-down logger.
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_with_ocall", [&](TrustedContext& ctx, void*) {
    FnMs ms;
    ms.fn = [&] {
      logger_->detach();
      return SgxStatus::kSuccess;
    };
    return ctx.ocall(1, &ms);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess);

  ASSERT_EQ(db_.calls().size(), 2u);
  const auto& ecall = db_.calls()[0];
  const auto& ocall = db_.calls()[1];
  EXPECT_EQ(ecall.type, CallType::kEcall);
  EXPECT_EQ(ocall.type, CallType::kOcall);
  EXPECT_EQ(ocall.parent, 0);
  for (const auto& c : db_.calls()) {
    EXPECT_GT(c.end_ns, 0u);  // finalized, not leaked
    EXPECT_GE(c.end_ns, c.start_ns);
  }
  logger_->attach(urts_);  // re-attach for TearDown symmetry
}

TEST_F(LoggerTest, DetachWithCallsInFlightFinalizesMutexModeToo) {
  logger_->detach();
  perf::LoggerConfig config;
  config.sharded = false;
  logger_ = std::make_unique<perf::Logger>(db_, config);
  logger_->attach(urts_);

  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_with_ocall", [&](TrustedContext& ctx, void*) {
    FnMs ms;
    ms.fn = [&] {
      logger_->detach();
      return SgxStatus::kSuccess;
    };
    return ctx.ocall(1, &ms);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess);

  ASSERT_EQ(db_.calls().size(), 2u);
  for (const auto& c : db_.calls()) {
    EXPECT_GT(c.end_ns, 0u);
    EXPECT_GE(c.end_ns, c.start_ns);
  }
  logger_->attach(urts_);
}

TEST_F(LoggerTest, FlushWithCallsInFlightThrows) {
  Enclave& e = urts_.enclave(eid_);
  e.register_ecall("ecall_with_ocall", [&](TrustedContext& ctx, void*) {
    FnMs ms;
    ms.fn = [&] {
      EXPECT_THROW(logger_->flush(), std::logic_error);
      return SgxStatus::kSuccess;
    };
    return ctx.ocall(1, &ms);
  });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess);
}

TEST_F(LoggerTest, EnclaveCreatedBeforeAttachIsRegisteredLazily) {
  Urts fresh;
  const EnclaveId eid = make_enclave(fresh, kEdl);
  Enclave& e = fresh.enclave(eid);
  e.register_ecall("ecall_work", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });

  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(fresh);  // after creation
  OcallTable table = make_ocall_table({&empty_ocall, &empty_ocall});
  fresh.sgx_ecall(eid, 0, &table, nullptr);
  logger.detach();

  EXPECT_EQ(db.calls().size(), 1u);
  EXPECT_EQ(db.name_of(eid, CallType::kEcall, 0), "ecall_work");
  EXPECT_FALSE(db.enclaves().empty());
}

}  // namespace
