// Detector precision/recall against the labeled stress corpus.
//
// Every stressor in src/stress declares ground truth: the anti-pattern alert
// kinds its construction must trigger and must not.  For each stressor this
// test records one run through the soak harness and checks the labels twice:
//
//  * online — the OnlineAnalyzer's end-of-run active-alert kinds (what
//    `sgxperf stress` reports), via the SoakResult verdict;
//  * post-mortem — the Analyzer's finding kinds over the merged trace,
//    mapped through the same finding->alert correspondence the parity tests
//    use.
//
// Both sides must show 100% recall on must_trigger and zero false positives
// from must_not; a per-detector precision/recall table goes to the test log.
// The runs must also be lossless (no stream drops, no sealed-shard drops, no
// pending-parent evictions) — the labels are only meaningful on full data.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "perf/analyzer.hpp"
#include "perf/online.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/harness.hpp"
#include "tracedb/database.hpp"

namespace {

using tracedb::AlertKind;

/// Post-mortem finding kinds with an online/alert analogue (interface and
/// security findings need an EDL and are post-mortem only).
std::optional<AlertKind> alert_kind_of(perf::FindingKind k) {
  switch (k) {
    case perf::FindingKind::kShortCalls: return AlertKind::kShortCalls;
    case perf::FindingKind::kReorderStart: return AlertKind::kReorderStart;
    case perf::FindingKind::kReorderEnd: return AlertKind::kReorderEnd;
    case perf::FindingKind::kBatchable: return AlertKind::kBatchable;
    case perf::FindingKind::kMergeable: return AlertKind::kMergeable;
    case perf::FindingKind::kSyncContention: return AlertKind::kSyncContention;
    case perf::FindingKind::kPaging: return AlertKind::kPaging;
    case perf::FindingKind::kTailLatency: return AlertKind::kTailLatency;
    case perf::FindingKind::kOutOfOrderEcall: return AlertKind::kOutOfOrderEcall;
    case perf::FindingKind::kReentrantEcall: return AlertKind::kReentrantEcall;
    case perf::FindingKind::kUseBeforeInit: return AlertKind::kUseBeforeInit;
    case perf::FindingKind::kUseAfterDestroy: return AlertKind::kUseAfterDestroy;
    case perf::FindingKind::kPhaseViolation: return AlertKind::kPhaseViolation;
    default: return std::nullopt;
  }
}

struct CorpusRun {
  std::string name;
  stress::StressorSpec spec;
  std::set<AlertKind> online;      // end-of-run active alert kinds
  std::set<AlertKind> postmortem;  // Analyzer finding kinds (mapped)
};

/// One corpus recording: small virtual durations keep the whole suite well
/// under the ctest timeout; vm/mixed shrink the EPC to 4 MiB so the 1.25x
/// working set stays small (the stressor sizes itself off the machine).
CorpusRun record_corpus(const std::string& name, support::Nanoseconds duration_ns,
                        std::size_t epc_pages) {
  auto stressor = stress::make_stressor(name);
  EXPECT_NE(stressor, nullptr) << name;

  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched), epc_pages);
  tracedb::TraceDatabase db;
  stress::SoakConfig config;
  config.stress.threads = 2;
  config.stress.duration_ns = duration_ns;
  const auto result = stress::run_soak(*stressor, urts, db, config);

  // Labels are only assertable on lossless runs.
  EXPECT_EQ(result.stream_dropped, 0u) << name;
  EXPECT_EQ(result.sealed_dropped, 0u) << name;
  EXPECT_EQ(result.pending_evicted, 0u) << name;
  EXPECT_GT(result.events, 0u) << name;
  EXPECT_GT(result.stress.bogo_ops, 0u) << name;

  CorpusRun run;
  run.name = name;
  run.spec = stressor->spec();
  run.online = result.triggered;
  for (const auto& finding : perf::Analyzer(db).analyze().findings) {
    if (const auto kind = alert_kind_of(finding.kind)) run.postmortem.insert(*kind);
  }
  return run;
}

void expect_labels(const CorpusRun& run, const std::set<AlertKind>& fired, const char* side) {
  for (const auto kind : run.spec.must_trigger) {
    EXPECT_TRUE(fired.count(kind) != 0)
        << run.name << " (" << side << "): missed must-trigger label "
        << perf::to_string(kind);
  }
  for (const auto kind : run.spec.must_not) {
    EXPECT_TRUE(fired.count(kind) == 0)
        << run.name << " (" << side << "): false positive on must-not label "
        << perf::to_string(kind);
  }
}

std::vector<CorpusRun> record_all() {
  // Default EPC for the transition/sync stressors (they never page); a
  // 4 MiB EPC (1024 pages) for the paging ones.
  std::vector<CorpusRun> runs;
  runs.push_back(record_corpus("cpu", 10'000'000, sgxsim::Driver::kDefaultEpcPages));
  runs.push_back(record_corpus("sync", 10'000'000, sgxsim::Driver::kDefaultEpcPages));
  runs.push_back(record_corpus("ocall-storm", 20'000'000, sgxsim::Driver::kDefaultEpcPages));
  runs.push_back(record_corpus("vm", 10'000'000, 1024));
  runs.push_back(record_corpus("mixed", 80'000'000, 1024));
  // The orderliness pair: the violating script needs ~12 worker-0 ops, well
  // inside 20 ms of virtual time at two workers.
  runs.push_back(record_corpus("order", 20'000'000, sgxsim::Driver::kDefaultEpcPages));
  runs.push_back(record_corpus("order-clean", 20'000'000, sgxsim::Driver::kDefaultEpcPages));
  return runs;
}

TEST(StressDetectorAccuracy, LabeledCorpusPrecisionRecall) {
  const auto runs = record_all();
  ASSERT_EQ(runs.size(), stress::stressor_names().size());

  for (const auto& run : runs) {
    expect_labels(run, run.online, "online");
    expect_labels(run, run.postmortem, "post-mortem");
  }

  // Per-detector precision/recall across the corpus, counting each
  // (stressor, side) pair as one labeled sample.  With the assertions above
  // green this prints 1.00/1.00 everywhere — the table is the evidence trail
  // (EXPERIMENTS.md E14).
  struct Tally {
    unsigned tp = 0, fp = 0, fn = 0, tn = 0;
  };
  std::map<AlertKind, Tally> tally;
  for (const auto& run : runs) {
    for (const auto* fired : {&run.online, &run.postmortem}) {
      for (const auto kind : run.spec.must_trigger) {
        (fired->count(kind) != 0 ? tally[kind].tp : tally[kind].fn) += 1;
      }
      for (const auto kind : run.spec.must_not) {
        (fired->count(kind) != 0 ? tally[kind].fp : tally[kind].tn) += 1;
      }
    }
  }
  std::printf("detector         precision  recall   (tp/fp/fn/tn over %zu labeled runs x 2 sides)\n",
              runs.size());
  for (const auto& [kind, t] : tally) {
    const double precision =
        t.tp + t.fp == 0 ? 1.0 : static_cast<double>(t.tp) / (t.tp + t.fp);
    const double recall = t.tp + t.fn == 0 ? 1.0 : static_cast<double>(t.tp) / (t.tp + t.fn);
    std::printf("%-16s %9.2f %7.2f   (%u/%u/%u/%u)\n", perf::to_string(kind), precision, recall,
                t.tp, t.fp, t.fn, t.tn);
    EXPECT_DOUBLE_EQ(precision, 1.0) << perf::to_string(kind);
    EXPECT_DOUBLE_EQ(recall, 1.0) << perf::to_string(kind);
  }
}

TEST(StressDetectorAccuracy, EveryStressorDeclaresDisjointLabels) {
  for (const auto& name : stress::stressor_names()) {
    const auto stressor = stress::make_stressor(name);
    ASSERT_NE(stressor, nullptr) << name;
    const auto& spec = stressor->spec();
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.description.empty()) << name;
    for (const auto kind : spec.must_trigger) {
      EXPECT_EQ(spec.must_not.count(kind), 0u)
          << name << ": label " << perf::to_string(kind) << " in both sets";
      EXPECT_NE(kind, AlertKind::kLatencyShift) << name << ": kLatencyShift is unlabeled";
    }
    for (const auto kind : spec.must_not) {
      EXPECT_NE(kind, AlertKind::kLatencyShift) << name << ": kLatencyShift is unlabeled";
    }
  }
  EXPECT_EQ(stress::make_stressor("no-such-stressor"), nullptr);
}

}  // namespace
