// In-enclave synchronisation tests: SDK mutex semantics (§2.3.2), hybrid
// spin locks (§3.4), condition variables, and the sleep/wake ocall pattern.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sgxsim/runtime.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::make_enclave;

constexpr const char* kSyncEdl = R"(
enclave {
  trusted {
    public int ecall_locked_increment(void);
    public int ecall_cond_wait(void);
    public int ecall_cond_signal(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

// Counts invocations of the builtin sync ocalls by wrapping the table slots.
struct SyncCounters {
  static std::atomic<int> sleeps;
  static std::atomic<int> wakes;
  static OcallFn real_sleep;
  static OcallFn real_wake;

  static SgxStatus counting_sleep(void* ms) {
    ++sleeps;
    return real_sleep(ms);
  }
  static SgxStatus counting_wake(void* ms) {
    ++wakes;
    return real_wake(ms);
  }
};
std::atomic<int> SyncCounters::sleeps{0};
std::atomic<int> SyncCounters::wakes{0};
OcallFn SyncCounters::real_sleep = nullptr;
OcallFn SyncCounters::real_wake = nullptr;

class SyncTest : public testing::Test {
 protected:
  void SetUp() override {
    SyncCounters::sleeps = 0;
    SyncCounters::wakes = 0;
    EnclaveConfig config;
    config.tcs_count = 8;
    eid_ = make_enclave(urts_, kSyncEdl, config);
    table_ = make_ocall_table({&empty_ocall});
    // Wrap the sleep (offset 0) and wake-one (offset 1) slots with counters.
    SyncCounters::real_sleep = table_.entries[table_.sync_base + 0];
    SyncCounters::real_wake = table_.entries[table_.sync_base + 1];
    table_.entries[table_.sync_base + 0] = &SyncCounters::counting_sleep;
    table_.entries[table_.sync_base + 1] = &SyncCounters::counting_wake;
  }

  Urts urts_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(SyncTest, UncontendedLockStaysInEnclave) {
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex();
  e.register_ecall("ecall_locked_increment", [m](TrustedContext& ctx, void*) {
    EXPECT_EQ(ctx.mutex_lock(m), SgxStatus::kSuccess);
    return ctx.mutex_unlock(m);
  });
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  }
  // §2.3.2: locking an unlocked mutex succeeds without leaving the enclave.
  EXPECT_EQ(SyncCounters::sleeps.load(), 0);
  EXPECT_EQ(SyncCounters::wakes.load(), 0);
}

TEST_F(SyncTest, UnlockWithoutOwnershipFails) {
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex();
  e.register_ecall("ecall_locked_increment",
                   [m](TrustedContext& ctx, void*) { return ctx.mutex_unlock(m); });
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kInvalidParameter);
}

TEST_F(SyncTest, ContendedSdkMutexSleepsAndWakes) {
  // Deterministic contention: the holder keeps the lock until it *sees* the
  // second thread enqueued in the waiter list, then unlocks — which must
  // issue the wake-one ocall (§2.3.2: "a mutex lock can therefore result in
  // two ocalls").
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex(MutexKind::kSdkDefault);
  std::atomic<bool> holding{false};

  e.register_ecall("ecall_locked_increment", [&, m](TrustedContext& ctx, void*) {
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    holding = true;
    // Wait until the contender has parked itself in the waiter queue.
    for (;;) {
      {
        std::lock_guard lock(e.sync_mu());
        if (!e.mutex_state(m).waiters.empty()) break;
      }
      std::this_thread::yield();
    }
    return ctx.mutex_unlock(m);
  });
  e.register_ecall("ecall_cond_wait", [&, m](TrustedContext& ctx, void*) {
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    return ctx.mutex_unlock(m);
  });

  std::thread holder(
      [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess); });
  while (!holding) std::this_thread::yield();
  std::thread contender(
      [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess); });
  holder.join();
  contender.join();

  EXPECT_GE(SyncCounters::sleeps.load(), 1);
  EXPECT_GE(SyncCounters::wakes.load(), 1);
}

TEST_F(SyncTest, HybridMutexAcquiresViaSpinWithoutSleeping) {
  // The holder releases as soon as the contender signals it is about to
  // spin; with a large spin budget the contender must acquire the lock
  // inside the enclave, without a sleep ocall (§3.4).
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex(MutexKind::kHybridSpin, 50'000'000);
  std::atomic<bool> holding{false};
  std::atomic<bool> contender_ready{false};

  e.register_ecall("ecall_locked_increment", [&, m](TrustedContext& ctx, void*) {
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    holding = true;
    while (!contender_ready) std::this_thread::yield();
    return ctx.mutex_unlock(m);
  });
  e.register_ecall("ecall_cond_wait", [&, m](TrustedContext& ctx, void*) {
    contender_ready = true;
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    return ctx.mutex_unlock(m);
  });

  std::thread holder(
      [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess); });
  while (!holding) std::this_thread::yield();
  std::thread contender(
      [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess); });
  holder.join();
  contender.join();

  EXPECT_EQ(SyncCounters::sleeps.load(), 0);
  // No sleeper means no wake either: the whole handover stayed in-enclave.
  EXPECT_EQ(SyncCounters::wakes.load(), 0);
}

TEST_F(SyncTest, CondSignalWakesWaiter) {
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex();
  const CondId cv = e.create_cond();
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};

  e.register_ecall("ecall_cond_wait", [&, m, cv](TrustedContext& ctx, void*) {
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    ready = true;
    if (auto st = ctx.cond_wait(cv, m); st != SgxStatus::kSuccess) return st;
    woke = true;
    return ctx.mutex_unlock(m);
  });
  e.register_ecall("ecall_cond_signal",
                   [cv](TrustedContext& ctx, void*) { return ctx.cond_signal(cv); });

  std::thread waiter(
      [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess); });
  while (!ready) std::this_thread::yield();
  // Give the waiter a moment to actually park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(urts_.sgx_ecall(eid_, 2, &table_, nullptr), SgxStatus::kSuccess);
  waiter.join();
  EXPECT_TRUE(woke.load());
  EXPECT_GE(SyncCounters::wakes.load(), 1);
}

TEST_F(SyncTest, CondBroadcastWakesAll) {
  Enclave& e = urts_.enclave(eid_);
  const MutexId m = e.create_mutex();
  const CondId cv = e.create_cond();
  std::atomic<int> waiting{0};
  std::atomic<int> woken{0};

  e.register_ecall("ecall_cond_wait", [&, m, cv](TrustedContext& ctx, void*) {
    if (auto st = ctx.mutex_lock(m); st != SgxStatus::kSuccess) return st;
    ++waiting;
    if (auto st = ctx.cond_wait(cv, m); st != SgxStatus::kSuccess) return st;
    ++woken;
    return ctx.mutex_unlock(m);
  });
  e.register_ecall("ecall_cond_signal",
                   [cv](TrustedContext& ctx, void*) { return ctx.cond_broadcast(cv); });

  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back(
        [&] { EXPECT_EQ(urts_.sgx_ecall(eid_, 1, &table_, nullptr), SgxStatus::kSuccess); });
  }
  while (waiting.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(urts_.sgx_ecall(eid_, 2, &table_, nullptr), SgxStatus::kSuccess);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST_F(SyncTest, ParkUnparkPermitSurvivesEarlyWake) {
  // A wake delivered before the sleep must not be lost (permit semantics).
  const ThreadId self = urts_.current_thread_id();
  urts_.unpark(self);
  urts_.park_current_thread();  // consumes the stored permit, returns at once
  SUCCEED();
}

}  // namespace
