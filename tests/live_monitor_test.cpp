// LiveMonitor ("sgxperf top" engine) and the logger's latency histograms:
// live aggregation while attached, rendered frames, and the HDR snapshot /
// persisted latency-table consistency at detach.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "perf/live.hpp"
#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
  enclave {
    trusted { public int ecall_spin(void); };
    untrusted { void ocall_blip(void); };
  };
)";

TEST(LiveMonitor, AggregatesSitesWhileAttached) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  perf::LiveMonitor monitor(logger);
  ASSERT_TRUE(monitor.ok());

  EnclaveConfig config;
  config.tcs_count = 3;
  const EnclaveId eid = test_helpers::make_enclave(urts, kEdl, std::move(config));
  urts.enclave(eid).register_ecall("ecall_spin", [](TrustedContext& ctx, void*) {
    ctx.work(1'000);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&test_helpers::empty_ocall});
  std::thread other([&] {
    for (int i = 0; i < 30; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  });
  for (int i = 0; i < 30; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  other.join();

  // The logger is still attached: everything must be visible already.
  monitor.drain();
  EXPECT_EQ(monitor.total_calls(), 120u);  // 60 ecalls + 60 ocalls
  EXPECT_EQ(monitor.dropped(), 0u);
  ASSERT_EQ(monitor.sites().size(), 2u);
  for (const auto& [key, site] : monitor.sites()) {
    EXPECT_EQ(site.count, 60u);
    EXPECT_EQ(site.latency.count(), 60u);
    EXPECT_GT(site.latency.value_at_percentile(50), 0u);
  }

  const std::string frame = monitor.render_frame();
  EXPECT_NE(frame.find("sgxperf top — frame 1"), std::string::npos);
  EXPECT_NE(frame.find("ecall_spin"), std::string::npos);
  EXPECT_NE(frame.find("ocall_blip"), std::string::npos);
  EXPECT_NE(frame.find("p99.9[us]"), std::string::npos);

  logger.detach();
}

TEST(LiveMonitor, LatencySnapshotMatchesPersistedTable) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  const EnclaveId eid = test_helpers::make_enclave(urts, kEdl);
  urts.enclave(eid).register_ecall("ecall_spin", [](TrustedContext& ctx, void*) {
    ctx.work(2'500);
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({&test_helpers::empty_ocall});
  for (int i = 0; i < 40; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);

  // Live snapshot while attached.
  const auto live = logger.latency_snapshot(eid, tracedb::CallType::kEcall, 0);
  EXPECT_EQ(live.count(), 40u);
  logger.detach();

  // After detach the same distribution is in the trace's latency table.
  const auto* rec = db.find_latency(eid, tracedb::CallType::kEcall, 0);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count, 40u);
  telemetry::HdrSnapshot from_table;
  for (const auto& [idx, n] : rec->buckets) from_table.add_bucket(idx, n);
  from_table.set_exact_sum(rec->sum_ns);
  for (const double q : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(from_table.value_at_percentile(q), live.value_at_percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(from_table.sum(), live.sum());
}

TEST(LiveMonitor, HistogramsCanBeDisabled) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::LoggerConfig config;
  config.latency_histograms = false;
  perf::Logger logger(db, config);
  logger.attach(urts);

  const EnclaveId eid = test_helpers::make_enclave(urts, kEdl);
  urts.enclave(eid).register_ecall(
      "ecall_spin", [](TrustedContext& ctx, void*) { ctx.work(100); return SgxStatus::kSuccess; });
  OcallTable table = make_ocall_table({&test_helpers::empty_ocall});
  for (int i = 0; i < 5; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  EXPECT_EQ(logger.latency_snapshot(eid, tracedb::CallType::kEcall, 0).count(), 0u);
  logger.detach();
  EXPECT_EQ(db.find_latency(eid, tracedb::CallType::kEcall, 0), nullptr);
  EXPECT_EQ(db.calls().size(), 5u);  // the trace itself is unaffected
}

}  // namespace
