// Interface-orderliness correctness:
//  * model plumbing — spec files and OrderRuleRecord rows round-trip the
//    OrderModel exactly, malformed specs are rejected with line numbers;
//  * learning — a crafted baseline yields the expected entries/edges/
//    reentrant sets, and the init phase is only inferred when the baseline
//    itself respects it;
//  * checker semantics — one unit test per violation kind on hand-fed event
//    sequences, plus the non-events (ocalls, unmodelled enclaves, recovery
//    edges, whitelisted re-entrancy);
//  * parity — on the order/order-clean stressors the online checker's
//    persisted alert set equals check_trace() over the merged trace
//    (modulo window_index, which only the online path assigns), and on the
//    organic workloads (demo / minikv / minidb) a model learned from the
//    run validates that same run cleanly on both paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "minikv/driver.hpp"
#include "perf/logger.hpp"
#include "perf/online.hpp"
#include "perf/orderliness.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/harness.hpp"
#include "stress/stressor.hpp"
#include "tests/sim_helpers.hpp"
#include "tracedb/database.hpp"

namespace {

using perf::EnclaveOrderModel;
using perf::OrderChecker;
using perf::OrderModel;
using perf::OrderViolation;
using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;

void expect_model_eq(const OrderModel& a, const OrderModel& b) {
  ASSERT_EQ(a.enclaves.size(), b.enclaves.size());
  for (const auto& [eid, ea] : a.enclaves) {
    const auto it = b.enclaves.find(eid);
    ASSERT_NE(it, b.enclaves.end()) << "enclave " << eid;
    const EnclaveOrderModel& eb = it->second;
    EXPECT_EQ(ea.has_init, eb.has_init) << "enclave " << eid;
    if (ea.has_init) {
      EXPECT_EQ(ea.init_call_id, eb.init_call_id) << "enclave " << eid;
    }
    EXPECT_EQ(ea.entries, eb.entries) << "enclave " << eid;
    EXPECT_EQ(ea.known, eb.known) << "enclave " << eid;
    EXPECT_EQ(ea.edges, eb.edges) << "enclave " << eid;
    EXPECT_EQ(ea.reentrant_ok, eb.reentrant_ok) << "enclave " << eid;
  }
}

/// A two-enclave model exercising every directive; known covers every id
/// named by init/entry/edge (as parsed and learned models always do).
OrderModel sample_model() {
  OrderModel m;
  auto& e1 = m.enclaves[1];
  e1.has_init = true;
  e1.init_call_id = 0;
  e1.entries = {0, 1};
  e1.known = {0, 1, 2, 5};
  e1.edges = {{0, 1}, {1, 2}, {2, 5}};
  e1.reentrant_ok = {3};
  auto& e2 = m.enclaves[2];
  e2.entries = {0};
  e2.known = {0};
  e2.edges = {{0, 0}};
  return m;
}

// --- model plumbing ---------------------------------------------------------

TEST(OrderModelSpec, RendersAndParsesBack) {
  const OrderModel m = sample_model();
  expect_model_eq(m, perf::parse_model_spec(perf::render_model_spec(m)));
}

TEST(OrderModelSpec, ParsesDirectivesAndComments) {
  const OrderModel m = perf::parse_model_spec(
      "# full-line comment\n"
      "\n"
      "enclave 7\n"
      "init 0   # trailing comment\n"
      "entry 1\n"
      "ecall 9\n"
      "edge 1 2\n"
      "reentrant 4\n");
  ASSERT_EQ(m.enclaves.size(), 1u);
  const auto& em = m.enclaves.at(7);
  EXPECT_TRUE(em.has_init);
  EXPECT_EQ(em.init_call_id, 0u);
  EXPECT_EQ(em.entries, (std::set<tracedb::CallId>{1}));
  // init/entry/edge ids are implicitly known; reentrant ids are not.
  EXPECT_EQ(em.known, (std::set<tracedb::CallId>{0, 1, 2, 9}));
  EXPECT_EQ(em.reentrant_ok, (std::set<tracedb::CallId>{4}));
}

TEST(OrderModelSpec, RejectsMalformedInput) {
  EXPECT_THROW((void)perf::parse_model_spec("entry 0\n"), std::runtime_error)
      << "directive before any enclave line";
  EXPECT_THROW((void)perf::parse_model_spec("enclave 1\nfrobnicate 0\n"), std::runtime_error)
      << "unknown directive";
  EXPECT_THROW((void)perf::parse_model_spec("enclave 1\nedge 0\n"), std::runtime_error)
      << "edge needs two ids";
  EXPECT_THROW((void)perf::parse_model_spec("enclave 1\nentry 0 1\n"), std::runtime_error)
      << "trailing token";
  EXPECT_THROW((void)perf::parse_model_spec("enclave 1\nentry 4294967296\n"),
               std::runtime_error)
      << "id out of u32 range";
  EXPECT_THROW((void)perf::parse_model_spec("enclave\n"), std::runtime_error)
      << "enclave needs an id";
}

TEST(OrderModelRules, FlattenAndRebuild) {
  const OrderModel m = sample_model();
  const auto rules = perf::rules_from_model(m);
  // init(1) + entries(2) + known(4) + edges(3) + reentrant(1) for enclave 1,
  // entries(1) + known(1) + edges(1) for enclave 2.
  EXPECT_EQ(rules.size(), 14u);
  expect_model_eq(m, perf::model_from_rules(rules));
}

// --- learning ---------------------------------------------------------------

CallRecord make_call(CallType type, std::uint64_t enclave, std::uint32_t call_id,
                     std::uint64_t thread, std::uint64_t start_ns, std::uint64_t end_ns,
                     tracedb::CallIndex parent = tracedb::kNoParent) {
  CallRecord c;
  c.type = type;
  c.enclave_id = enclave;
  c.call_id = call_id;
  c.thread_id = thread;
  c.start_ns = start_ns;
  c.end_ns = end_ns;
  c.parent = parent;
  return c;
}

TEST(OrderLearn, CraftedBaselineYieldsExpectedModel) {
  TraceDatabase db;
  // Thread 1: init(0) alone, then 1 -> 2 -> 1; an ocall under the last ecall
  // hosts a nested ecall 4.  Thread 2 starts later with ecall 1.
  db.add_call(make_call(CallType::kEcall, 1, 0, 1, 0, 100));       // index 0: init
  db.add_call(make_call(CallType::kEcall, 1, 1, 1, 200, 300));     // index 1
  db.add_call(make_call(CallType::kEcall, 1, 2, 1, 400, 500));     // index 2
  db.add_call(make_call(CallType::kEcall, 1, 1, 1, 600, 900));     // index 3
  db.add_call(make_call(CallType::kOcall, 1, 7, 1, 650, 850, 3));  // index 4: under 3
  db.add_call(make_call(CallType::kEcall, 1, 4, 1, 700, 800, 4));  // index 5: nested
  db.add_call(make_call(CallType::kEcall, 1, 1, 2, 250, 350));     // index 6: thread 2

  const OrderModel m = perf::learn_model(db);
  ASSERT_EQ(m.enclaves.size(), 1u);
  const auto& em = m.enclaves.at(1);
  EXPECT_TRUE(em.has_init);
  EXPECT_EQ(em.init_call_id, 0u);
  EXPECT_EQ(em.entries, (std::set<tracedb::CallId>{0, 1}));
  EXPECT_EQ(em.known, (std::set<tracedb::CallId>{0, 1, 2}));
  EXPECT_EQ(em.edges, (std::set<std::pair<tracedb::CallId, tracedb::CallId>>{
                          {0, 1}, {1, 2}, {2, 1}}));
  EXPECT_EQ(em.reentrant_ok, (std::set<tracedb::CallId>{4}));

  // A model learned from a trace must validate that same trace cleanly.
  EXPECT_TRUE(perf::check_trace(db, m).empty());
}

TEST(OrderLearn, NoInitPhaseWhenFirstCallRepeats) {
  TraceDatabase db;
  // The demo shape: the first ecall is just the steady-state call.
  db.add_call(make_call(CallType::kEcall, 1, 0, 1, 0, 100));
  db.add_call(make_call(CallType::kEcall, 1, 0, 1, 200, 300));
  const OrderModel m = perf::learn_model(db);
  EXPECT_FALSE(m.enclaves.at(1).has_init);
  EXPECT_TRUE(perf::check_trace(db, m).empty());
}

TEST(OrderLearn, NoInitPhaseWhenOtherCallOverlapsInit) {
  TraceDatabase db;
  // Ecall 1 starts before ecall 0 (the would-be init) completes.
  db.add_call(make_call(CallType::kEcall, 1, 0, 1, 0, 100));
  db.add_call(make_call(CallType::kEcall, 1, 1, 2, 50, 150));
  const OrderModel m = perf::learn_model(db);
  EXPECT_FALSE(m.enclaves.at(1).has_init);
  EXPECT_TRUE(perf::check_trace(db, m).empty());
}

// --- checker semantics ------------------------------------------------------

struct CheckerFixture {
  std::vector<OrderViolation> violations;
  OrderChecker checker;

  explicit CheckerFixture(const OrderModel& model)
      : checker(model, [this](const OrderViolation& v) { violations.push_back(v); }) {}

  /// Shorthand: top-level ecall into enclave 1.
  void ecall(std::uint32_t id, std::uint64_t thread, std::uint64_t start, std::uint64_t end) {
    checker.on_call(CallType::kEcall, 1, id, thread, start, end, /*nested=*/false);
  }

  std::vector<AlertKind> kinds() const {
    std::vector<AlertKind> out;
    for (const auto& v : violations) out.push_back(v.kind);
    return out;
  }
};

/// Enclave 1 without an init phase: entries {0}, edges 0->1->2 and 1->1,
/// reentrant whitelist {3}.
OrderModel steady_model() {
  OrderModel m;
  auto& em = m.enclaves[1];
  em.entries = {0};
  em.known = {0, 1, 2};
  em.edges = {{0, 1}, {1, 2}, {1, 1}};
  em.reentrant_ok = {3};
  return m;
}

TEST(OrderChecker, LegalSequenceIsClean) {
  CheckerFixture f(steady_model());
  f.ecall(0, 1, 0, 100);
  f.ecall(1, 1, 200, 300);
  f.ecall(1, 1, 400, 500);
  f.ecall(2, 1, 600, 700);
  f.checker.finish();
  EXPECT_TRUE(f.violations.empty());
}

TEST(OrderChecker, FlagsBadEntryBadEdgeAndUnknownId) {
  CheckerFixture f(steady_model());
  f.ecall(2, 1, 0, 100);    // entry must be 0
  f.ecall(2, 1, 200, 300);  // no edge 2 -> 2
  f.ecall(9, 1, 400, 500);  // unknown id
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kOutOfOrderEcall,
                                               AlertKind::kOutOfOrderEcall,
                                               AlertKind::kOutOfOrderEcall}));
  EXPECT_EQ(f.violations[0].call_id, 2u);
  EXPECT_EQ(f.violations[0].thread_id, 1u);
  EXPECT_EQ(f.violations[0].at_ns, 100u);
}

TEST(OrderChecker, RecoveryEdgeFromObservedIdSuppressesCascade) {
  CheckerFixture f(steady_model());
  f.ecall(1, 1, 0, 100);    // bad entry: flagged
  f.ecall(2, 1, 200, 300);  // edge 1 -> 2 is legal from the *observed* state
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kOutOfOrderEcall}));
}

TEST(OrderChecker, PerThreadSequencesAreIndependent) {
  CheckerFixture f(steady_model());
  f.ecall(0, 1, 0, 100);
  f.ecall(0, 2, 50, 150);   // thread 2 gets its own entry
  f.ecall(1, 2, 200, 300);  // 0 -> 1 on thread 2
  f.ecall(1, 1, 250, 350);  // 0 -> 1 on thread 1
  f.checker.finish();
  EXPECT_TRUE(f.violations.empty());
}

TEST(OrderChecker, NestedEcallNeedsWhitelistAndDoesNotAdvanceSequence) {
  CheckerFixture f(steady_model());
  f.ecall(0, 1, 0, 100);
  f.checker.on_call(CallType::kEcall, 1, 3, 1, 150, 180, /*nested=*/true);  // whitelisted
  f.checker.on_call(CallType::kEcall, 1, 2, 1, 200, 250, /*nested=*/true);  // not whitelisted
  f.ecall(1, 1, 300, 400);  // still edge 0 -> 1: nested calls left state alone
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kReentrantEcall}));
  EXPECT_EQ(f.violations[0].call_id, 2u);
}

TEST(OrderChecker, FlagsUseAfterDestroy) {
  CheckerFixture f(steady_model());
  f.checker.on_enclave_created(1, 0);
  f.ecall(0, 1, 10, 100);
  f.checker.on_enclave_destroyed(1, 500);
  f.ecall(1, 1, 600, 700);  // started after destruction
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kUseAfterDestroy}));
  // A call that started *before* the destroy timestamp is not dead-enclave
  // use, whatever order the events arrived in.
  CheckerFixture g(steady_model());
  g.checker.on_enclave_destroyed(1, 500);
  g.ecall(0, 1, 10, 100);
  g.checker.finish();
  EXPECT_TRUE(g.violations.empty());
}

/// steady_model() plus a lifecycle: init 0, steady calls 1/2 reached from it.
OrderModel lifecycle_model() {
  OrderModel m = steady_model();
  auto& em = m.enclaves[1];
  em.has_init = true;
  em.init_call_id = 0;
  em.entries = {0, 1};
  em.edges.insert({2, 0});  // recovery edge so a second init isolates
                            // kPhaseViolation from kOutOfOrderEcall
  return m;
}

TEST(OrderChecker, BuffersStragglersAndFlagsUseBeforeInit) {
  CheckerFixture f(lifecycle_model());
  f.ecall(1, 2, 10, 50);    // completes before the init: buffered
  f.ecall(0, 1, 0, 100);    // init lands -> the straggler flushes
  f.ecall(1, 2, 90, 200);   // started before init end: immediate violation
  f.ecall(1, 2, 300, 400);  // started after: clean
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kUseBeforeInit,
                                               AlertKind::kUseBeforeInit}));
  EXPECT_EQ(f.violations[0].at_ns, 50u);   // the buffered straggler
  EXPECT_EQ(f.violations[1].at_ns, 200u);  // the immediate one
}

TEST(OrderChecker, FinishFlushesWhenInitNeverCompletes) {
  CheckerFixture f(lifecycle_model());
  f.ecall(1, 2, 10, 50);
  f.ecall(2, 2, 60, 90);
  EXPECT_TRUE(f.violations.empty());  // still buffered
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kUseBeforeInit,
                                               AlertKind::kUseBeforeInit}));
}

TEST(OrderChecker, SecondInitIsAPhaseViolation) {
  CheckerFixture f(lifecycle_model());
  f.ecall(0, 1, 0, 100);
  f.ecall(1, 1, 200, 300);
  f.ecall(2, 1, 400, 500);
  f.ecall(0, 1, 600, 700);  // edge 2 -> 0 is legal, so only the phase trips
  f.checker.finish();
  EXPECT_EQ(f.kinds(), (std::vector<AlertKind>{AlertKind::kPhaseViolation}));
}

TEST(OrderChecker, IgnoresOcallsAndUnmodelledEnclaves) {
  CheckerFixture f(steady_model());
  f.checker.on_call(CallType::kOcall, 1, 99, 1, 0, 100, false);   // ocall: free-form
  f.checker.on_call(CallType::kEcall, 2, 99, 1, 0, 100, false);   // enclave 2: unmodelled
  f.checker.on_call(CallType::kEcall, 2, 98, 1, 200, 300, true);  // even nested
  f.checker.finish();
  EXPECT_TRUE(f.violations.empty());
}

TEST(OrderFolder, FoldsPerSiteWithThreadAndCount) {
  perf::OrderAlertFolder folder;
  OrderViolation v;
  v.kind = AlertKind::kOutOfOrderEcall;
  v.enclave_id = 1;
  v.call_id = 4;
  v.thread_id = 6;
  v.at_ns = 1'000;
  bool created = false;
  folder.fold(v, &created);
  EXPECT_TRUE(created);
  v.thread_id = 9;  // later violation at the same site, different thread
  v.at_ns = 2'000;
  const AlertRecord& a = folder.fold(v, &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a.onset_ns, 1'000u);                 // onset pinned to the first
  EXPECT_EQ(a.detail >> 32, 6u);                 // first offending thread
  EXPECT_EQ(a.detail & 0xffffffffull, 2u);       // violation count
  EXPECT_EQ(a.resolved_ns, 0u);                  // never auto-resolves
  ASSERT_EQ(folder.sorted().size(), 1u);
}

// --- parity: stressors ------------------------------------------------------

/// (kind, enclave, call_id, onset, resolved, detail) — everything but
/// window_index, which only the online path assigns.
using AlertFacts =
    std::tuple<std::uint8_t, std::uint64_t, std::uint32_t, std::uint64_t, std::uint64_t,
               std::uint64_t>;

std::set<AlertFacts> order_alert_facts(const std::vector<AlertRecord>& alerts) {
  std::set<AlertFacts> out;
  for (const auto& a : alerts) {
    if (a.kind < AlertKind::kOutOfOrderEcall) continue;
    out.insert({static_cast<std::uint8_t>(a.kind), a.enclave_id, a.call_id, a.onset_ns,
                a.resolved_ns, a.detail});
  }
  return out;
}

struct SoakParity {
  std::set<AlertFacts> online;
  std::set<AlertFacts> batch;
};

SoakParity run_order_soak(const std::string& name) {
  auto stressor = stress::make_stressor(name);
  EXPECT_NE(stressor, nullptr) << name;
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched));
  TraceDatabase db;
  stress::SoakConfig config;
  config.stress.threads = 2;
  config.stress.duration_ns = 20'000'000;
  config.stress.seed = 7;
  config.stress.lockstep = true;
  const auto result = stress::run_soak(*stressor, urts, db, config);
  EXPECT_EQ(result.stream_dropped, 0u) << name;
  EXPECT_EQ(result.sealed_dropped, 0u) << name;

  // persist() embedded the model as v6 rules; the batch side replays the
  // merged trace against that embedded model — exactly what a later
  // `sgxperf order check <trace>` does.
  const OrderModel model = perf::model_from_rules(db.order_rules());
  EXPECT_FALSE(model.empty()) << name;
  SoakParity out;
  out.online = order_alert_facts(db.alerts());
  out.batch = order_alert_facts(perf::check_trace(db, model));
  return out;
}

TEST(OrderParity, ViolatingStressorMatchesBatchAndCoversEveryKind) {
  const auto parity = run_order_soak("order");
  EXPECT_EQ(parity.online, parity.batch);
  std::set<std::uint8_t> kinds;
  for (const auto& f : parity.batch) kinds.insert(std::get<0>(f));
  EXPECT_EQ(kinds, (std::set<std::uint8_t>{
                       static_cast<std::uint8_t>(AlertKind::kOutOfOrderEcall),
                       static_cast<std::uint8_t>(AlertKind::kReentrantEcall),
                       static_cast<std::uint8_t>(AlertKind::kUseBeforeInit),
                       static_cast<std::uint8_t>(AlertKind::kUseAfterDestroy),
                       static_cast<std::uint8_t>(AlertKind::kPhaseViolation)}));
}

TEST(OrderParity, CleanStressorIsViolationFreeOnBothPaths) {
  const auto parity = run_order_soak("order-clean");
  EXPECT_TRUE(parity.online.empty());
  EXPECT_TRUE(parity.batch.empty());
}

// --- parity: organic workloads ----------------------------------------------

/// Records `workload` with a live subscription open, learns a model from the
/// merged trace, and validates that same run against it on both paths: the
/// batch replay and an online analyser fed the captured stream.  A learned
/// model never flags its own baseline.
template <typename Workload>
void expect_self_model_clean(Workload&& workload) {
  sgxsim::Urts urts;
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  auto sub = logger.subscribe("orderliness", 1 << 18);
  workload(urts);
  logger.detach();
  ASSERT_NE(sub, nullptr);

  const OrderModel learned = perf::learn_model(db);
  ASSERT_FALSE(learned.empty());
  EXPECT_TRUE(perf::check_trace(db, learned).empty());

  perf::OnlineConfig config;
  config.order = learned;
  perf::OnlineAnalyzer online(config);
  std::vector<perf::StreamEvent> batch;
  std::uint64_t end_ns = 0;
  while (sub->poll(batch, 4096) > 0) {
    for (const auto& ev : batch) end_ns = std::max(end_ns, ev.end_ns);
    online.feed(batch);
    batch.clear();
  }
  sub->close();
  online.finish(end_ns);
  EXPECT_EQ(sub->dropped(), 0u);
  EXPECT_TRUE(order_alert_facts(online.active_alerts()).empty());
}

constexpr char kDemoEdl[] = R"(
enclave {
  trusted {
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

sgxsim::SgxStatus demo_ocall(void*) { return sgxsim::SgxStatus::kSuccess; }

TEST(OrderParity, DemoSelfModelIsClean) {
  expect_self_model_clean([](sgxsim::Urts& urts) {
    using namespace sgxsim;
    EnclaveConfig config;
    config.name = "demo";
    config.tcs_count = 2;
    const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kDemoEdl));
    urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
      ctx.work(500);
      return ctx.ocall(0, nullptr);
    });
    OcallTable table = make_ocall_table({&demo_ocall});
    for (int i = 0; i < 120; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  });
}

TEST(OrderParity, MiniKvSelfModelIsClean) {
  expect_self_model_clean([](sgxsim::Urts& urts) {
    minikv::Store store(urts.clock());
    minikv::KvProxy proxy(urts, store);
    minikv::DriverConfig config;
    config.clients = 2;
    config.ops_per_client = 300;
    minikv::run_workload(proxy, config);
  });
}

TEST(OrderParity, MiniDbSelfModelIsClean) {
  expect_self_model_clean([](sgxsim::Urts& urts) {
    minidb::HostVfs vfs(urts.clock());
    minidb::DbEnclave dbe(urts, vfs, minidb::WriteMode::kSeekThenWrite);
    dbe.open("/orderliness.db");
    minidb::CommitGenerator gen;
    for (std::uint64_t i = 0; i < 40; ++i) {
      dbe.begin();
      for (const auto& [k, v] : gen.make(i).to_records()) dbe.put_in_txn(k, v);
      dbe.commit();
    }
    dbe.close_db();
  });
}

}  // namespace
