// minidb tests: VFS semantics, pager transactions + crash recovery, B-tree
// correctness (including a parameterized volume sweep), database API, the
// git-commit workload and the enclavised build's ocall patterns.
#include <gtest/gtest.h>

#include <map>

#include "minidb/db.hpp"
#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "perf/logger.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"
#include <cstring>

namespace {

using namespace minidb;

// --- HostVfs -----------------------------------------------------------------

class VfsTest : public testing::Test {
 protected:
  support::VirtualClock clock_;
  HostVfs vfs_{clock_};
};

TEST_F(VfsTest, WriteThenReadBack) {
  const Fd fd = vfs_.open("/db");
  EXPECT_EQ(vfs_.write(fd, "hello", 5), 5);
  vfs_.lseek(fd, 0);
  char buf[5];
  EXPECT_EQ(vfs_.read(fd, buf, 5), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_EQ(vfs_.file_size(fd), 5u);
  vfs_.close(fd);
}

TEST_F(VfsTest, SeekWriteExtends) {
  const Fd fd = vfs_.open("/db");
  vfs_.lseek(fd, 100);
  vfs_.write(fd, "x", 1);
  EXPECT_EQ(vfs_.file_size(fd), 101u);
  vfs_.close(fd);
}

TEST_F(VfsTest, PwriteDoesNotNeedSeek) {
  const Fd fd = vfs_.open("/db");
  vfs_.pwrite(fd, "abc", 3, 10);
  vfs_.lseek(fd, 10);
  char buf[3];
  vfs_.read(fd, buf, 3);
  EXPECT_EQ(std::string(buf, 3), "abc");
  EXPECT_EQ(vfs_.counters().pwrites, 1u);
  EXPECT_EQ(vfs_.counters().lseeks, 1u);
}

TEST_F(VfsTest, ReadPastEofReturnsZero) {
  const Fd fd = vfs_.open("/db");
  char buf[4];
  EXPECT_EQ(vfs_.read(fd, buf, 4), 0);
}

TEST_F(VfsTest, BadFdReturnsMinusOne) {
  char buf[1];
  EXPECT_EQ(vfs_.read(999, buf, 1), -1);
  EXPECT_EQ(vfs_.write(999, buf, 1), -1);
  EXPECT_EQ(vfs_.lseek(999, 0), -1);
}

TEST_F(VfsTest, UnlinkAndExists) {
  const Fd fd = vfs_.open("/db");
  vfs_.write(fd, "x", 1);
  vfs_.close(fd);
  EXPECT_TRUE(vfs_.exists("/db"));
  vfs_.unlink("/db");
  EXPECT_FALSE(vfs_.exists("/db"));
}

TEST_F(VfsTest, SyscallsAdvanceVirtualTime) {
  const auto t0 = clock_.now();
  const Fd fd = vfs_.open("/db");
  vfs_.lseek(fd, 0);
  vfs_.write(fd, "x", 1);
  vfs_.fsync(fd);
  const VfsCosts costs;
  EXPECT_EQ(clock_.now() - t0,
            costs.open_ns + costs.lseek_ns + costs.write_ns + costs.fsync_ns);
}

// --- Pager ------------------------------------------------------------------------

class PagerTest : public testing::Test {
 protected:
  support::VirtualClock clock_;
  HostVfs vfs_{clock_};
};

TEST_F(PagerTest, CommitPersistsPages) {
  {
    Pager pager(vfs_, "/db");
    pager.begin();
    const PageNo p = pager.allocate_page();
    std::vector<std::uint8_t> content(kDbPageSize, 0xAB);
    pager.write_page(p, content);
    pager.commit();
  }
  Pager reopened(vfs_, "/db");
  EXPECT_EQ(reopened.page_count(), 1u);
  EXPECT_EQ(reopened.read_page(1)[0], 0xAB);
}

TEST_F(PagerTest, RollbackDiscardsChanges) {
  Pager pager(vfs_, "/db");
  pager.begin();
  const PageNo p = pager.allocate_page();
  pager.write_page(p, std::vector<std::uint8_t>(kDbPageSize, 1));
  pager.commit();

  pager.begin();
  pager.write_page(p, std::vector<std::uint8_t>(kDbPageSize, 2));
  EXPECT_EQ(pager.read_page(p)[0], 2);
  pager.rollback();
  EXPECT_EQ(pager.read_page(p)[0], 1);
}

TEST_F(PagerTest, JournalDeletedAfterCommit) {
  Pager pager(vfs_, "/db");
  pager.begin();
  pager.write_page(pager.allocate_page(), std::vector<std::uint8_t>(kDbPageSize, 7));
  EXPECT_TRUE(vfs_.exists("/db-journal"));
  pager.commit();
  EXPECT_FALSE(vfs_.exists("/db-journal"));
}

TEST_F(PagerTest, HotJournalRecovery) {
  // Simulate a crash mid-commit: the journal holds page 1's pre-image, the
  // database file already contains the new (uncommitted) content.
  {
    Pager pager(vfs_, "/db");
    pager.begin();
    pager.write_page(pager.allocate_page(), std::vector<std::uint8_t>(kDbPageSize, 1));
    pager.commit();
  }
  {
    // Hand-craft a hot journal reverting page 1 to 0x01 and corrupt the db.
    const Fd jfd = vfs_.open("/db-journal");
    std::vector<std::uint8_t> record(4 + kDbPageSize, 1);
    const PageNo pgno = 1;
    std::memcpy(record.data(), &pgno, 4);
    vfs_.lseek(jfd, 0);
    vfs_.write(jfd, record.data(), record.size());
    vfs_.close(jfd);
    const Fd dbfd = vfs_.open("/db");
    std::vector<std::uint8_t> garbage(kDbPageSize, 0xFF);
    vfs_.lseek(dbfd, 0);
    vfs_.write(dbfd, garbage.data(), garbage.size());
    vfs_.close(dbfd);
  }
  Pager pager(vfs_, "/db");  // recovery runs here
  EXPECT_FALSE(vfs_.exists("/db-journal"));
  EXPECT_EQ(pager.read_page(1)[100], 1);
}

TEST_F(PagerTest, NestedTransactionThrows) {
  Pager pager(vfs_, "/db");
  pager.begin();
  EXPECT_THROW(pager.begin(), std::logic_error);
  pager.rollback();
}

TEST_F(PagerTest, WriteOutsideTransactionThrows) {
  Pager pager(vfs_, "/db");
  EXPECT_THROW(pager.write_page(1, {}), std::logic_error);
  EXPECT_THROW(pager.allocate_page(), std::logic_error);
  EXPECT_THROW(pager.commit(), std::logic_error);
}

TEST_F(PagerTest, SeekThenWriteVsMergedPwrite) {
  {
    Pager pager(vfs_, "/a", WriteMode::kSeekThenWrite);
    pager.begin();
    pager.write_page(pager.allocate_page(), std::vector<std::uint8_t>(kDbPageSize, 1));
    pager.commit();
  }
  const auto seeks_naive = vfs_.counters().lseeks;
  const auto pwrites_naive = vfs_.counters().pwrites;
  EXPECT_GT(seeks_naive, 0u);
  EXPECT_EQ(pwrites_naive, 0u);

  vfs_.reset_counters();
  {
    Pager pager(vfs_, "/b", WriteMode::kMergedPwrite);
    pager.begin();
    pager.write_page(pager.allocate_page(), std::vector<std::uint8_t>(kDbPageSize, 1));
    pager.commit();
  }
  EXPECT_EQ(vfs_.counters().lseeks, 0u);
  EXPECT_GT(vfs_.counters().pwrites, 0u);
}

// --- BTree ------------------------------------------------------------------------

class BTreeTest : public testing::Test {
 protected:
  BTreeTest() : vfs_(clock_), pager_(vfs_, "/db") {
    pager_.begin();
    tree_ = std::make_unique<BTree>(pager_, 0);
  }

  support::VirtualClock clock_;
  HostVfs vfs_;
  Pager pager_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, PutGet) {
  tree_->put("alpha", "1");
  tree_->put("beta", "2");
  EXPECT_EQ(tree_->get("alpha"), "1");
  EXPECT_EQ(tree_->get("beta"), "2");
  EXPECT_FALSE(tree_->get("gamma").has_value());
}

TEST_F(BTreeTest, Replace) {
  tree_->put("k", "old");
  tree_->put("k", "new");
  EXPECT_EQ(tree_->get("k"), "new");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, Erase) {
  tree_->put("k", "v");
  EXPECT_TRUE(tree_->erase("k"));
  EXPECT_FALSE(tree_->erase("k"));
  EXPECT_FALSE(tree_->get("k").has_value());
}

TEST_F(BTreeTest, RejectsOversized) {
  EXPECT_THROW(tree_->put("", "v"), std::invalid_argument);
  EXPECT_THROW(tree_->put(std::string(kMaxKeySize + 1, 'k'), "v"), std::invalid_argument);
  EXPECT_THROW(tree_->put("k", std::string(kMaxValueSize + 1, 'v')), std::invalid_argument);
}

TEST_F(BTreeTest, ScanIsSorted) {
  tree_->put("c", "3");
  tree_->put("a", "1");
  tree_->put("b", "2");
  std::vector<std::string> keys;
  tree_->scan([&](const std::string& k, const std::string&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(BTreeTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) tree_->put(std::string(1, static_cast<char>('a' + i)), "v");
  int seen = 0;
  tree_->scan([&](const std::string&, const std::string&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  // Values near the max cell size force splits quickly.
  for (int i = 0; i < 64; ++i) {
    tree_->put(support::format("key-%04d", i), std::string(1200, 'x'));
  }
  EXPECT_GT(tree_->height(), 1u);
  EXPECT_EQ(tree_->size(), 64u);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree_->get(support::format("key-%04d", i)).has_value()) << i;
  }
}

class BTreeVolume : public testing::TestWithParam<int> {};

TEST_P(BTreeVolume, MatchesStdMap) {
  support::VirtualClock clock;
  HostVfs vfs(clock);
  Pager pager(vfs, "/db");
  pager.begin();
  BTree tree(pager, 0);

  const int n = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(n));
  std::map<std::string, std::string> model;
  for (int i = 0; i < n; ++i) {
    const std::string key = rng.next_string(rng.next_in(4, 32));
    const std::string value = rng.next_string(rng.next_in(1, 200));
    tree.put(key, value);
    model[key] = value;
  }
  EXPECT_EQ(tree.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(tree.get(k), v) << k;
  }
  // Scan order matches the model's sorted order.
  auto it = model.begin();
  bool ok = true;
  tree.scan([&](const std::string& k, const std::string& v) {
    ok = ok && it != model.end() && it->first == k && it->second == v;
    ++it;
    return true;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(it, model.end());
  pager.commit();
}

INSTANTIATE_TEST_SUITE_P(Volumes, BTreeVolume, testing::Values(10, 100, 1000, 5000));

// --- Database ---------------------------------------------------------------------

TEST(Database, PersistsAcrossReopen) {
  support::VirtualClock clock;
  HostVfs vfs(clock);
  {
    Database db(vfs, "/data.db");
    db.put("k1", "v1");
    db.put("k2", "v2");
  }
  Database db(vfs, "/data.db");
  EXPECT_EQ(db.get("k1"), "v1");
  EXPECT_EQ(db.get("k2"), "v2");
  EXPECT_EQ(db.size(), 2u);
}

TEST(Database, TransactionRollback) {
  support::VirtualClock clock;
  HostVfs vfs(clock);
  Database db(vfs, "/data.db");
  db.put("keep", "1");
  db.begin();
  db.put_in_txn("drop", "2");
  db.rollback();
  EXPECT_FALSE(db.get("drop").has_value());
  EXPECT_EQ(db.get("keep"), "1");
}

TEST(Database, RejectsForeignFile) {
  support::VirtualClock clock;
  HostVfs vfs(clock);
  const Fd fd = vfs.open("/junk");
  std::vector<std::uint8_t> garbage(kDbPageSize, 0x5A);
  vfs.write(fd, garbage.data(), garbage.size());
  vfs.close(fd);
  EXPECT_THROW(Database(vfs, "/junk"), std::runtime_error);
}

// --- workload ----------------------------------------------------------------------

TEST(Workload, CommitsAreDeterministic) {
  CommitGenerator gen(42);
  const Commit a = gen.make(7);
  const Commit b = gen.make(7);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.message, b.message);
  EXPECT_EQ(a.files.size(), b.files.size());
  EXPECT_NE(gen.make(8).hash, a.hash);
  EXPECT_EQ(a.hash.size(), 40u);
}

TEST(Workload, ReplayInsertsAllRecords) {
  support::VirtualClock clock;
  HostVfs vfs(clock);
  Database db(vfs, "/repo.db");
  CommitGenerator gen;
  std::size_t total = 0;
  for (std::uint64_t i = 0; i < 20; ++i) total += replay_commit(db, gen.make(i));
  EXPECT_EQ(db.size(), total);
  const Commit c = gen.make(3);
  EXPECT_TRUE(db.get("commit/" + c.hash).has_value());
}

// --- enclavised database ---------------------------------------------------------------

class EnclaveDbTest : public testing::Test {
 protected:
  EnclaveDbTest() : vfs_(urts_.clock()) {}

  sgxsim::Urts urts_;
  HostVfs vfs_;
};

TEST_F(EnclaveDbTest, PutGetThroughEcalls) {
  DbEnclave db(urts_, vfs_);
  ASSERT_EQ(db.open("/enc.db"), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.put("key", "value"), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.get("key"), "value");
  EXPECT_FALSE(db.get("missing").has_value());
  EXPECT_EQ(db.close_db(), sgxsim::SgxStatus::kSuccess);
}

TEST_F(EnclaveDbTest, TransactionsThroughEcalls) {
  DbEnclave db(urts_, vfs_);
  ASSERT_EQ(db.open("/enc.db"), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.begin(), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.put_in_txn("a", "1"), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.put_in_txn("b", "2"), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.commit(), sgxsim::SgxStatus::kSuccess);
  EXPECT_EQ(db.get("a"), "1");
}

TEST_F(EnclaveDbTest, NaiveModeIssuesLseekAndWriteOcalls) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  {
    DbEnclave db(urts_, vfs_, WriteMode::kSeekThenWrite);
    ASSERT_EQ(db.open("/enc.db"), sgxsim::SgxStatus::kSuccess);
    for (int i = 0; i < 5; ++i) {
      db.put(support::format("key-%d", i), "value");
    }
    db.close_db();
  }
  logger.detach();

  std::size_t lseeks = 0;
  std::size_t writes = 0;
  std::size_t pwrites = 0;
  for (const auto& c : trace.calls()) {
    if (c.type != tracedb::CallType::kOcall) continue;
    const auto name = trace.name_of(c.enclave_id, c.type, c.call_id);
    if (name == "ocall_vfs_lseek") ++lseeks;
    if (name == "ocall_vfs_write") ++writes;
    if (name == "ocall_vfs_pwrite") ++pwrites;
  }
  EXPECT_GT(lseeks, 0u);
  EXPECT_GT(writes, 0u);
  EXPECT_EQ(pwrites, 0u);
}

TEST_F(EnclaveDbTest, MergedModeUsesPwriteOcalls) {
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts_);
  {
    DbEnclave db(urts_, vfs_, WriteMode::kMergedPwrite);
    ASSERT_EQ(db.open("/enc.db"), sgxsim::SgxStatus::kSuccess);
    for (int i = 0; i < 5; ++i) db.put(support::format("key-%d", i), "value");
    db.close_db();
  }
  logger.detach();

  std::size_t lseek_write = 0;
  std::size_t pwrites = 0;
  for (const auto& c : trace.calls()) {
    if (c.type != tracedb::CallType::kOcall) continue;
    const auto name = trace.name_of(c.enclave_id, c.type, c.call_id);
    if (name == "ocall_vfs_lseek" || name == "ocall_vfs_write") ++lseek_write;
    if (name == "ocall_vfs_pwrite") ++pwrites;
  }
  EXPECT_EQ(lseek_write, 0u);
  EXPECT_GT(pwrites, 0u);
}

TEST_F(EnclaveDbTest, MergedModeIsFasterInVirtualTime) {
  CommitGenerator gen;
  const auto run = [&](WriteMode mode) {
    HostVfs vfs(urts_.clock());
    DbEnclave db(urts_, vfs, mode);
    db.open("/enc.db");
    const auto t0 = urts_.clock().now();
    for (std::uint64_t i = 0; i < 20; ++i) {
      db.begin();
      for (const auto& [k, v] : gen.make(i).to_records()) db.put_in_txn(k, v);
      db.commit();
    }
    const auto elapsed = urts_.clock().now() - t0;
    db.close_db();
    return elapsed;
  };
  const auto naive = run(WriteMode::kSeekThenWrite);
  const auto merged = run(WriteMode::kMergedPwrite);
  EXPECT_LT(merged, naive);
}

TEST_F(EnclaveDbTest, NativeIsFasterThanEnclavised) {
  CommitGenerator gen;
  // Native run.
  const auto t0 = urts_.clock().now();
  {
    Database db(vfs_, "/native.db");
    for (std::uint64_t i = 0; i < 20; ++i) replay_commit(db, gen.make(i));
  }
  const auto native = urts_.clock().now() - t0;
  // Enclavised run.
  const auto t1 = urts_.clock().now();
  {
    DbEnclave db(urts_, vfs_);
    db.open("/enc.db");
    for (std::uint64_t i = 0; i < 20; ++i) {
      db.begin();
      for (const auto& [k, v] : gen.make(i).to_records()) db.put_in_txn(k, v);
      db.commit();
    }
    db.close_db();
  }
  const auto enclavised = urts_.clock().now() - t1;
  EXPECT_LT(native, enclavised);
}

}  // namespace
