// Bounded soak: the mixed and ocall-storm stressors pushed through the full
// live-observability stack (Logger::subscribe stream -> OnlineAnalyzer on a
// consumer thread) in free-running mode — real thread concurrency on the
// recording hot paths, at an order of magnitude more events than the other
// online tests.  Run under TSan/ASan/UBSan by tools/ci.sh.
//
// Free-running workers share the virtual clock, so individual durations are
// interleaving-dependent and labels are NOT asserted here (that is the
// lockstep accuracy test's job).  What must hold regardless of scheduling:
//  * zero sealed-shard drops — no event is ever lost to the merge;
//  * zero stream drops at a ring capacity sized above the event count;
//  * no pending-parent evictions in the online analyser;
//  * the run actually reaches soak scale (events, windows).
#include <gtest/gtest.h>

#include <cstdio>

#include "sgxsim/runtime.hpp"
#include "stress/harness.hpp"
#include "tracedb/database.hpp"

namespace {

stress::SoakResult soak(const std::string& name, support::Nanoseconds duration_ns,
                        std::size_t epc_pages) {
  const auto stressor = stress::make_stressor(name);
  EXPECT_NE(stressor, nullptr) << name;
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched), epc_pages);
  tracedb::TraceDatabase db;
  stress::SoakConfig config;
  config.stress.threads = 4;
  config.stress.duration_ns = duration_ns;
  config.stress.lockstep = false;  // free-running: true concurrency
  config.subscription_capacity = 1 << 18;
  const auto result = stress::run_soak(*stressor, urts, db, config);

  EXPECT_EQ(result.sealed_dropped, 0u) << name;
  EXPECT_EQ(result.stream_dropped, 0u) << name;
  EXPECT_EQ(result.pending_evicted, 0u) << name;
  EXPECT_GT(result.windows, 0u) << name;
  EXPECT_GT(result.stress.bogo_ops, 0u) << name;
  // Post-mortem side of the same run: the merged trace saw every call the
  // stream did (calls produce 1 stream event each; AEX/paging add more).
  EXPECT_GE(result.events, db.calls().size()) << name;
  std::printf("soak %-12s %llu events, %llu windows, %llu bogo-ops, %llu alerts raised\n",
              name.c_str(), static_cast<unsigned long long>(result.events),
              static_cast<unsigned long long>(result.windows),
              static_cast<unsigned long long>(result.stress.bogo_ops),
              static_cast<unsigned long long>(result.alerts_raised));
  return result;
}

TEST(StressSoak, MixedFreeRunIsLossless) {
  const auto result = soak("mixed", 80'000'000, 1024);
  // ~10k events — two orders of magnitude above the parity tests' demo runs.
  EXPECT_GE(result.events, 5'000u);
}

TEST(StressSoak, OcallStormFreeRunIsLossless) {
  const auto result = soak("ocall-storm", 100'000'000, sgxsim::Driver::kDefaultEpcPages);
  EXPECT_GE(result.events, 5'000u);
}

}  // namespace
