#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

namespace {

using namespace tracedb;

CallRecord make_call(CallType type, ThreadId tid, EnclaveId eid, CallId id, Nanoseconds start,
                     Nanoseconds end, CallIndex parent = kNoParent) {
  CallRecord c;
  c.type = type;
  c.thread_id = tid;
  c.enclave_id = eid;
  c.call_id = id;
  c.start_ns = start;
  c.end_ns = end;
  c.parent = parent;
  return c;
}

TEST(TraceDatabase, AddAndFinishCall) {
  TraceDatabase db;
  auto rec = make_call(CallType::kEcall, 1, 1, 0, 100, 0);
  const CallIndex idx = db.add_call(rec);
  EXPECT_EQ(idx, 0);
  db.finish_call(idx, 500, 3);
  EXPECT_EQ(db.calls()[0].end_ns, 500u);
  EXPECT_EQ(db.calls()[0].aex_count, 3u);
  EXPECT_EQ(db.calls()[0].duration(), 400u);
}

TEST(TraceDatabase, SetCallKind) {
  TraceDatabase db;
  const CallIndex idx = db.add_call(make_call(CallType::kOcall, 1, 1, 5, 0, 1));
  db.set_call_kind(idx, OcallKind::kSleep);
  EXPECT_EQ(db.calls()[0].kind, OcallKind::kSleep);
}

TEST(TraceDatabase, CallNamesAreIdempotent) {
  TraceDatabase db;
  db.add_call_name({1, CallType::kEcall, 0, "ecall_foo"});
  db.add_call_name({1, CallType::kEcall, 0, "ecall_other"});  // ignored
  EXPECT_EQ(db.call_names().size(), 1u);
  EXPECT_EQ(db.name_of(1, CallType::kEcall, 0), "ecall_foo");
}

TEST(TraceDatabase, NameOfFallsBack) {
  TraceDatabase db;
  EXPECT_EQ(db.name_of(1, CallType::kEcall, 7), "ecall_7");
  EXPECT_EQ(db.name_of(1, CallType::kOcall, 3), "ocall_3");
}

TEST(TraceDatabase, EnclaveLifecycle) {
  TraceDatabase db;
  EnclaveRecord e;
  e.enclave_id = 42;
  e.name = "test";
  e.created_ns = 10;
  db.add_enclave(e);
  db.set_enclave_destroyed(42, 99);
  EXPECT_EQ(db.enclaves()[0].destroyed_ns, 99u);
  db.set_enclave_destroyed(7, 1);  // unknown id: no-op
}

TEST(TraceDatabase, ClearDropsEverything) {
  TraceDatabase db;
  db.add_call(make_call(CallType::kEcall, 1, 1, 0, 0, 1));
  db.add_aex({1, 1, 5, kNoParent});
  db.add_paging({1, 3, PageDirection::kPageOut, 7});
  db.add_sync({SyncKind::kSleep, 1, 0, 1, 9});
  db.clear();
  EXPECT_TRUE(db.calls().empty());
  EXPECT_TRUE(db.aexs().empty());
  EXPECT_TRUE(db.paging().empty());
  EXPECT_TRUE(db.syncs().empty());
}

TEST(TraceDatabase, SaveLoadRoundTrip) {
  TraceDatabase db;
  db.add_call(make_call(CallType::kEcall, 1, 9, 4, 100, 200));
  const CallIndex o = db.add_call(make_call(CallType::kOcall, 1, 9, 2, 120, 150, 0));
  db.set_call_kind(o, OcallKind::kWakeOne);
  db.add_aex({1, 9, 130, 0});
  db.add_paging({9, 77, PageDirection::kPageIn, 140});
  db.add_sync({SyncKind::kWakeup, 1, 2, 9, 135});
  EnclaveRecord e;
  e.enclave_id = 9;
  e.name = "roundtrip";
  e.tcs_count = 4;
  e.size_bytes = 4096 * 100;
  db.add_enclave(e);
  db.add_call_name({9, CallType::kEcall, 4, "ecall_test"});

  const std::string path = testing::TempDir() + "/trace_roundtrip.bin";
  db.save(path);
  const TraceDatabase loaded = TraceDatabase::load(path);

  ASSERT_EQ(loaded.calls().size(), 2u);
  EXPECT_EQ(loaded.calls()[0].call_id, 4u);
  EXPECT_EQ(loaded.calls()[1].kind, OcallKind::kWakeOne);
  EXPECT_EQ(loaded.calls()[1].parent, 0);
  ASSERT_EQ(loaded.aexs().size(), 1u);
  EXPECT_EQ(loaded.aexs()[0].timestamp_ns, 130u);
  ASSERT_EQ(loaded.paging().size(), 1u);
  EXPECT_EQ(loaded.paging()[0].page_number, 77u);
  ASSERT_EQ(loaded.syncs().size(), 1u);
  EXPECT_EQ(loaded.syncs()[0].target_thread_id, 2u);
  ASSERT_EQ(loaded.enclaves().size(), 1u);
  EXPECT_EQ(loaded.enclaves()[0].name, "roundtrip");
  EXPECT_EQ(loaded.name_of(9, CallType::kEcall, 4), "ecall_test");
  std::remove(path.c_str());
}

TEST(TraceDatabase, LoadRejectsBadMagic) {
  const std::string path = testing::TempDir() + "/bad_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE___";
  }
  EXPECT_THROW(TraceDatabase::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceDatabase, LoadRejectsMissingFile) {
  EXPECT_THROW(TraceDatabase::load("/nonexistent/path/zzz.bin"), std::runtime_error);
}

TEST(TraceDatabase, CsvExportWritesAllTables) {
  TraceDatabase db;
  db.add_call(make_call(CallType::kEcall, 1, 1, 0, 0, 10));
  const std::string dir = testing::TempDir() + "/csv_export";
  db.export_csv(dir);
  for (const char* name : {"calls.csv", "aexs.csv", "paging.csv", "syncs.csv", "enclaves.csv",
                           "call_names.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  std::filesystem::remove_all(dir);
}

// --- query helpers --------------------------------------------------------------

class QueryTest : public testing::Test {
 protected:
  void SetUp() override {
    // Two ecalls (id 0) and one ocall (id 1) on enclave 1; one ecall on
    // enclave 2.
    db_.add_call(make_call(CallType::kEcall, 1, 1, 0, 0, 1'000));
    db_.add_call(make_call(CallType::kEcall, 1, 1, 0, 2'000, 20'000));
    db_.add_call(make_call(CallType::kOcall, 1, 1, 1, 2'500, 3'000, 1));
    db_.add_call(make_call(CallType::kEcall, 2, 2, 0, 5'000, 6'000));
    db_.add_paging({1, 10, PageDirection::kPageOut, 50});
    db_.add_paging({1, 10, PageDirection::kPageIn, 60});
    db_.add_paging({1, 11, PageDirection::kPageIn, 70});
  }

  TraceDatabase db_;
};

TEST_F(QueryTest, GroupCalls) {
  const auto groups = group_calls(db_);
  EXPECT_EQ(groups.size(), 3u);
  const CallKey key{1, CallType::kEcall, 0};
  ASSERT_TRUE(groups.contains(key));
  EXPECT_EQ(groups.at(key).size(), 2u);
}

TEST_F(QueryTest, DurationsOf) {
  const auto d = durations_of(db_, CallKey{1, CallType::kEcall, 0});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 1'000u);
  EXPECT_EQ(d[1], 18'000u);
}

TEST_F(QueryTest, ScatterOf) {
  const auto pts = scatter_of(db_, CallKey{1, CallType::kEcall, 0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].first, 2'000u);
  EXPECT_EQ(pts[1].second, 18'000u);
}

TEST_F(QueryTest, CallsInRange) {
  const auto in_range = calls_in_range(db_, CallType::kEcall, 0, 3'000);
  EXPECT_EQ(in_range.size(), 2u);
}

TEST_F(QueryTest, DistinctAndTotal) {
  EXPECT_EQ(distinct_calls(db_, 1, CallType::kEcall), 1u);
  EXPECT_EQ(distinct_calls(db_, 1, CallType::kOcall), 1u);
  EXPECT_EQ(total_calls(db_, 1, CallType::kEcall), 2u);
  EXPECT_EQ(total_calls(db_, 2, CallType::kEcall), 1u);
}

TEST_F(QueryTest, FractionShorterThan) {
  // Durations 1,000 and 18,000: one of two below 10us.
  EXPECT_DOUBLE_EQ(fraction_shorter_than(db_, 1, CallType::kEcall, 10'000), 0.5);
  // Subtracting 9us of transition drops both below 10us.
  EXPECT_DOUBLE_EQ(fraction_shorter_than(db_, 1, CallType::kEcall, 10'000, 9'000), 1.0);
  // No calls at all -> 0.
  EXPECT_DOUBLE_EQ(fraction_shorter_than(db_, 99, CallType::kEcall, 10'000), 0.0);
}

TEST_F(QueryTest, PagingCounts) {
  const auto [ins, outs] = paging_counts(db_, 1);
  EXPECT_EQ(ins, 2u);
  EXPECT_EQ(outs, 1u);
  const auto [i2, o2] = paging_counts(db_, 2);
  EXPECT_EQ(i2 + o2, 0u);
}

}  // namespace
