// What-if replay engine: identity-replay validation on recorded workloads
// (demo, minikv, minidb), scenario passes (switchless, eliminate, merge,
// cost-profile swap, EPC resize), byte-identical results at any replay
// parallelism, analyser-attached speedup predictions, and a golden-file
// check of the `whatif --json` document.
//
// Compile with -DREPLAY_GOLDEN_GEN to get a standalone generator that prints
// the golden JSON to stdout (same handcrafted database, same scenarios).
#ifndef REPLAY_GOLDEN_GEN
#include <gtest/gtest.h>
#endif

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "replay/engine.hpp"
#include "replay/render.hpp"
#include "sgxsim/runtime.hpp"
#include "tracedb/database.hpp"
#include "tracedb/query.hpp"

#ifndef REPLAY_GOLDEN_GEN
#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "minikv/driver.hpp"
#include "perf/analyzer.hpp"
#include "perf/compare.hpp"
#include "perf/logger.hpp"
#include "tests/sim_helpers.hpp"
#endif

namespace {

using replay::ReplayConfig;
using replay::ReplayEngine;
using replay::Scenario;
using sgxsim::CostModel;
using sgxsim::PatchLevel;
using tracedb::CallKey;
using tracedb::CallType;
using tracedb::TraceDatabase;

/// Handcrafted deterministic trace for the golden-file check: two threads,
/// three ecall instances, one nested ocall.  All durations sit above the
/// unpatched transition floor so validation is silent.
TraceDatabase golden_db() {
  TraceDatabase db;
  db.add_enclave({/*enclave_id=*/1, "worker", /*created_ns=*/0, /*destroyed_ns=*/60'000,
                  /*tcs_count=*/2, /*size_bytes=*/1 << 20});
  db.add_call_name({1, CallType::kEcall, 0, "ecall_process"});
  db.add_call_name({1, CallType::kOcall, 0, "ocall_log"});

  tracedb::CallRecord e1;
  e1.type = CallType::kEcall;
  e1.thread_id = 11;
  e1.enclave_id = 1;
  e1.call_id = 0;
  e1.start_ns = 0;
  e1.end_ns = 10'000;
  db.add_call(e1);

  tracedb::CallRecord e2 = e1;
  e2.start_ns = 12'000;
  e2.end_ns = 24'000;
  const auto parent = db.add_call(e2);

  tracedb::CallRecord o1;
  o1.type = CallType::kOcall;
  o1.thread_id = 11;
  o1.enclave_id = 1;
  o1.call_id = 0;
  o1.parent = parent;
  o1.start_ns = 15'000;
  o1.end_ns = 18'000;
  db.add_call(o1);

  tracedb::CallRecord e3 = e1;
  e3.thread_id = 22;
  e3.start_ns = 5'000;
  e3.end_ns = 16'000;
  db.add_call(e3);
  return db;
}

std::vector<Scenario> golden_scenarios() {
  const CallKey ecall{1, CallType::kEcall, 0};
  const CallKey ocall{1, CallType::kOcall, 0};
  Scenario sw;
  sw.name = "switchless ecall_process x1";
  sw.switchless.push_back({ecall, 1});
  Scenario el;
  el.name = "eliminate ocall_log";
  el.eliminate.push_back({ocall});
  Scenario cp;
  cp.name = "cost-profile l1tf";
  cp.cost_profile = PatchLevel::kSpectreL1tf;
  return {sw, el, cp};
}

std::string golden_json() {
  const TraceDatabase db = golden_db();
  ReplayEngine engine(db);
  return replay::render_whatif_json(engine.validate(), engine.run_all(golden_scenarios()));
}

}  // namespace

#ifdef REPLAY_GOLDEN_GEN

#include <cstdio>
int main() {
  std::fputs(golden_json().c_str(), stdout);
  std::fputs("\n", stdout);
  return 0;
}

#else  // the actual tests

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::make_enclave;

constexpr const char* kDemoEdl = R"(
enclave {
  trusted { public int ecall_with_ocall(void); };
  untrusted { void ocall_noop(void); };
};
)";

/// Records the CLI's demo workload: `threads` workers, each issuing `calls`
/// ecall+ocall pairs through the sharded logger.
TraceDatabase record_demo(std::size_t threads, std::size_t calls) {
  Urts urts;
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  EnclaveConfig config;
  config.name = "demo";
  config.tcs_count = threads + 1;
  const EnclaveId eid = make_enclave(urts, kDemoEdl, std::move(config));
  urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
    ctx.work(500);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&empty_ocall});

  const auto body = [&] {
    for (std::size_t i = 0; i < calls; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  };
  std::vector<std::thread> workers;
  for (std::size_t t = 1; t < threads; ++t) workers.emplace_back(body);
  body();
  for (auto& w : workers) w.join();
  logger.detach();
  return db;
}

CallKey demo_ecall_key(const TraceDatabase& db) {
  const auto key = tracedb::find_call_by_name(db, 1, "ecall_with_ocall");
  EXPECT_TRUE(key.has_value());
  return *key;
}

// --- validation ---------------------------------------------------------------

TEST(ReplayValidation, DemoWorkloadReplaysWithinTolerance) {
  const TraceDatabase db = record_demo(4, 200);
  ReplayEngine engine(db);
  const auto v = engine.validate();
  EXPECT_TRUE(v.within(0.01)) << "span error " << v.span_error;
  // The identity replay is exact by construction, not merely within 1%.
  EXPECT_EQ(v.replayed_span_ns, v.recorded_span_ns);
  EXPECT_EQ(v.ecalls_below_floor, 0u) << "recorded durations below the cost-model floor";
}

TEST(ReplayValidation, MinikvWorkloadReplaysWithinTolerance) {
  Urts urts;
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  {
    minikv::Store store(urts.clock());
    minikv::KvProxy proxy(urts, store);
    minikv::DriverConfig config;
    config.clients = 3;
    config.ops_per_client = 60;
    minikv::run_workload(proxy, config);
  }
  logger.detach();
  ASSERT_GT(db.calls().size(), 0u);

  const auto v = ReplayEngine(db).validate();
  EXPECT_TRUE(v.within(0.01)) << "span error " << v.span_error;
  EXPECT_EQ(v.replayed_span_ns, v.recorded_span_ns);
}

TEST(ReplayValidation, MinidbWorkloadReplaysWithinTolerance) {
  Urts urts;
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  {
    minidb::HostVfs vfs(urts.clock());
    minidb::DbEnclave dbe(urts, vfs, minidb::WriteMode::kSeekThenWrite);
    dbe.open("/replay.db");
    minidb::CommitGenerator gen;
    for (int i = 0; i < 40; ++i) {
      dbe.begin();
      for (const auto& [k, val] : gen.make(static_cast<std::uint64_t>(i)).to_records()) {
        dbe.put_in_txn(k, val);
      }
      dbe.commit();
    }
    dbe.close_db();
  }
  logger.detach();
  ASSERT_GT(db.calls().size(), 0u);

  const auto v = ReplayEngine(db).validate();
  EXPECT_TRUE(v.within(0.01)) << "span error " << v.span_error;
  EXPECT_EQ(v.replayed_span_ns, v.recorded_span_ns);
}

// --- scenario passes ----------------------------------------------------------

TEST(ReplayScenario, EmptyScenarioReproducesTheRecordedTimeline) {
  const TraceDatabase db = record_demo(2, 100);
  ReplayEngine engine(db);
  const auto r = engine.run(Scenario{});
  EXPECT_EQ(r.replayed_span_ns, r.recorded_span_ns);
  EXPECT_EQ(r.transitions_removed, 0u);
}

TEST(ReplayScenario, SwitchlessConversionRemovesTransitions) {
  const TraceDatabase db = record_demo(2, 100);
  ReplayEngine engine(db);
  Scenario s;
  s.name = "switchless";
  s.switchless.push_back({demo_ecall_key(db), 2});
  const auto r = engine.run(s);
  EXPECT_LT(r.replayed_span_ns, r.recorded_span_ns);
  EXPECT_GT(r.speedup(), 1.0);
  ASSERT_EQ(r.switchless.size(), 1u);
  EXPECT_EQ(r.switchless[0].served + r.switchless[0].fallbacks, 200u);
  EXPECT_EQ(r.transitions_removed, r.switchless[0].served);
  // The cost side: two workers were provisioned over the whole replayed span.
  EXPECT_GT(r.switchless[0].wasted_worker_ns, 0u);
}

TEST(ReplayScenario, CostProfileSwapSlowsTheTraceDown) {
  const TraceDatabase db = record_demo(2, 100);
  ReplayEngine engine(db);  // recorded under the unpatched profile
  Scenario s;
  s.name = "l1tf";
  s.cost_profile = PatchLevel::kSpectreL1tf;
  const auto r = engine.run(s);
  EXPECT_GT(r.replayed_span_ns, r.recorded_span_ns);
  EXPECT_LT(r.speedup(), 1.0);
}

TEST(ReplayScenario, EpcGrowthRemovesReplayedFaults) {
  // Record an oversubscribed sweep: heap larger than the 192-page EPC.
  constexpr const char* kSweepEdl = R"(
enclave {
  trusted { public int ecall_sweep(void); };
  untrusted {};
};
)";
  Urts urts(CostModel::preset(PatchLevel::kUnpatched), /*epc_pages=*/192);
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  {
    EnclaveConfig config;
    config.code_pages = 8;
    config.heap_pages = 256;
    config.stack_pages = 2;
    config.tcs_count = 1;
    const EnclaveId eid = make_enclave(urts, kSweepEdl, std::move(config));
    Enclave& enclave = urts.enclave(eid);
    OcallTable table = make_ocall_table({});
    enclave.register_ecall("ecall_sweep", [](TrustedContext& ctx, void*) {
      const auto base = ctx.enclave().heap_base_page() * kPageSize;
      for (std::size_t p = 0; p < 256; ++p) ctx.touch(base + p * kPageSize, 64,
                                                      MemAccess::kWrite);
      return SgxStatus::kSuccess;
    });
    urts.sgx_ecall(eid, 0, &table, nullptr);
    urts.sgx_ecall(eid, 0, &table, nullptr);
  }
  logger.detach();
  ASSERT_GT(db.paging().size(), 0u);

  ReplayConfig rcfg;
  rcfg.recorded_epc_pages = 192;
  ReplayEngine engine(db, rcfg);
  Scenario grow;
  grow.name = "epc x4";
  grow.epc_pages = 192 * 4;
  const auto r = engine.run(grow);
  EXPECT_GT(r.page_faults_before, 0u);
  EXPECT_LT(r.page_faults_after, r.page_faults_before);
  EXPECT_LT(r.replayed_span_ns, r.recorded_span_ns);

  Scenario same;
  same.name = "epc same";
  same.epc_pages = 192;
  const auto r2 = engine.run(same);
  EXPECT_EQ(r2.page_faults_after, r2.page_faults_before);
  EXPECT_EQ(r2.replayed_span_ns, r2.recorded_span_ns);
}

TEST(ReplaySweep, PicksTheSmallestWorkerCountAtPeakSpeedup) {
  const TraceDatabase db = record_demo(3, 80);
  ReplayEngine engine(db);
  const auto sweep = engine.sweep_switchless(demo_ecall_key(db), 1, 4);
  ASSERT_EQ(sweep.points.size(), 4u);
  EXPECT_GE(sweep.best_workers, 1u);
  EXPECT_LE(sweep.best_workers, 4u);
  EXPECT_GE(sweep.best_speedup, 1.0);
  // best_workers really is the smallest count attaining the minimum span.
  const auto best_span = sweep.points[sweep.best_workers - 1].replayed_span_ns;
  for (std::size_t w = 1; w < sweep.best_workers; ++w) {
    EXPECT_GT(sweep.points[w - 1].replayed_span_ns, best_span);
  }
}

// --- determinism --------------------------------------------------------------

TEST(ReplayDeterminism, ResultsAreByteIdenticalAtAnyReplayThreadCount) {
  const TraceDatabase db = record_demo(3, 120);
  const auto key = demo_ecall_key(db);
  auto scenarios = [&] {
    std::vector<Scenario> list;
    for (std::size_t w = 1; w <= 4; ++w) {
      Scenario s;
      s.name = "switchless x" + std::to_string(w);
      s.switchless.push_back({key, w});
      list.push_back(s);
    }
    Scenario el;
    el.name = "eliminate";
    el.eliminate.push_back({key});
    list.push_back(el);
    Scenario cp;
    cp.name = "l1tf";
    cp.cost_profile = PatchLevel::kSpectreL1tf;
    list.push_back(cp);
    return list;
  }();

  std::string first;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    ReplayConfig rcfg;
    rcfg.threads = threads;
    ReplayEngine engine(db, rcfg);
    const std::string json =
        replay::render_whatif_json(engine.validate(), engine.run_all(scenarios));
    if (first.empty()) {
      first = json;
    } else {
      EXPECT_EQ(json, first) << "replay results diverged at " << threads << " threads";
    }
  }
}

// --- materialize + compare ----------------------------------------------------

TEST(ReplayMaterialize, MaterializedTraceDiffsLikeTheScenarioResult) {
  const TraceDatabase db = record_demo(2, 100);
  ReplayEngine engine(db);
  Scenario s;
  s.name = "switchless";
  s.switchless.push_back({demo_ecall_key(db), 1});
  const auto result = engine.run(s);
  const TraceDatabase after = engine.materialize(s);

  EXPECT_EQ(after.calls().size(), db.calls().size());
  const auto comparison = perf::compare_traces(db, after);
  const auto speedup = comparison.speedup();
  ASSERT_TRUE(speedup.has_value());
  EXPECT_NEAR(*speedup, result.speedup(), 1e-9);
}

// --- analyser integration -----------------------------------------------------

TEST(ReplayPredictions, AnalyzerAttachesSpeedupsToRecommendations) {
  const TraceDatabase db = record_demo(2, 150);
  perf::Analyzer analyzer(db);
  const auto report = analyzer.analyze();
  ASSERT_FALSE(report.findings.empty());

  bool any_modeled = false;
  bool any_switchless = false;
  for (const auto& f : report.findings) {
    for (const auto& r : f.recommendations) {
      if (r.scenario.empty()) continue;
      any_modeled = true;
      EXPECT_GT(r.predicted_speedup, 0.0);
      if (r.action == perf::Recommendation::kSwitchless) {
        any_switchless = true;
        EXPECT_GE(r.best_workers, 1u);
        EXPECT_GT(r.predicted_speedup, 1.0);
      }
    }
  }
  EXPECT_TRUE(any_modeled) << "no recommendation carried a replay prediction";
  EXPECT_TRUE(any_switchless) << "short-ecall finding lacks a switchless sweep entry";
}

TEST(ReplayPredictions, PredictionsCanBeDisabled) {
  const TraceDatabase db = record_demo(2, 150);
  perf::AnalyzerConfig config;
  config.predict_speedups = false;
  perf::Analyzer analyzer(db, config);
  const auto report = analyzer.analyze();
  for (const auto& f : report.findings) {
    for (const auto& r : f.recommendations) {
      EXPECT_EQ(r.predicted_speedup, 1.0);
      EXPECT_TRUE(r.scenario.empty());
      EXPECT_NE(r.action, perf::Recommendation::kSwitchless);
    }
  }
}

// --- golden file --------------------------------------------------------------

TEST(ReplayGolden, WhatifJsonMatchesGoldenFile) {
  const std::string golden_path = std::string(GOLDEN_DIR) + "/whatif_demo.json";
  std::ifstream in(golden_path, std::ios::binary);
  const std::string expected{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  ASSERT_FALSE(expected.empty()) << "missing golden file: " << golden_path;
  EXPECT_EQ(golden_json() + "\n", expected)
      << "whatif JSON drifted from " << golden_path
      << " — regenerate with -DREPLAY_GOLDEN_GEN if intentional";
}

}  // namespace

#endif  // REPLAY_GOLDEN_GEN
