#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace crypto;

// --- SHA-256 (FIPS 180-4 / NIST vectors) --------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("ab");
  h.update("c");
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256("abc")));
}

TEST(Sha256, ExactBlockBoundary) {
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(msg);
  const auto one = h.finish();
  EXPECT_EQ(to_hex(one), to_hex(sha256(msg)));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(to_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --- HMAC-SHA-256 (RFC 4231) ------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualConstantTime) {
  const auto a = sha256("x");
  auto b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

// --- ChaCha20 (RFC 8439 §2.4.2) ------------------------------------------------

TEST(ChaCha20, Rfc8439TestVector) {
  ChaChaKey key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[3] = 0x00;
  nonce[4] = 0x00;
  nonce[7] = 0x4a;
  // nonce = 00:00:00:00 00:00:00:4a 00:00:00:00
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> buf(plaintext.begin(), plaintext.end());
  chacha20_crypt(key, nonce, 1, buf.data(), buf.size());
  // First 16 bytes of the RFC's expected ciphertext.
  const std::uint8_t expected[16] = {0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80,
                                     0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d, 0x69, 0x81};
  EXPECT_EQ(std::memcmp(buf.data(), expected, sizeof(expected)), 0);
}

TEST(ChaCha20, RoundTrips) {
  ChaChaKey key{};
  key[0] = 7;
  ChaChaNonce nonce{};
  nonce[0] = 9;
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const auto original = data;
  chacha20_crypt(key, nonce, 0, data.data(), data.size());
  EXPECT_NE(data, original);
  chacha20_crypt(key, nonce, 0, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  ChaChaKey key{};
  key[5] = 42;
  ChaChaNonce nonce{};
  std::vector<std::uint8_t> a(200, 0xAB);
  std::vector<std::uint8_t> b = a;

  chacha20_crypt(key, nonce, 3, a.data(), a.size());

  ChaCha20 ctx(key, nonce, 3);
  ctx.crypt(b.data(), 77);
  ctx.crypt(b.data() + 77, b.size() - 77);
  EXPECT_EQ(a, b);
}

TEST(ChaCha20, DifferentCountersDiffer) {
  ChaChaKey key{};
  ChaChaNonce nonce{};
  std::vector<std::uint8_t> a(64, 0);
  std::vector<std::uint8_t> b(64, 0);
  chacha20_crypt(key, nonce, 0, a.data(), a.size());
  chacha20_crypt(key, nonce, 1, b.data(), b.size());
  EXPECT_NE(a, b);
}

TEST(ChaCha20, VectorOverloadReturnsTransformed) {
  ChaChaKey key{};
  ChaChaNonce nonce{};
  const std::vector<std::uint8_t> plain{1, 2, 3};
  const auto enc = chacha20_crypt(key, nonce, 0, plain);
  EXPECT_NE(enc, plain);
  EXPECT_EQ(chacha20_crypt(key, nonce, 0, enc), plain);
}

}  // namespace
