// Bignum tests: kernel correctness, Karatsuba vs schoolbook equivalence
// (property sweep), division, modexp, kernel hooks and the signing workload.
#include <gtest/gtest.h>

#include "bignum/bignum.hpp"
#include "bignum/signing.hpp"
#include "support/rng.hpp"

namespace {

using namespace bignum;

// --- kernels -----------------------------------------------------------------

TEST(Kernels, AddWordsCarry) {
  const Limb a[2] = {0xFFFFFFFF, 1};
  const Limb b[2] = {1, 0};
  Limb r[2];
  EXPECT_EQ(bn_add_words(r, a, b, 2), 0u);
  EXPECT_EQ(r[0], 0u);
  EXPECT_EQ(r[1], 2u);

  const Limb c[1] = {0xFFFFFFFF};
  const Limb d[1] = {1};
  Limb r2[1];
  EXPECT_EQ(bn_add_words(r2, c, d, 1), 1u);  // carry out
}

TEST(Kernels, SubWordsBorrow) {
  const Limb a[2] = {0, 1};  // 2^32
  const Limb b[2] = {1, 0};
  Limb r[2];
  EXPECT_EQ(bn_sub_words(r, a, b, 2), 0u);
  EXPECT_EQ(r[0], 0xFFFFFFFFu);
  EXPECT_EQ(r[1], 0u);

  EXPECT_EQ(bn_sub_words(r, b, a, 2), 1u);  // negative: borrow out
}

TEST(Kernels, SubPartWordsLongerA) {
  const Limb a[3] = {0, 0, 5};  // 5 * 2^64
  const Limb b[1] = {1};
  Limb r[3];
  EXPECT_EQ(bn_sub_part_words(r, a, b, 1, 2), 0u);
  EXPECT_EQ(r[0], 0xFFFFFFFFu);
  EXPECT_EQ(r[1], 0xFFFFFFFFu);
  EXPECT_EQ(r[2], 4u);
}

TEST(Kernels, SubPartWordsLongerB) {
  const Limb a[1] = {5};
  const Limb b[2] = {1, 0};
  Limb r[2];
  EXPECT_EQ(bn_sub_part_words(r, a, b, 1, -1), 0u);
  EXPECT_EQ(r[0], 4u);
  EXPECT_EQ(r[1], 0u);
}

TEST(Kernels, CmpWords) {
  const Limb a[2] = {1, 2};
  const Limb b[2] = {2, 1};
  EXPECT_EQ(bn_cmp_words(a, b, 2), 1);   // high limb decides
  EXPECT_EQ(bn_cmp_words(b, a, 2), -1);
  EXPECT_EQ(bn_cmp_words(a, a, 2), 0);
}

TEST(Kernels, MulNormalSmall) {
  const Limb a[1] = {0xFFFFFFFF};
  const Limb b[1] = {0xFFFFFFFF};
  Limb r[2];
  bn_mul_normal(r, a, 1, b, 1);
  // (2^32-1)^2 = 0xFFFFFFFE00000001
  EXPECT_EQ(r[0], 0x00000001u);
  EXPECT_EQ(r[1], 0xFFFFFFFEu);
}

// --- Karatsuba vs schoolbook (property sweep) ------------------------------------

class KaratsubaProperty : public testing::TestWithParam<int> {};

TEST_P(KaratsubaProperty, MatchesSchoolbook) {
  const int n2 = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(n2) * 7919);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Limb> a(static_cast<std::size_t>(n2));
    std::vector<Limb> b(static_cast<std::size_t>(n2));
    for (auto& l : a) l = static_cast<Limb>(rng.next_u64());
    for (auto& l : b) l = static_cast<Limb>(rng.next_u64());
    // Occasionally equal halves to exercise the `zero` path.
    if (iter % 5 == 0) std::copy(a.begin(), a.begin() + n2 / 2, a.begin() + n2 / 2);

    std::vector<Limb> expected(static_cast<std::size_t>(2 * n2));
    bn_mul_normal(expected.data(), a.data(), n2, b.data(), n2);

    std::vector<Limb> actual(static_cast<std::size_t>(2 * n2), 0);
    std::vector<Limb> scratch(static_cast<std::size_t>(4 * n2), 0);
    bn_mul_recursive(actual.data(), a.data(), b.data(), n2, scratch.data());
    EXPECT_EQ(actual, expected) << "n2=" << n2 << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KaratsubaProperty, testing::Values(16, 32, 64, 128));

TEST(Karatsuba, HooksInterceptSubPartWords) {
  support::Rng rng(5);
  constexpr int n2 = 32;
  std::vector<Limb> a(n2);
  std::vector<Limb> b(n2);
  for (auto& l : a) l = static_cast<Limb>(rng.next_u64());
  for (auto& l : b) l = static_cast<Limb>(rng.next_u64());

  int calls = 0;
  KernelHooks hooks;
  hooks.sub_part_words = [&calls](Limb* r, const Limb* x, const Limb* y, int cl, int dl) {
    ++calls;
    return bn_sub_part_words(r, x, y, cl, dl);
  };
  std::vector<Limb> r(2 * n2, 0);
  std::vector<Limb> t(4 * n2, 0);
  bn_mul_recursive(r.data(), a.data(), b.data(), n2, t.data(), &hooks);

  // 32 -> 16 (3 nodes each issuing 2 calls at 32 and 16): depth has
  // internal nodes at n2=32 (1) and n2=16 (3) = 4 nodes * 2 calls = 8.
  EXPECT_EQ(calls, 8);

  std::vector<Limb> expected(2 * n2);
  bn_mul_normal(expected.data(), a.data(), n2, b.data(), n2);
  EXPECT_EQ(r, expected);
}

// --- BigNum ---------------------------------------------------------------------

TEST(BigNum, HexRoundTrip) {
  const auto n = BigNum::from_hex("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(n.to_hex(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(BigNum(0).to_hex(), "0");
  EXPECT_EQ(BigNum::from_hex("000f").to_hex(), "f");
  EXPECT_THROW(BigNum::from_hex("xyz"), std::invalid_argument);
}

TEST(BigNum, FromBytesBigEndian) {
  const std::uint8_t bytes[3] = {0x01, 0x02, 0x03};
  EXPECT_EQ(BigNum::from_bytes_be(bytes, 3).to_hex(), "10203");
}

TEST(BigNum, ComparisonAndBits) {
  const BigNum a(100);
  const BigNum b(200);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a == BigNum(100));
  EXPECT_EQ(BigNum(0).bit_length(), 0);
  EXPECT_EQ(BigNum(1).bit_length(), 1);
  EXPECT_EQ(BigNum(0x100).bit_length(), 9);
  EXPECT_TRUE(BigNum(5).bit(0));
  EXPECT_FALSE(BigNum(5).bit(1));
  EXPECT_TRUE(BigNum(5).bit(2));
  EXPECT_TRUE(BigNum(5).is_odd());
  EXPECT_FALSE(BigNum(4).is_odd());
}

TEST(BigNum, AddSub) {
  const auto a = BigNum::from_hex("ffffffffffffffff");
  const auto one = BigNum(1);
  EXPECT_EQ(a.add(one).to_hex(), "10000000000000000");
  EXPECT_EQ(a.add(one).sub(one).to_hex(), "ffffffffffffffff");
  EXPECT_THROW(one.sub(a), std::underflow_error);
}

TEST(BigNum, Shifts) {
  const BigNum one(1);
  EXPECT_EQ(one.shift_left(100).bit_length(), 101);
  EXPECT_EQ(one.shift_left(100).shift_right(100), one);
  EXPECT_TRUE(one.shift_right(1).is_zero());
  const auto x = BigNum::from_hex("123456789abcdef");
  EXPECT_EQ(x.shift_left(37).shift_right(37), x);
}

TEST(BigNum, MulSmallKnown) {
  EXPECT_EQ(BigNum(1000000007).mul(BigNum(998244353)).to_u64(),
            1000000007ull * 998244353ull);
  EXPECT_TRUE(BigNum(0).mul(BigNum(5)).is_zero());
}

TEST(BigNum, MulLargeMatchesDistributive) {
  support::Rng rng(11);
  auto next = [&rng] { return rng.next_u64(); };
  const auto a = BigNum::random(next, 700);
  const auto b = BigNum::random(next, 900);
  const auto c = BigNum::random(next, 300);
  // (a + b) * c == a*c + b*c — exercises the Karatsuba path (700+ bits).
  EXPECT_EQ(a.add(b).mul(c), a.mul(c).add(b.mul(c)));
}

TEST(BigNum, DivModKnown) {
  const auto [q, r] = BigNum(1'000'000'007).divmod(BigNum(12345));
  EXPECT_EQ(q.to_u64(), 1'000'000'007ull / 12345);
  EXPECT_EQ(r.to_u64(), 1'000'000'007ull % 12345);
  EXPECT_THROW(BigNum(1).divmod(BigNum(0)), std::domain_error);
}

TEST(BigNum, DivModSmallerDividend) {
  const auto [q, r] = BigNum(5).divmod(BigNum(100));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r.to_u64(), 5u);
}

class DivModProperty : public testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DivModProperty, ReconstructsDividend) {
  const auto [dividend_bits, divisor_bits] = GetParam();
  support::Rng rng(static_cast<std::uint64_t>(dividend_bits * 1000 + divisor_bits));
  auto next = [&rng] { return rng.next_u64(); };
  for (int iter = 0; iter < 10; ++iter) {
    const auto u = BigNum::random(next, dividend_bits);
    const auto v = BigNum::random(next, divisor_bits);
    const auto [q, r] = u.divmod(v);
    EXPECT_TRUE(r < v);
    EXPECT_EQ(q.mul(v).add(r), u) << u.to_hex() << " / " << v.to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DivModProperty,
                         testing::Values(std::pair{256, 128}, std::pair{512, 256},
                                         std::pair{1024, 512}, std::pair{1024, 64},
                                         std::pair{333, 97}, std::pair{64, 64}));

TEST(BigNum, ModexpSmallKnown) {
  // 3^7 mod 50 = 2187 mod 50 = 37.
  EXPECT_EQ(BigNum(3).modexp(BigNum(7), BigNum(50)).to_u64(), 37u);
  // Fermat: 2^(p-1) mod p == 1 for prime p.
  EXPECT_EQ(BigNum(2).modexp(BigNum(1'000'000'006), BigNum(1'000'000'007)).to_u64(), 1u);
}

TEST(BigNum, ModexpZeroExponent) {
  EXPECT_EQ(BigNum(12345).modexp(BigNum(0), BigNum(99)).to_u64(), 1u);
}

TEST(BigNum, ModexpRoutesThroughHooks) {
  support::Rng rng(3);
  auto next = [&rng] { return rng.next_u64(); };
  const auto base = BigNum::random(next, 512);
  const auto mod = BigNum::random(next, 512);
  int calls = 0;
  KernelHooks hooks;
  hooks.sub_part_words = [&calls](Limb* r, const Limb* a, const Limb* b, int cl, int dl) {
    ++calls;
    return bn_sub_part_words(r, a, b, cl, dl);
  };
  const auto with_hooks = base.modexp(BigNum(65537), mod, &hooks);
  const auto without = base.modexp(BigNum(65537), mod);
  EXPECT_EQ(with_hooks, without);
  EXPECT_GT(calls, 0);  // Karatsuba engaged for 512-bit operands
}

// --- signing -----------------------------------------------------------------------

TEST(Signing, DeterministicAndVerifiable) {
  const Signer signer(1234);
  const Certificate cert = make_test_certificate(1, 0);
  const BigNum sig1 = signer.sign(cert);
  const BigNum sig2 = signer.sign(cert);
  EXPECT_EQ(sig1, sig2);
  EXPECT_TRUE(signer.check(cert, sig1));
}

TEST(Signing, DifferentCertsDifferentSignatures) {
  const Signer signer(1234);
  const BigNum s0 = signer.sign(make_test_certificate(1, 0));
  const BigNum s1 = signer.sign(make_test_certificate(1, 1));
  EXPECT_FALSE(s0 == s1);
}

TEST(Signing, DifferentKeysDifferentSignatures) {
  const Certificate cert = make_test_certificate(1, 0);
  EXPECT_FALSE(Signer(1).sign(cert) == Signer(2).sign(cert));
}

TEST(Signing, SignatureBelowModulus) {
  const Signer signer(77);
  const BigNum sig = signer.sign(make_test_certificate(2, 5));
  EXPECT_TRUE(sig < signer.modulus());
}

TEST(Signing, CertificateSerializationContainsFields) {
  const Certificate cert = make_test_certificate(9, 42);
  const std::string s = cert.serialize();
  EXPECT_NE(s.find("serial=42"), std::string::npos);
  EXPECT_NE(s.find(cert.subject), std::string::npos);
}

TEST(Signing, HooksSeeSubPartWordsStorm) {
  // The Glamdring shape: one signature triggers thousands of
  // bn_sub_part_words invocations through the hook.
  const Signer signer(1234);
  const Certificate cert = make_test_certificate(1, 0);
  int calls = 0;
  KernelHooks hooks;
  hooks.sub_part_words = [&calls](Limb* r, const Limb* a, const Limb* b, int cl, int dl) {
    ++calls;
    return bn_sub_part_words(r, a, b, cl, dl);
  };
  const BigNum sig = signer.sign(cert, &hooks);
  EXPECT_TRUE(signer.check(cert, sig));
  EXPECT_GT(calls, 100);
}

}  // namespace
