// Tests for the post-paper extensions: SGX v2 AEX-cause reporting (§4.1.4's
// "SGX v2 will enable this") and switchless calls (SDK 2.x
// `transition_using_threads`).
#include <gtest/gtest.h>

#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::make_enclave;

// --- SGX v2 AEX cause ---------------------------------------------------------

constexpr const char* kAexEdl = R"(
enclave {
  trusted {
    public int ecall_long(void);
    public int ecall_touch(void);
  };
  untrusted { void ocall_noop(void); };
};
)";

class AexCauseTest : public testing::Test {
 protected:
  AexCauseTest() : urts_(CostModel::preset(PatchLevel::kUnpatched), /*epc_pages=*/48) {
    EnclaveConfig config;
    config.code_pages = 4;
    config.heap_pages = 64;  // larger than the EPC: touching sweeps will fault
    config.stack_pages = 2;
    config.tcs_count = 1;
    config.debug = true;
    eid_ = make_enclave(urts_, kAexEdl, config);
    table_ = make_ocall_table({&empty_ocall});
    Enclave& e = urts_.enclave(eid_);
    e.register_ecall("ecall_long", [](TrustedContext& ctx, void*) {
      for (int i = 0; i < 20'000; ++i) ctx.work(450);  // ~9 ms: timer AEXs
      return SgxStatus::kSuccess;
    });
    e.register_ecall("ecall_touch", [](TrustedContext& ctx, void*) {
      const auto base = ctx.enclave().heap_base_page() * kPageSize;
      for (std::uint64_t p = 0; p < 64; ++p) ctx.touch(base + p * kPageSize, 1,
                                                       MemAccess::kWrite);
      return SgxStatus::kSuccess;
    });
  }

  tracedb::TraceDatabase run(int sgx_version, CallId call) {
    urts_.set_sgx_version(sgx_version);
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.trace_aex = true;
    perf::Logger logger(db, config);
    logger.attach(urts_);
    urts_.sgx_ecall(eid_, call, &table_, nullptr);
    logger.detach();
    return db;
  }

  Urts urts_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(AexCauseTest, V1CannotTellCauses) {
  // §4.1.4: "Due to a limitation in the first version of SGX, it is not
  // possible to infer the reason for the AEX."
  const auto db = run(1, 0);
  ASSERT_FALSE(db.aexs().empty());
  for (const auto& a : db.aexs()) EXPECT_EQ(a.cause, tracedb::AexCause::kUnknown);
}

TEST_F(AexCauseTest, V2ReportsInterrupts) {
  const auto db = run(2, 0);
  ASSERT_FALSE(db.aexs().empty());
  for (const auto& a : db.aexs()) EXPECT_EQ(a.cause, tracedb::AexCause::kInterrupt);
}

TEST_F(AexCauseTest, V2ReportsPageFaults) {
  const auto db = run(2, 1);
  ASSERT_FALSE(db.aexs().empty());
  bool saw_fault = false;
  for (const auto& a : db.aexs()) saw_fault |= a.cause == tracedb::AexCause::kPageFault;
  EXPECT_TRUE(saw_fault);
}

TEST_F(AexCauseTest, NonDebugEnclaveHidesCausesEvenOnV2) {
  // "This type could then be read by the logger as long as the enclave is a
  // debug enclave" (§4.1.4).
  EnclaveConfig config;
  config.code_pages = 4;
  config.heap_pages = 8;
  config.stack_pages = 2;
  config.tcs_count = 1;
  config.debug = false;
  const EnclaveId release = make_enclave(urts_, kAexEdl, config);
  urts_.enclave(release).register_ecall("ecall_long", [](TrustedContext& ctx, void*) {
    for (int i = 0; i < 20'000; ++i) ctx.work(450);
    return SgxStatus::kSuccess;
  });
  urts_.set_sgx_version(2);
  tracedb::TraceDatabase db;
  perf::LoggerConfig lconfig;
  lconfig.trace_aex = true;
  perf::Logger logger(db, lconfig);
  logger.attach(urts_);
  urts_.sgx_ecall(release, 0, &table_, nullptr);
  logger.detach();
  ASSERT_FALSE(db.aexs().empty());
  for (const auto& a : db.aexs()) EXPECT_EQ(a.cause, tracedb::AexCause::kUnknown);
}

TEST_F(AexCauseTest, CausesSurviveSerialization) {
  const auto db = run(2, 1);
  const std::string path = testing::TempDir() + "/aex_cause.bin";
  db.save(path);
  const auto loaded = tracedb::TraceDatabase::load(path);
  ASSERT_EQ(loaded.aexs().size(), db.aexs().size());
  for (std::size_t i = 0; i < loaded.aexs().size(); ++i) {
    EXPECT_EQ(loaded.aexs()[i].cause, db.aexs()[i].cause);
  }
  std::remove(path.c_str());
}

// --- switchless calls -----------------------------------------------------------

constexpr const char* kSwitchlessEdl = R"(
enclave {
  trusted {
    public int ecall_fast(void) transition_using_threads;
    public int ecall_regular(void);
  };
  untrusted { void ocall_noop(void); };
};
)";

class SwitchlessTest : public testing::Test {
 protected:
  SwitchlessTest() {
    eid_ = make_enclave(urts_, kSwitchlessEdl);
    table_ = make_ocall_table({&empty_ocall});
    Enclave& e = urts_.enclave(eid_);
    const auto work = [](TrustedContext& ctx, void*) {
      ctx.work(100);
      return SgxStatus::kSuccess;
    };
    e.register_ecall("ecall_fast", work);
    e.register_ecall("ecall_regular", work);
  }

  support::Nanoseconds time_call(CallId id) {
    const auto t0 = urts_.clock().now();
    EXPECT_EQ(urts_.sgx_ecall(eid_, id, &table_, nullptr), SgxStatus::kSuccess);
    return urts_.clock().now() - t0;
  }

  Urts urts_;
  EnclaveId eid_ = 0;
  OcallTable table_;
};

TEST_F(SwitchlessTest, EdlFlagParsed) {
  const auto spec = edl::parse(kSwitchlessEdl);
  EXPECT_TRUE(spec.ecalls[0].is_switchless);
  EXPECT_FALSE(spec.ecalls[1].is_switchless);
}

TEST_F(SwitchlessTest, DisabledByDefaultFallsBackToTransitions) {
  EXPECT_EQ(urts_.switchless_workers(eid_), 0u);
  EXPECT_EQ(time_call(0), time_call(1));  // both pay the full transition
}

TEST_F(SwitchlessTest, EnabledSkipsTransitions) {
  urts_.set_switchless_workers(eid_, 2);
  const auto fast = time_call(0);
  const auto regular = time_call(1);
  EXPECT_EQ(fast, urts_.cost().switchless_call_ns + 100);
  EXPECT_GT(regular, fast * 5);  // HotCalls-magnitude difference
}

TEST_F(SwitchlessTest, OnlyMarkedCallsUseTheFastPath) {
  urts_.set_switchless_workers(eid_, 2);
  EXPECT_EQ(time_call(1), urts_.cost().full_ecall_ns() + 100);
}

TEST_F(SwitchlessTest, CanBeDisabledAgain) {
  urts_.set_switchless_workers(eid_, 2);
  const auto fast = time_call(0);
  urts_.set_switchless_workers(eid_, 0);
  EXPECT_GT(time_call(0), fast);
}

TEST_F(SwitchlessTest, SwitchlessCallsCanStillOcall) {
  urts_.enclave(eid_).register_ecall("ecall_fast", [](TrustedContext& ctx, void*) {
    return ctx.ocall(0, nullptr);
  });
  urts_.set_switchless_workers(eid_, 1);
  EXPECT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
}

TEST_F(SwitchlessTest, VisibleToTheProfiler) {
  urts_.set_switchless_workers(eid_, 2);
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts_);
  urts_.sgx_ecall(eid_, 0, &table_, nullptr);
  logger.detach();
  ASSERT_EQ(db.calls().size(), 1u);
  EXPECT_EQ(db.name_of(eid_, tracedb::CallType::kEcall, 0), "ecall_fast");
  // Duration reflects the cheap path plus the logger's own cost.
  EXPECT_LT(db.calls()[0].duration(), urts_.cost().full_ecall_ns());
}

TEST_F(SwitchlessTest, OccupancyStatsAccountBusyAndWastedWorkerTime) {
  urts_.set_switchless_workers(eid_, 2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  }
  const auto stats = urts_.switchless_stats(eid_);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.calls, 5u);
  EXPECT_EQ(stats.fallbacks, 0u);
  // Each served call keeps its worker busy for the queue handoff plus the
  // 100 ns body; single-threaded, nothing else advances the clock meanwhile.
  EXPECT_EQ(stats.busy_ns, 5 * (urts_.cost().switchless_call_ns + 100));
  // The second worker spun through the whole window; the first spun whenever
  // it was not serving.  Here only one caller existed, so exactly one
  // worker-equivalent of the elapsed window was wasted.
  EXPECT_EQ(stats.wasted_worker_ns, stats.busy_ns);
}

TEST_F(SwitchlessTest, ReconfigureFoldsWastedTimeIntoTheMetricsRegistry) {
  auto& wasted = telemetry::metrics().counter("sgxsim.switchless_wasted_worker_ns", "ns");
  const auto before = wasted.value();
  urts_.set_switchless_workers(eid_, 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(urts_.sgx_ecall(eid_, 0, &table_, nullptr), SgxStatus::kSuccess);
  }
  const auto live = urts_.switchless_stats(eid_).wasted_worker_ns;
  EXPECT_GT(live, 0u);
  urts_.set_switchless_workers(eid_, 0);  // close out the window
  EXPECT_EQ(wasted.value() - before, live);
  // Disabled pool stops accruing: the retired total is stable.
  EXPECT_EQ(urts_.switchless_stats(eid_).wasted_worker_ns, live);
}

constexpr const char* kReentrantSwitchlessEdl = R"(
enclave {
  trusted {
    public int ecall_fast(void) transition_using_threads;
  };
  untrusted { void ocall_reenter(void) allow(ecall_fast); };
};
)";

TEST_F(SwitchlessTest, ExhaustedPoolFallsBackDeterministically) {
  // One worker serves the outer call; the ocall re-enters the same switchless
  // ecall while that worker is still occupied, so the nested instance must
  // take the fallback (full transition) path — deterministically, no racing
  // threads involved.
  EnclaveConfig config;
  config.tcs_count = 2;
  const EnclaveId eid = make_enclave(urts_, kReentrantSwitchlessEdl, config);
  Enclave& e = urts_.enclave(eid);
  OcallTable table = make_ocall_table({&test_helpers::invoke_fn_ocall});
  test_helpers::FnMs ms;
  bool nested = false;
  ms.fn = [&] {
    if (!nested) {
      nested = true;
      return urts_.sgx_ecall(eid, 0, &table, &ms);
    }
    return SgxStatus::kSuccess;
  };
  e.register_ecall("ecall_fast", [&](TrustedContext& ctx, void*) {
    ctx.work(100);
    return nested ? SgxStatus::kSuccess : ctx.ocall(0, &ms);
  });

  auto& fallbacks = telemetry::metrics().counter("sgxsim.switchless_fallbacks", "calls");
  const auto metric_before = fallbacks.value();
  urts_.set_switchless_workers(eid, 1);
  ASSERT_EQ(urts_.sgx_ecall(eid, 0, &table, &ms), SgxStatus::kSuccess);
  const auto stats = urts_.switchless_stats(eid);
  EXPECT_EQ(stats.calls, 1u);      // the outer call claimed the only worker
  EXPECT_EQ(stats.fallbacks, 1u);  // the nested one found the pool exhausted
  EXPECT_EQ(fallbacks.value() - metric_before, 1u);
}

TEST_F(SwitchlessTest, NoTcsPressure) {
  // Switchless calls don't claim a TCS: a single-TCS enclave can serve a
  // switchless call even while its TCS is taken.
  EnclaveConfig config;
  config.tcs_count = 1;
  const EnclaveId eid = make_enclave(urts_, kSwitchlessEdl, config);
  Enclave& e = urts_.enclave(eid);
  e.register_ecall("ecall_fast", [](TrustedContext& ctx, void*) {
    ctx.work(50);
    return SgxStatus::kSuccess;
  });
  urts_.set_switchless_workers(eid, 1);
  const auto tcs = e.acquire_tcs();  // occupy the only TCS
  ASSERT_TRUE(tcs.has_value());
  EXPECT_EQ(urts_.sgx_ecall(eid, 0, &table_, nullptr), SgxStatus::kSuccess);
  e.release_tcs(*tcs);
}

}  // namespace
