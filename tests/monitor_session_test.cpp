// perf::MonitorSession — the embeddable `sgxperf monitor` consumer loop.
//
// Pins the embedding contract: a session wrapped around an externally-driven
// Urts/Logger observes the same typed output the daemon emits (alert
// transitions, window snapshots with per-site HDR deltas, final stats), its
// persisted v5 tables match the analyser state, its loss counters are
// visible mid-run, and — under lockstep stress scheduling — its entire
// output is a pure function of the workload spec (byte-identical alert
// streams across runs).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "perf/logger.hpp"
#include "perf/session.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/stressor.hpp"

namespace {

/// Captures everything a session emits, in order.
class CollectorSink : public perf::MonitorSink {
 public:
  void on_session_start(const perf::SessionInfo& info) override {
    starts += 1;
    last_info = info;
  }
  void on_alert(const tracedb::AlertRecord& alert, bool resolved,
                const std::string& site_name) override {
    alert_lines.push_back(perf::alert_json(alert, resolved, site_name));
  }
  void on_window(const tracedb::WindowRecord& window,
                 const std::vector<perf::SessionWindowSite>& sites) override {
    windows.emplace_back(window, sites);
  }
  void on_stats(const perf::SessionStats& stats) override {
    stats_calls += 1;
    final_stats = stats;
  }
  void on_finish(std::uint64_t end_ns) override {
    finish_calls += 1;
    finish_end_ns = end_ns;
  }

  int starts = 0;
  perf::SessionInfo last_info;
  std::vector<std::string> alert_lines;
  std::vector<std::pair<tracedb::WindowRecord, std::vector<perf::SessionWindowSite>>> windows;
  int stats_calls = 0;
  perf::SessionStats final_stats;
  int finish_calls = 0;
  std::uint64_t finish_end_ns = 0;
};

struct SessionRun {
  tracedb::TraceDatabase db;
  std::shared_ptr<CollectorSink> sink;
  perf::SessionStats stats;
  std::uint64_t end_ns = 0;
  std::size_t analyzer_windows = 0;
};

/// Runs one lockstep stressor under an embedded session — the corpus
/// producer shape, minus the wire sink.
SessionRun run_embedded(const std::string& stressor_name, std::size_t threads,
                        std::uint64_t duration_ns, std::uint64_t seed) {
  SessionRun out;
  const auto stressor = stress::make_stressor(stressor_name);
  if (stressor == nullptr) throw std::runtime_error("unknown stressor");

  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched));
  perf::Logger logger(out.db);
  logger.attach(urts);

  perf::MonitorSessionConfig config;
  config.identity = {"test-host", stressor_name};
  config.subscription_capacity = 1 << 18;
  config.online.window_ns = 1'000'000;
  perf::MonitorSession session(logger, urts, config);
  if (!session.ok()) throw std::runtime_error("no subscriber slot");

  out.sink = std::make_shared<CollectorSink>();
  session.add_sink(out.sink);

  stress::StressConfig scfg;
  scfg.threads = threads;
  scfg.duration_ns = duration_ns;
  scfg.seed = seed;
  scfg.lockstep = true;
  stress::run_stressor(*stressor, urts, scfg);

  session.poll();
  logger.detach();
  session.finish();
  session.persist();
  out.stats = session.stats();
  out.end_ns = session.end_ns();
  out.analyzer_windows = session.analyzer().windows().size();
  return out;
}

TEST(MonitorSession, ObservesAnEmbeddedStressRun) {
  const auto run = run_embedded("ocall-storm", 2, 20'000'000, 7);

  EXPECT_EQ(run.sink->starts, 1);
  EXPECT_EQ(run.sink->last_info.identity.host, "test-host");
  EXPECT_EQ(run.sink->last_info.identity.enclave, "ocall-storm");
  EXPECT_EQ(run.sink->last_info.window_ns, 1'000'000u);

  EXPECT_GT(run.stats.events, 0u);
  EXPECT_EQ(run.stats.stream_dropped, 0u);
  EXPECT_EQ(run.stats.sealed_dropped, 0u);
  EXPECT_GT(run.stats.alerts_raised, 0u) << "ocall-storm must trip the online detectors";
  EXPECT_EQ(run.sink->alert_lines.size(), run.stats.alerts_raised + run.stats.alerts_resolved);

  ASSERT_FALSE(run.sink->windows.empty());
  EXPECT_EQ(run.sink->windows.size(), run.analyzer_windows);
  // Window deltas cover every recorded call exactly once.
  std::uint64_t delta_calls = 0;
  for (const auto& [win, sites] : run.sink->windows) {
    for (const auto& site : sites) {
      EXPECT_FALSE(site.name.empty());
      EXPECT_EQ(site.delta.count(), site.row.calls);
      delta_calls += site.delta.count();
    }
  }
  EXPECT_EQ(delta_calls, run.db.calls().size());

  EXPECT_EQ(run.sink->stats_calls, 1);
  EXPECT_EQ(run.sink->finish_calls, 1);
  EXPECT_GT(run.sink->finish_end_ns, 0u);
  EXPECT_EQ(run.sink->finish_end_ns, run.end_ns);
}

TEST(MonitorSession, PersistWritesTheV5Tables) {
  const auto run = run_embedded("cpu", 2, 10'000'000, 7);
  EXPECT_EQ(run.db.window_period(), 1'000'000u);
  EXPECT_EQ(run.db.windows().size(), run.analyzer_windows);
  EXPECT_FALSE(run.db.window_sites().empty());
}

TEST(MonitorSession, LockstepRunsAreByteIdentical) {
  const auto a = run_embedded("ocall-storm", 2, 20'000'000, 7);
  const auto b = run_embedded("ocall-storm", 2, 20'000'000, 7);
  EXPECT_EQ(a.sink->alert_lines, b.sink->alert_lines);
  ASSERT_EQ(a.sink->windows.size(), b.sink->windows.size());
  for (std::size_t i = 0; i < a.sink->windows.size(); ++i) {
    const auto& [wa, sa] = a.sink->windows[i];
    const auto& [wb, sb] = b.sink->windows[i];
    EXPECT_EQ(wa.calls, wb.calls);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j].name, sb[j].name);
      EXPECT_EQ(sa[j].delta.count(), sb[j].delta.count());
      EXPECT_EQ(sa[j].delta.sum(), sb[j].delta.sum());
    }
  }
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.end_ns, b.end_ns);
}

TEST(MonitorSession, PumpDrainsAConcurrentWorkload) {
  const auto stressor = stress::make_stressor("cpu");
  ASSERT_NE(stressor, nullptr);
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched));
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  perf::MonitorSessionConfig config;
  config.subscription_capacity = 1 << 18;
  config.online.window_ns = 1'000'000;
  perf::MonitorSession session(logger, urts, config);
  ASSERT_TRUE(session.ok());

  std::atomic<bool> done{false};
  std::thread worker([&] {
    stress::StressConfig scfg;
    scfg.threads = 2;
    scfg.duration_ns = 10'000'000;
    scfg.seed = 7;
    scfg.lockstep = true;
    stress::run_stressor(*stressor, urts, scfg);
    done.store(true, std::memory_order_release);
  });
  const std::uint64_t pumped = session.pump(done, 1);
  worker.join();
  logger.detach();
  session.finish();

  EXPECT_GT(pumped, 0u);
  // finish() may drain a tail beyond what pump() saw, never less.
  EXPECT_GE(session.stats().events, pumped);
  EXPECT_EQ(session.stats().stream_dropped, 0u);
}

TEST(MonitorSession, AlertJsonCarriesSchemaVersionFirst) {
  tracedb::AlertRecord alert;
  alert.kind = tracedb::AlertKind::kShortCalls;
  alert.enclave_id = 1;
  alert.type = tracedb::CallType::kEcall;
  alert.call_id = 3;
  alert.onset_ns = 42;
  alert.window_index = 0;
  alert.detail = 1000;
  const std::string raise = perf::alert_json(alert, false, "ecall_foo");
  EXPECT_EQ(raise.rfind("{\"schema_version\":1,", 0), 0u) << raise;
  EXPECT_NE(raise.find("\"event\":\"raise\""), std::string::npos);
  EXPECT_NE(raise.find("\"site\":\"ecall_foo\""), std::string::npos);
  alert.resolved_ns = 99;
  const std::string resolve = perf::alert_json(alert, true, "ecall_foo");
  EXPECT_NE(resolve.find("\"event\":\"resolve\""), std::string::npos);
  EXPECT_NE(resolve.find("\"resolved_ns\":99"), std::string::npos);
}

TEST(MonitorSession, NotOkWhenSubscriberSlotsExhausted) {
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  std::vector<std::unique_ptr<perf::MonitorSession>> sessions;
  // Exhaust the hub: sessions stop being ok() at some finite depth.
  bool saturated = false;
  for (int i = 0; i < 64; ++i) {
    auto s = std::make_unique<perf::MonitorSession>(logger);
    if (!s->ok()) {
      saturated = true;
      break;
    }
    sessions.push_back(std::move(s));
  }
  EXPECT_TRUE(saturated) << "subscriber slots must be finite";
}

}  // namespace
