// HDR-style log-bucketed histogram: bucket geometry invariants, percentile
// extraction, merge/serialisation round trips, and the striped concurrent
// recorder.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/hdr_histogram.hpp"

namespace {

using telemetry::HdrHistogram;
using telemetry::HdrSnapshot;
namespace hdr = telemetry::hdr;

TEST(HdrGeometry, FirstBucketsAreExact) {
  // Values below kSubCount land in their own unit-wide bucket.
  for (std::uint64_t v = 0; v < hdr::kSubCount; ++v) {
    const std::size_t idx = hdr::index_of(v);
    EXPECT_EQ(hdr::lower_bound(idx), v);
    EXPECT_EQ(hdr::upper_bound(idx), v);
  }
}

TEST(HdrGeometry, EveryValueFallsInsideItsBucket) {
  // Sweep powers of two and their neighbours across the whole range.
  for (std::uint32_t shift = 0; shift <= hdr::kMaxExponent; ++shift) {
    const std::uint64_t base = 1ULL << shift;
    for (const std::uint64_t v : {base - 1, base, base + 1, base + base / 3}) {
      const std::size_t idx = hdr::index_of(v);
      ASSERT_LT(idx, hdr::kBucketCount);
      EXPECT_LE(hdr::lower_bound(idx), v) << "value " << v;
      EXPECT_GE(hdr::upper_bound(idx), v) << "value " << v;
    }
  }
}

TEST(HdrGeometry, BucketsAreContiguousAndMonotonic) {
  for (std::size_t idx = 1; idx < hdr::kBucketCount; ++idx) {
    EXPECT_EQ(hdr::lower_bound(idx), hdr::upper_bound(idx - 1) + 1) << "bucket " << idx;
  }
}

TEST(HdrGeometry, OverflowClampsToLastBucket) {
  EXPECT_EQ(hdr::index_of(~0ULL), hdr::kBucketCount - 1);
}

TEST(HdrSnapshotTest, EmptySnapshotReportsZero) {
  HdrSnapshot snap;
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.value_at_percentile(50), 0u);
  EXPECT_EQ(snap.value_at_percentile(99.9), 0u);
  EXPECT_EQ(snap.max_value(), 0u);
}

TEST(HdrSnapshotTest, PercentilesOfUniformRange) {
  HdrSnapshot snap;
  for (std::uint64_t v = 1; v <= 10'000; ++v) snap.record(v);
  EXPECT_EQ(snap.count(), 10'000u);
  // HDR quantization: the reported value bounds the true percentile from
  // above by at most one bucket width (≤ ~3% relative error at 5 sub-bits).
  const auto p50 = static_cast<double>(snap.value_at_percentile(50));
  const auto p99 = static_cast<double>(snap.value_at_percentile(99));
  EXPECT_GE(p50, 5'000.0);
  EXPECT_LE(p50, 5'000.0 * 1.04);
  EXPECT_GE(p99, 9'900.0);
  EXPECT_LE(p99, 9'900.0 * 1.04);
  EXPECT_GE(snap.value_at_percentile(100), 10'000u);
}

TEST(HdrSnapshotTest, SingleValueDominatesAllPercentiles) {
  HdrSnapshot snap;
  snap.record(777);
  for (const double q : {0.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t v = snap.value_at_percentile(q);
    EXPECT_LE(hdr::lower_bound(hdr::index_of(777)), v);
    EXPECT_GE(hdr::upper_bound(hdr::index_of(777)), v);
  }
}

TEST(HdrSnapshotTest, MergeIsAdditive) {
  HdrSnapshot a;
  HdrSnapshot b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 1'000; v < 1'100; ++v) b.record(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  // Lower half comes from a, upper half from b.
  EXPECT_LT(a.value_at_percentile(25), 100u);
  EXPECT_GE(a.value_at_percentile(75), 1'000u);
}

TEST(HdrHistogramTest, ConcurrentRecordersLoseNothing) {
  HdrHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t) * 1'000 + static_cast<std::uint64_t>(i) % 997);
      }
    });
  }
  for (auto& w : workers) w.join();
  const HdrSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.count(), snap.count());
}

TEST(HdrHistogramTest, SnapshotSumIsExactNotBucketQuantized) {
  HdrHistogram hist;
  // 1000 does not sit on a bucket boundary: upper_bound(index_of(1000)) > 1000.
  for (int i = 0; i < 10; ++i) hist.record(1'000);
  const HdrSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.sum(), 10'000u);
  EXPECT_DOUBLE_EQ(snap.mean(), 1'000.0);
}

TEST(HdrHistogramTest, ResetClearsEverything) {
  HdrHistogram hist;
  hist.record(42);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.snapshot().count(), 0u);
}

TEST(HdrSnapshotTest, BucketReconstructionMatchesDirectRecording) {
  // The analyzer rebuilds snapshots from the trace's sparse bucket table;
  // both paths must agree bit-for-bit on every percentile.
  HdrSnapshot direct;
  for (std::uint64_t v : {3u, 17u, 450u, 450u, 9'000u, 1'000'000u}) direct.record(v);

  HdrSnapshot rebuilt;
  for (std::size_t idx = 0; idx < hdr::kBucketCount; ++idx) {
    const std::uint64_t n = direct.buckets()[idx];
    if (n > 0) rebuilt.add_bucket(idx, n);
  }
  rebuilt.set_exact_sum(direct.sum());
  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_EQ(rebuilt.sum(), direct.sum());
  for (const double q : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(rebuilt.value_at_percentile(q), direct.value_at_percentile(q)) << "q=" << q;
  }
}

}  // namespace
