#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/clock.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strutil.hpp"

namespace {

using namespace support;

// --- VirtualClock -----------------------------------------------------------

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0u);
}

TEST(VirtualClock, AdvanceReturnsNewTime) {
  VirtualClock c;
  EXPECT_EQ(c.advance(100), 100u);
  EXPECT_EQ(c.advance(50), 150u);
  EXPECT_EQ(c.now(), 150u);
}

TEST(VirtualClock, ResetRestoresZero) {
  VirtualClock c;
  c.advance(123);
  c.reset();
  EXPECT_EQ(c.now(), 0u);
}

TEST(VirtualClock, ConcurrentAdvancesSumExactly) {
  VirtualClock c;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.advance(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now(), static_cast<Nanoseconds>(kThreads) * kIters * 3);
}

TEST(CycleConverter, RoundTripsApproximately) {
  CycleConverter conv(2.75);
  // 5,850 cycles should be about 2,127 ns — the paper's §2.3.1 anchor.
  EXPECT_NEAR(static_cast<double>(conv.cycles_to_ns(5850)), 2127.0, 2.0);
  EXPECT_NEAR(static_cast<double>(conv.ns_to_cycles(2130)), 5857.0, 3.0);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextInIsInclusive) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, StringHasRequestedLength) {
  Rng r(1);
  EXPECT_EQ(r.next_string(0).size(), 0u);
  EXPECT_EQ(r.next_string(12).size(), 12u);
}

// --- stats ------------------------------------------------------------------

TEST(Stats, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleValue) {
  const Summary s = summarize(std::vector<double>{5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.p99, 5.0);
}

TEST(Stats, KnownDistribution) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 0.2);
  EXPECT_NEAR(s.p99, 99.01, 0.2);
  EXPECT_NEAR(s.stddev, 28.866, 0.01);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(Stats, PercentileSortedEdges) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 50), 2.5);
}

TEST(Stats, IntegerOverload) {
  const std::vector<std::uint64_t> v{10, 20, 30};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
}

// --- Histogram ----------------------------------------------------------------

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  h.add(10.0);  // boundary lands in last bin
  h.add(11.0);  // out of range: dropped
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 2u);
  EXPECT_EQ(h.count_at(9), 2u);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, FromValuesSpansData) {
  const std::vector<double> v{2.0, 4.0, 6.0, 8.0};
  const Histogram h = Histogram::from_values(v, 4);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.lo(), 2.0);
  EXPECT_DOUBLE_EQ(h.hi(), 8.0);
}

TEST(Histogram, FromValuesDegenerate) {
  const Histogram h = Histogram::from_values({3.0, 3.0}, 5);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, AsciiAndCsvRender) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string ascii = h.render_ascii(10, "us");
  EXPECT_NE(ascii.find('#'), std::string::npos);
  const std::string csv = h.to_csv();
  EXPECT_NE(csv.find("bin_lo,bin_hi,count"), std::string::npos);
  EXPECT_NE(csv.find(",2\n"), std::string::npos);
}

// --- strutil --------------------------------------------------------------------

TEST(StrUtil, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("%s", ""), "");
}

TEST(StrUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrUtil, Trim) {
  EXPECT_EQ(trim("  x \n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StrUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("ecall_foo", "ecall_"));
  EXPECT_FALSE(starts_with("e", "ecall_"));
  EXPECT_TRUE(ends_with("lib.so", ".so"));
  EXPECT_FALSE(ends_with("x", ".so"));
}

TEST(StrUtil, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StrUtil, FormatDuration) {
  EXPECT_EQ(format_duration_ns(999), "999 ns");
  EXPECT_EQ(format_duration_ns(15'000), "15.0 us");
  EXPECT_EQ(format_duration_ns(45'377'000), "45.4 ms");
  EXPECT_EQ(format_duration_ns(31'000'000'000ull), "31.00 s");
}

TEST(StrUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1'320'000), "1.26 MiB");
}

}  // namespace
