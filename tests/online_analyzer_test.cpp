// Online analyser correctness:
//  * parity — on each built-in workload (demo / minikv / minidb) the online
//    detectors' end-of-run active-alert set equals the post-mortem analyser's
//    recommendation set: same sites, same anti-pattern classes.  This is the
//    correctness anchor of perf/online.hpp: the cumulative predicates are the
//    post-mortem ones, so once the stream is fully drained the verdicts must
//    agree.
//  * phase change — a workload that turns pathological mid-run raises its
//    alert with an onset timestamp strictly *inside* the run (the post-mortem
//    analyser can only ever speak about the whole trace), and an alert whose
//    predicate stops holding is resolved again.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "minikv/driver.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/online.hpp"
#include "sgxsim/runtime.hpp"
#include "tests/sim_helpers.hpp"
#include "tracedb/database.hpp"

namespace {

using perf::FindingKind;
using perf::OnlineAnalyzer;
using perf::StreamEvent;
using tracedb::AlertKind;
using tracedb::CallKey;
using tracedb::CallType;
using tracedb::TraceDatabase;

/// (kind, enclave, type, call_id) — one alert/finding identity.
using VerdictKey = std::tuple<std::uint8_t, std::uint64_t, std::uint8_t, std::uint32_t>;

VerdictKey verdict_key(AlertKind kind, const CallKey& site) {
  return {static_cast<std::uint8_t>(kind), site.enclave_id,
          static_cast<std::uint8_t>(site.type), site.call_id};
}

/// Post-mortem finding kinds that have an online analogue.  Interface and
/// security findings (EDL narrowing, user_check pointers) need the full
/// trace + interface definition and are post-mortem only; kLatencyShift on
/// the online side is window-based and has no post-mortem analogue.
std::optional<AlertKind> alert_kind_of(FindingKind k) {
  switch (k) {
    case FindingKind::kShortCalls: return AlertKind::kShortCalls;
    case FindingKind::kReorderStart: return AlertKind::kReorderStart;
    case FindingKind::kReorderEnd: return AlertKind::kReorderEnd;
    case FindingKind::kBatchable: return AlertKind::kBatchable;
    case FindingKind::kMergeable: return AlertKind::kMergeable;
    case FindingKind::kSyncContention: return AlertKind::kSyncContention;
    case FindingKind::kPaging: return AlertKind::kPaging;
    case FindingKind::kTailLatency: return AlertKind::kTailLatency;
    default: return std::nullopt;
  }
}

/// Runs `workload` with the logger attached and a live subscription open,
/// then feeds the full stream to an OnlineAnalyzer and the merged trace to
/// the post-mortem Analyzer, returning both verdict sets.
struct ParityRun {
  std::set<VerdictKey> online;
  std::set<VerdictKey> postmortem;
  std::uint64_t stream_dropped = 0;
  std::uint64_t pending_evicted = 0;
  std::uint64_t events = 0;
};

template <typename Workload>
ParityRun run_parity(Workload&& workload) {
  sgxsim::Urts urts;
  TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  // Large enough that a fully-buffered run drops nothing: parity is only
  // promised on lossless streams.
  auto sub = logger.subscribe("parity", 1 << 18);
  workload(urts);
  logger.detach();  // seals + merges the shards for the post-mortem side

  ParityRun out;
  OnlineAnalyzer online;  // default OnlineConfig embeds default AnalyzerConfig
  std::vector<StreamEvent> batch;
  std::uint64_t end_ns = 0;
  while (sub->poll(batch, 4096) > 0) {
    for (const auto& ev : batch) end_ns = std::max(end_ns, ev.end_ns);
    online.feed(batch);
    batch.clear();
  }
  sub->close();
  online.finish(end_ns);

  out.stream_dropped = sub->dropped();
  out.pending_evicted = online.pending_evicted();
  out.events = online.events_seen();
  for (const auto& a : online.active_alerts()) {
    if (a.kind == AlertKind::kLatencyShift) continue;  // online-only signal
    out.online.insert(verdict_key(a.kind, CallKey{a.enclave_id, a.type, a.call_id}));
  }

  const auto report = perf::Analyzer(db).analyze();
  for (const auto& f : report.findings) {
    if (const auto kind = alert_kind_of(f.kind)) {
      out.postmortem.insert(verdict_key(*kind, f.subject));
    }
  }
  return out;
}

void expect_parity(const ParityRun& run) {
  // Parity preconditions: nothing dropped, no Eq.2 buffers evicted.
  EXPECT_EQ(run.stream_dropped, 0u);
  EXPECT_EQ(run.pending_evicted, 0u);
  EXPECT_GT(run.events, 0u);
  EXPECT_EQ(run.online, run.postmortem);
}

constexpr char kDemoEdl[] = R"(
enclave {
  trusted {
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

sgxsim::SgxStatus demo_ocall(void*) { return sgxsim::SgxStatus::kSuccess; }

TEST(OnlineParity, DemoWorkloadMatchesPostMortem) {
  const auto run = run_parity([](sgxsim::Urts& urts) {
    using namespace sgxsim;
    EnclaveConfig config;
    config.name = "demo";
    config.tcs_count = 2;
    const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kDemoEdl));
    urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
      ctx.work(500);
      return ctx.ocall(0, nullptr);
    });
    OcallTable table = make_ocall_table({&demo_ocall});
    for (int i = 0; i < 120; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);
  });
  expect_parity(run);
  // The demo workload is built to be pathological: the verdict sets must
  // not be trivially empty for the parity check to mean anything.
  EXPECT_FALSE(run.online.empty());
}

TEST(OnlineParity, MiniKvWorkloadMatchesPostMortem) {
  const auto run = run_parity([](sgxsim::Urts& urts) {
    minikv::Store store(urts.clock());
    minikv::KvProxy proxy(urts, store);
    minikv::DriverConfig config;
    config.clients = 2;
    config.ops_per_client = 300;
    minikv::run_workload(proxy, config);
  });
  expect_parity(run);
}

TEST(OnlineParity, MiniDbWorkloadMatchesPostMortem) {
  const auto run = run_parity([](sgxsim::Urts& urts) {
    minidb::HostVfs vfs(urts.clock());
    minidb::DbEnclave dbe(urts, vfs, minidb::WriteMode::kSeekThenWrite);
    dbe.open("/parity.db");
    minidb::CommitGenerator gen;
    for (std::uint64_t i = 0; i < 40; ++i) {
      dbe.begin();
      for (const auto& [k, v] : gen.make(i).to_records()) dbe.put_in_txn(k, v);
      dbe.commit();
    }
    dbe.close_db();
  });
  expect_parity(run);
  EXPECT_FALSE(run.online.empty());
}

// --- phase change ----------------------------------------------------------

StreamEvent short_call_event(std::uint64_t start_ns, std::uint64_t duration_ns) {
  StreamEvent ev;
  ev.kind = StreamEvent::Kind::kCall;
  ev.call_type = CallType::kOcall;
  ev.thread_id = 1;
  ev.enclave_id = 1;
  ev.call_id = 7;
  ev.start_ns = start_ns;
  ev.end_ns = start_ns + duration_ns;
  return ev;
}

TEST(OnlinePhaseChange, AlertOnsetFallsStrictlyInsideTheRun) {
  OnlineAnalyzer online;
  std::vector<std::pair<tracedb::AlertRecord, bool>> transitions;  // (record, resolved)
  online.set_alert_sink([&](const tracedb::AlertRecord& a, bool resolved) {
    transitions.emplace_back(a, resolved);
  });

  // Phase 1: 200 healthy 60 us ocalls, 1 ms apart — no detector fires.
  std::uint64_t t = 0;
  const auto feed = [&](std::uint64_t duration_ns) {
    online.feed(short_call_event(t, duration_ns));
    t += duration_ns + 1'000'000;
  };
  for (int i = 0; i < 200; ++i) feed(60'000);
  EXPECT_TRUE(transitions.empty()) << "healthy phase must not raise alerts";
  const std::uint64_t phase2_start = t;

  // Phase 2: the site turns pathological (600 ns calls).  The cumulative
  // sub-1us fraction crosses Eq. 1's alpha = 0.35 once enough short calls
  // accumulate — mid-run, not at the end.
  for (int i = 0; i < 300; ++i) feed(600);
  const std::uint64_t run_end = t;
  online.finish(run_end);

  const auto raised =
      std::find_if(transitions.begin(), transitions.end(), [](const auto& tr) {
        return tr.first.kind == AlertKind::kShortCalls && !tr.second;
      });
  ASSERT_NE(raised, transitions.end());
  EXPECT_GT(raised->first.onset_ns, phase2_start);
  EXPECT_LT(raised->first.onset_ns, run_end);

  // Still active at end-of-run: this is exactly the verdict the post-mortem
  // analyser would reach — but with an onset the full-trace view cannot give.
  // (The bimodal durations legitimately also fire tail-latency / latency-
  // shift alerts; only the short-calls one is under test here.)
  const auto active = online.active_alerts();
  const auto it = std::find_if(active.begin(), active.end(), [](const auto& a) {
    return a.kind == AlertKind::kShortCalls;
  });
  ASSERT_NE(it, active.end());
  EXPECT_EQ(it->resolved_ns, 0u);
  EXPECT_EQ(it->onset_ns, raised->first.onset_ns);
}

TEST(OnlinePhaseChange, AlertResolvesWhenThePredicateStopsHolding) {
  OnlineAnalyzer online;
  std::vector<std::pair<tracedb::AlertRecord, bool>> transitions;
  online.set_alert_sink([&](const tracedb::AlertRecord& a, bool resolved) {
    transitions.emplace_back(a, resolved);
  });

  std::uint64_t t = 0;
  const auto feed = [&](std::uint64_t duration_ns) {
    online.feed(short_call_event(t, duration_ns));
    t += duration_ns + 1'000'000;
  };
  // 20 short calls out of 25: fraction 0.8 — Eq. 1 raises.
  for (int i = 0; i < 20; ++i) feed(600);
  for (int i = 0; i < 5; ++i) feed(60'000);
  const auto raised_early =
      std::find_if(transitions.begin(), transitions.end(), [](const auto& tr) {
        return tr.first.kind == AlertKind::kShortCalls && !tr.second;
      });
  ASSERT_NE(raised_early, transitions.end());

  // The site recovers: long calls dilute the short fraction below every
  // Eq. 1 threshold (20/80 = 0.25 < alpha), so the alert resolves mid-run.
  for (int i = 0; i < 55; ++i) feed(60'000);
  online.finish(t);

  const auto resolved =
      std::find_if(transitions.begin(), transitions.end(), [](const auto& tr) {
        return tr.first.kind == AlertKind::kShortCalls && tr.second;
      });
  ASSERT_NE(resolved, transitions.end());
  EXPECT_GT(resolved->first.resolved_ns, resolved->first.onset_ns);
  for (const auto& a : online.active_alerts()) {
    EXPECT_NE(a.kind, AlertKind::kShortCalls) << "short-calls alert must have resolved";
  }

  // The history keeps the resolved record (it is what persist() writes).
  const auto& history = online.alerts();
  const auto rec = std::find_if(history.begin(), history.end(), [](const auto& a) {
    return a.kind == AlertKind::kShortCalls;
  });
  ASSERT_NE(rec, history.end());
  EXPECT_GT(rec->resolved_ns, 0u);
}

}  // namespace
