// Tests for the before/after trace comparison and the thread timeline.
#include <gtest/gtest.h>

#include "perf/compare.hpp"
#include "perf/timeline.hpp"

namespace {

using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;

void add(TraceDatabase& db, CallType type, tracedb::CallId id, std::uint64_t start,
         std::uint64_t end, tracedb::ThreadId tid = 1) {
  CallRecord c;
  c.type = type;
  c.call_id = id;
  c.thread_id = tid;
  c.enclave_id = 1;
  c.start_ns = start;
  c.end_ns = end;
  db.add_call(c);
}

TEST(Compare, CountsAndTransitionsSaved) {
  TraceDatabase before;
  before.add_call_name({1, CallType::kEcall, 0, "ecall_sub"});
  for (int i = 0; i < 100; ++i) {
    add(before, CallType::kEcall, 0, static_cast<std::uint64_t>(i) * 10'000,
        static_cast<std::uint64_t>(i) * 10'000 + 5'000);
  }
  TraceDatabase after;
  after.add_call_name({1, CallType::kEcall, 3, "ecall_sub"});   // different id, same name
  after.add_call_name({1, CallType::kEcall, 4, "ecall_mul"});
  for (int i = 0; i < 4; ++i) {
    add(after, CallType::kEcall, 3, static_cast<std::uint64_t>(i) * 10'000,
        static_cast<std::uint64_t>(i) * 10'000 + 5'000);
    add(after, CallType::kEcall, 4, static_cast<std::uint64_t>(i) * 10'000 + 6'000,
        static_cast<std::uint64_t>(i) * 10'000 + 9'000);
  }

  const auto cmp = perf::compare_traces(before, after);
  EXPECT_EQ(cmp.ecalls_before, 100u);
  EXPECT_EQ(cmp.ecalls_after, 8u);
  EXPECT_EQ(cmp.transitions_saved(), 92);

  // The biggest count change leads, matched by name across different ids.
  ASSERT_FALSE(cmp.deltas.empty());
  EXPECT_EQ(cmp.deltas[0].name, "ecall_sub");
  EXPECT_EQ(cmp.deltas[0].count_before, 100u);
  EXPECT_EQ(cmp.deltas[0].count_after, 4u);
  // ecall_mul is new in the after-trace.
  bool saw_mul = false;
  for (const auto& d : cmp.deltas) {
    if (d.name == "ecall_mul") {
      saw_mul = true;
      EXPECT_EQ(d.count_before, 0u);
      EXPECT_EQ(d.count_after, 4u);
    }
  }
  EXPECT_TRUE(saw_mul);
}

TEST(Compare, SpeedupFromSpans) {
  TraceDatabase before;
  add(before, CallType::kEcall, 0, 0, 200'000);
  TraceDatabase after;
  add(after, CallType::kEcall, 0, 0, 100'000);
  const auto cmp = perf::compare_traces(before, after);
  ASSERT_TRUE(cmp.speedup().has_value());
  EXPECT_NEAR(*cmp.speedup(), 2.0, 1e-9);
}

TEST(Compare, EmptyTracesHaveNoSpeedup) {
  TraceDatabase before;
  TraceDatabase after;
  const auto cmp = perf::compare_traces(before, after);
  EXPECT_FALSE(cmp.speedup().has_value());
  EXPECT_TRUE(cmp.deltas.empty());
}

TEST(Compare, RenderMentionsKeyNumbers) {
  TraceDatabase before;
  before.add_call_name({1, CallType::kOcall, 0, "ocall_lseek"});
  for (int i = 0; i < 10; ++i) {
    add(before, CallType::kOcall, 0, static_cast<std::uint64_t>(i) * 1'000,
        static_cast<std::uint64_t>(i) * 1'000 + 500);
  }
  TraceDatabase after;
  const std::string text = perf::render_comparison(perf::compare_traces(before, after));
  EXPECT_NE(text.find("ocall_lseek"), std::string::npos);
  EXPECT_NE(text.find("transitions saved: 10"), std::string::npos);
}

TEST(Compare, RenderTruncatesRows) {
  TraceDatabase before;
  for (int i = 0; i < 30; ++i) {
    add(before, CallType::kEcall, static_cast<tracedb::CallId>(i),
        static_cast<std::uint64_t>(i) * 1'000, static_cast<std::uint64_t>(i) * 1'000 + 100);
  }
  TraceDatabase after;
  const std::string text =
      perf::render_comparison(perf::compare_traces(before, after), /*max_rows=*/5);
  EXPECT_NE(text.find("more calls"), std::string::npos);
}

TEST(Timeline, MarksEcallsAndOcallsPerThread) {
  TraceDatabase db;
  // Thread 1: one ecall covering the first half with a nested ocall.
  add(db, CallType::kEcall, 0, 0, 500, 1);
  add(db, CallType::kOcall, 0, 100, 200, 1);
  // Thread 2: a late short ecall.
  add(db, CallType::kEcall, 1, 900, 1'000, 2);

  const std::string text = perf::render_timeline(db, 40);
  EXPECT_NE(text.find("thread 1"), std::string::npos);
  EXPECT_NE(text.find("thread 2"), std::string::npos);
  EXPECT_NE(text.find('E'), std::string::npos);
  // The ecall visually dominates its nested ocall (no 'o' inside an 'E' run
  // for thread 1 because ecalls win the cell).
  const auto row1_start = text.find("thread 1");
  const auto row2_start = text.find("thread 2");
  const std::string row1 = text.substr(row1_start, row2_start - row1_start);
  EXPECT_EQ(row1.find('o'), std::string::npos);
}

TEST(Timeline, EmptyTrace) {
  TraceDatabase db;
  EXPECT_EQ(perf::render_timeline(db), "(no calls)\n");
}

TEST(Timeline, ZeroWidthGuard) {
  TraceDatabase db;
  add(db, CallType::kEcall, 0, 0, 10);
  EXPECT_EQ(perf::render_timeline(db, 0), "(no calls)\n");
}

}  // namespace
