// Shared helpers for tests that build simulated enclaves.
#pragma once

#include <functional>

#include "sgxsim/runtime.hpp"

namespace test_helpers {

/// Marshalling struct that lets tests express ocall bodies as std::function.
struct FnMs {
  std::function<sgxsim::SgxStatus()> fn;
};

inline sgxsim::SgxStatus invoke_fn_ocall(void* ms) {
  auto* m = static_cast<FnMs*>(ms);
  return m->fn ? m->fn() : sgxsim::SgxStatus::kSuccess;
}

/// An ocall that does nothing (used where only the transition matters).
inline sgxsim::SgxStatus empty_ocall(void* /*ms*/) { return sgxsim::SgxStatus::kSuccess; }

/// Builds an enclave from EDL text with a default small config.
inline sgxsim::EnclaveId make_enclave(sgxsim::Urts& urts, const std::string& edl_text,
                                      sgxsim::EnclaveConfig config = {}) {
  return urts.create_enclave(std::move(config), sgxsim::edl::parse(edl_text));
}

}  // namespace test_helpers
