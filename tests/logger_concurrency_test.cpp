// Concurrency regression net for the sharded recording path: N real threads
// hammer ecalls/ocalls through one attached Logger, and the merged database
// must contain every record exactly once, with per-thread monotonic
// timestamps, correct cross-references, analyzer verdicts matching the
// single-threaded baseline, and (for single-threaded workloads) serialized
// bytes identical to the legacy mutex path.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using namespace sgxsim;
using test_helpers::empty_ocall;
using test_helpers::make_enclave;
using tracedb::CallType;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

constexpr std::size_t kThreads = 4;
constexpr std::size_t kCallsPerThread = 50;

EnclaveId build_enclave(Urts& urts) {
  EnclaveConfig config;
  config.tcs_count = kThreads + 1;
  const EnclaveId eid = make_enclave(urts, kEdl, config);
  urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
    ctx.work(200);
    return ctx.ocall(0, nullptr);
  });
  return eid;
}

/// Issues `calls` ecalls (each performing one ocall) from `threads` worker
/// threads; with threads == 1 the workload runs on the calling thread so the
/// single-threaded trace is deterministic.
void run_workload(Urts& urts, EnclaveId eid, std::size_t threads, std::size_t calls) {
  OcallTable table = make_ocall_table({&empty_ocall});
  auto body = [&] {
    for (std::size_t i = 0; i < calls; ++i) {
      ASSERT_EQ(urts.sgx_ecall(eid, 0, &table, nullptr), SgxStatus::kSuccess);
    }
  };
  if (threads == 1) {
    body();
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) workers.emplace_back(body);
  for (auto& w : workers) w.join();
}

TEST(LoggerConcurrency, NoLostOrDuplicatedRecords) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  const EnclaveId eid = build_enclave(urts);
  run_workload(urts, eid, kThreads, kCallsPerThread);
  logger.detach();

  ASSERT_EQ(db.calls().size(), kThreads * kCallsPerThread * 2);

  // Exactly kCallsPerThread ecalls and ocalls per worker thread.
  std::map<tracedb::ThreadId, std::size_t> ecalls;
  std::map<tracedb::ThreadId, std::size_t> ocalls;
  for (const auto& c : db.calls()) {
    (c.type == CallType::kEcall ? ecalls : ocalls)[c.thread_id]++;
    EXPECT_GT(c.end_ns, c.start_ns);  // every record finished exactly once
  }
  ASSERT_EQ(ecalls.size(), kThreads);
  ASSERT_EQ(ocalls.size(), kThreads);
  for (const auto& [tid, n] : ecalls) EXPECT_EQ(n, kCallsPerThread) << "thread " << tid;
  for (const auto& [tid, n] : ocalls) EXPECT_EQ(n, kCallsPerThread) << "thread " << tid;

  // Every ocall points at a distinct same-thread ecall (remap correctness).
  std::set<tracedb::CallIndex> parents;
  for (const auto& c : db.calls()) {
    if (c.type != CallType::kOcall) continue;
    ASSERT_NE(c.parent, tracedb::kNoParent);
    const auto& parent = db.calls().at(static_cast<std::size_t>(c.parent));
    EXPECT_EQ(parent.type, CallType::kEcall);
    EXPECT_EQ(parent.thread_id, c.thread_id);
    EXPECT_TRUE(parents.insert(c.parent).second) << "parent shared by two ocalls";
  }
}

TEST(LoggerConcurrency, TimestampsSortedGloballyAndPerThread) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  const EnclaveId eid = build_enclave(urts);
  run_workload(urts, eid, kThreads, kCallsPerThread);
  logger.detach();

  std::map<tracedb::ThreadId, tracedb::Nanoseconds> last_start;
  for (std::size_t i = 0; i < db.calls().size(); ++i) {
    const auto& c = db.calls()[i];
    if (i > 0) EXPECT_GE(c.start_ns, db.calls()[i - 1].start_ns) << "global order broken";
    const auto it = last_start.find(c.thread_id);
    if (it != last_start.end()) {
      EXPECT_GT(c.start_ns, it->second) << "per-thread order broken";
    }
    last_start[c.thread_id] = c.start_ns;
  }
}

TEST(LoggerConcurrency, MergeStatsAccountForEveryShard) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  const EnclaveId eid = build_enclave(urts);
  run_workload(urts, eid, kThreads, kCallsPerThread);
  logger.detach();

  EXPECT_EQ(db.shard_count(), kThreads);
  const auto stats = db.merge_stats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.shards_merged, kThreads);
  EXPECT_EQ(stats.calls, kThreads * kCallsPerThread * 2);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST(LoggerConcurrency, AnalyzerVerdictsMatchSingleThreadedBaseline) {
  // Same total work single- vs multi-threaded.  Virtual-time interleaving
  // inflates *observed* multi-threaded durations nondeterministically, so
  // the robust invariants are: identical instance counts and identical
  // short-call verdicts on the ocall site (its recorded window excludes the
  // transitions and stays far below every Eq.1 threshold).
  auto analyze = [](std::size_t threads) {
    Urts urts;
    tracedb::TraceDatabase db;
    perf::Logger logger(db);
    logger.attach(urts);
    const EnclaveId eid = build_enclave(urts);
    run_workload(urts, eid, threads, kThreads * kCallsPerThread / threads);
    logger.detach();
    return perf::Analyzer(db).analyze();
  };
  const perf::AnalysisReport st = analyze(1);
  const perf::AnalysisReport mt = analyze(kThreads);

  ASSERT_EQ(st.overviews.size(), 1u);
  ASSERT_EQ(mt.overviews.size(), 1u);
  EXPECT_EQ(mt.overviews[0].ecall_instances, st.overviews[0].ecall_instances);
  EXPECT_EQ(mt.overviews[0].ocall_instances, st.overviews[0].ocall_instances);
  EXPECT_EQ(mt.overviews[0].ecalls_called, st.overviews[0].ecalls_called);
  EXPECT_EQ(mt.overviews[0].ocalls_called, st.overviews[0].ocalls_called);

  auto ocall_short_call_verdict = [](const perf::AnalysisReport& report) {
    for (const auto& f : report.findings) {
      if (f.kind == perf::FindingKind::kShortCalls &&
          f.subject.type == CallType::kOcall) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(ocall_short_call_verdict(st));
  EXPECT_EQ(ocall_short_call_verdict(mt), ocall_short_call_verdict(st));
}

TEST(LoggerConcurrency, MutexModeStillRecordsEverything) {
  Urts urts;
  tracedb::TraceDatabase db;
  perf::LoggerConfig config;
  config.sharded = false;
  perf::Logger logger(db, config);
  logger.attach(urts);
  const EnclaveId eid = build_enclave(urts);
  run_workload(urts, eid, kThreads, kCallsPerThread);
  logger.detach();

  EXPECT_EQ(db.calls().size(), kThreads * kCallsPerThread * 2);
  EXPECT_EQ(db.shard_count(), 0u);
}

TEST(LoggerConcurrency, SingleThreadedTraceBytesIdenticalShardedVsMutex) {
  // The acceptance bar of the refactor: for a single-threaded workload the
  // serialized trace must be bit-identical between the sharded path and the
  // legacy mutex path.
  auto record = [](bool sharded, const std::string& path) {
    Urts urts;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.sharded = sharded;
    perf::Logger logger(db, config);
    logger.attach(urts);
    const EnclaveId eid = build_enclave(urts);
    run_workload(urts, eid, 1, kCallsPerThread);
    logger.detach();
    db.save(path);
  };
  const std::string sharded_path = testing::TempDir() + "/st_sharded.bin";
  const std::string mutex_path = testing::TempDir() + "/st_mutex.bin";
  record(true, sharded_path);
  record(false, mutex_path);

  auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };
  const std::string a = slurp(sharded_path);
  const std::string b = slurp(mutex_path);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::remove(sharded_path.c_str());
  std::remove(mutex_path.c_str());
}

}  // namespace
