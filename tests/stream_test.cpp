// The streaming subscription layer: Vyukov ring semantics (FIFO, bounded,
// drop-on-full with accounting), hub slot management, and the end-to-end
// logger integration (live events while recording is in flight).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "perf/logger.hpp"
#include "perf/stream.hpp"
#include "sgxsim/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "tests/sim_helpers.hpp"

namespace {

using perf::StreamEvent;
using perf::StreamHub;
using perf::StreamSubscription;

StreamEvent call_event(std::uint64_t start, std::uint64_t end) {
  StreamEvent ev;
  ev.kind = StreamEvent::Kind::kCall;
  ev.start_ns = start;
  ev.end_ns = end;
  return ev;
}

TEST(StreamSubscription, DeliversInFifoOrder) {
  StreamHub hub;
  auto sub = hub.subscribe("fifo", 64);
  ASSERT_NE(sub, nullptr);
  for (std::uint64_t i = 0; i < 10; ++i) hub.publish(call_event(i, i + 1));

  std::vector<StreamEvent> out;
  EXPECT_EQ(sub->poll(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(out[i].start_ns, i);
  EXPECT_EQ(sub->delivered(), 10u);
  EXPECT_EQ(sub->dropped(), 0u);
}

TEST(StreamSubscription, FullRingDropsAndCounts) {
  StreamHub hub;
  auto sub = hub.subscribe("tiny", 8);  // minimum capacity
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->capacity(), 8u);
  const std::uint64_t before =
      telemetry::metrics().counter("logger.stream.tiny.dropped", "events").value();

  for (std::uint64_t i = 0; i < 20; ++i) hub.publish(call_event(i, i));
  EXPECT_EQ(sub->dropped(), 12u);
  EXPECT_EQ(hub.total_dropped(), 12u);
  // Drops are mirrored into the metrics registry, per subscriber name.
  EXPECT_EQ(telemetry::metrics().counter("logger.stream.tiny.dropped", "events").value(),
            before + 12);

  // The 8 oldest events are still there, in order.
  std::vector<StreamEvent> out;
  EXPECT_EQ(sub->poll(out), 8u);
  EXPECT_EQ(out.front().start_ns, 0u);
  EXPECT_EQ(out.back().start_ns, 7u);

  // Space freed: publishing works again.
  hub.publish(call_event(99, 99));
  out.clear();
  ASSERT_EQ(sub->poll(out), 1u);
  EXPECT_EQ(out[0].start_ns, 99u);
}

TEST(StreamSubscription, PollRespectsMaxBatch) {
  StreamHub hub;
  auto sub = hub.subscribe("batch", 64);
  ASSERT_NE(sub, nullptr);
  for (std::uint64_t i = 0; i < 50; ++i) hub.publish(call_event(i, i));
  std::vector<StreamEvent> out;
  EXPECT_EQ(sub->poll(out, 16), 16u);
  EXPECT_EQ(sub->poll(out, 16), 16u);
  EXPECT_EQ(sub->poll(out, 100), 18u);
  EXPECT_EQ(out.size(), 50u);
}

TEST(StreamSubscription, CloseStopsDeliveryButDrainsBacklog) {
  StreamHub hub;
  auto sub = hub.subscribe("closer", 64);
  ASSERT_NE(sub, nullptr);
  hub.publish(call_event(1, 2));
  sub->close();
  EXPECT_FALSE(sub->active());
  EXPECT_FALSE(hub.has_subscribers());
  hub.publish(call_event(3, 4));  // skipped: nobody active

  std::vector<StreamEvent> out;
  EXPECT_EQ(sub->poll(out), 1u);  // the pre-close event survives
  EXPECT_EQ(out[0].start_ns, 1u);
  sub->close();  // idempotent
  EXPECT_FALSE(hub.has_subscribers());
}

TEST(StreamHub, SlotExhaustionAndReuse) {
  StreamHub hub;
  std::vector<std::shared_ptr<StreamSubscription>> subs;
  for (std::size_t i = 0; i < StreamHub::kMaxSubscribers; ++i) {
    auto s = hub.subscribe("s", 8);
    ASSERT_NE(s, nullptr) << "slot " << i;
    subs.push_back(std::move(s));
  }
  EXPECT_EQ(hub.subscribe("overflow", 8), nullptr);

  // Closing one frees its slot for a newcomer; the old object stays valid.
  subs[3]->close();
  auto replacement = hub.subscribe("replacement", 8);
  ASSERT_NE(replacement, nullptr);
  EXPECT_TRUE(replacement->active());
  EXPECT_FALSE(subs[3]->active());
}

TEST(StreamHub, PublishWithNoSubscribersIsANoOp) {
  StreamHub hub;
  EXPECT_FALSE(hub.has_subscribers());
  hub.publish(call_event(1, 2));  // must not crash or leak
  EXPECT_EQ(hub.total_dropped(), 0u);
}

// Concurrency: N producers publish while one consumer drains and subscribers
// come and go.  Every event must be either delivered or counted as dropped —
// never lost, never duplicated (checked via per-producer sequence sets).
TEST(StreamConcurrency, DeliveredPlusDroppedEqualsPublished) {
  StreamHub hub;
  auto sub = hub.subscribe("load", 1 << 10);
  ASSERT_NE(sub, nullptr);

  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;
  std::atomic<bool> stop{false};
  std::vector<StreamEvent> seen;
  seen.reserve(kProducers * kPerProducer);

  std::thread consumer([&] {
    std::vector<StreamEvent> batch;
    while (!stop.load(std::memory_order_acquire)) {
      batch.clear();
      if (sub->poll(batch) == 0) std::this_thread::yield();
      seen.insert(seen.end(), batch.begin(), batch.end());
    }
    batch.clear();
    while (sub->poll(batch) > 0) {
      seen.insert(seen.end(), batch.begin(), batch.end());
      batch.clear();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&hub, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        StreamEvent ev = call_event(i, i + 1);
        ev.thread_id = static_cast<std::uint32_t>(p);
        hub.publish(ev);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(seen.size() + sub->dropped(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  // No duplicates: each (producer, seq) pair at most once.
  std::set<std::pair<std::uint32_t, std::uint64_t>> unique;
  for (const auto& ev : seen) unique.emplace(ev.thread_id, ev.start_ns);
  EXPECT_EQ(unique.size(), seen.size());
}

// End-to-end: a subscriber on a recording logger sees the workload's calls,
// AEXs included, while the logger is still attached.
TEST(StreamLogger, SubscriberSeesLiveEvents) {
  using namespace sgxsim;
  Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  auto sub = logger.subscribe("live", 1 << 10);
  ASSERT_NE(sub, nullptr);

  constexpr const char* kEdl = R"(
    enclave {
      trusted { public int ecall_ping(void); };
      untrusted { void ocall_pong(void); };
    };
  )";
  const EnclaveId eid = test_helpers::make_enclave(urts, kEdl);
  urts.enclave(eid).register_ecall("ecall_ping", [](TrustedContext& ctx, void*) {
    ctx.work(100);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&test_helpers::empty_ocall});
  for (int i = 0; i < 25; ++i) urts.sgx_ecall(eid, 0, &table, nullptr);

  // Still attached: the stream already carries everything.
  std::vector<StreamEvent> out;
  while (sub->poll(out) > 0) {
  }
  std::size_t ecalls = 0;
  std::size_t ocalls = 0;
  for (const auto& ev : out) {
    if (ev.kind != StreamEvent::Kind::kCall) continue;
    ASSERT_GE(ev.end_ns, ev.start_ns);
    if (ev.call_type == tracedb::CallType::kEcall) {
      ++ecalls;
    } else {
      ++ocalls;
    }
  }
  EXPECT_EQ(ecalls, 25u);
  EXPECT_EQ(ocalls, 25u);
  EXPECT_EQ(sub->dropped(), 0u);

  logger.detach();
  EXPECT_EQ(db.stream_dropped(), 0u);
  EXPECT_EQ(db.calls().size(), 50u);
}

}  // namespace
