// Glamdring workload tests: signature equivalence across variants, the
// SISC ecall storm, ocall patterns, analyser detection on the real trace and
// the optimisation speed-up.
#include <gtest/gtest.h>

#include "glamdring/glamdring.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/workingset.hpp"
#include "tracedb/query.hpp"

namespace {

using namespace glamdring;

TEST(Glamdring, AllVariantsProduceTheSameSignature) {
  sgxsim::Urts urts;
  SigningBenchmark native(urts, Variant::kNative);
  SigningBenchmark partitioned(urts, Variant::kPartitioned);
  SigningBenchmark optimized(urts, Variant::kOptimized);

  const auto s_native = native.sign(3);
  const auto s_part = partitioned.sign(3);
  const auto s_opt = optimized.sign(3);
  EXPECT_EQ(s_native, s_part);
  EXPECT_EQ(s_native, s_opt);

  // And all match the plain library signer (the partitioning must not
  // change the math).
  const auto cert = bignum::make_test_certificate(1, 3);
  EXPECT_EQ(s_native, native.signer().sign(cert));
}

TEST(Glamdring, PartitionedIssuesSubPartWordsStorm) {
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  {
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    (void)partitioned.sign(0);
  }
  logger.detach();

  std::size_t sub_calls = 0;
  std::size_t total_ecalls = 0;
  for (const auto& c : trace.calls()) {
    if (c.type != tracedb::CallType::kEcall) continue;
    ++total_ecalls;
    if (trace.name_of(c.enclave_id, c.type, c.call_id) == "ecall_bn_sub_part_words") {
      ++sub_calls;
    }
  }
  // §5.2.3: bn_sub_part_words accounts for ~99.5% of all ecalls.
  EXPECT_GT(sub_calls, 1000u);
  EXPECT_GT(static_cast<double>(sub_calls) / static_cast<double>(total_ecalls), 0.99);
}

TEST(Glamdring, OptimizedIssuesFarFewerEcalls) {
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  std::size_t part_ecalls = 0;
  std::size_t opt_ecalls = 0;
  {
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    (void)partitioned.sign(0);
    logger.flush();
    part_ecalls = trace.calls().size();
  }
  trace.clear();
  {
    SigningBenchmark optimized(urts, Variant::kOptimized);
    (void)optimized.sign(0);
    logger.flush();
    opt_ecalls = trace.calls().size();
  }
  logger.detach();
  EXPECT_LT(opt_ecalls * 5, part_ecalls);
}

TEST(Glamdring, ShortBnOcallsAppear) {
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  {
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    (void)partitioned.sign(0);
  }
  logger.detach();

  std::size_t bn_ocalls = 0;
  for (const auto& c : trace.calls()) {
    if (c.type != tracedb::CallType::kOcall) continue;
    const auto name = trace.name_of(c.enclave_id, c.type, c.call_id);
    if (name == "ocall_BN_new" || name == "ocall_BN_free") {
      ++bn_ocalls;
      EXPECT_LT(c.duration(), 10'000u);  // "<10us", §5.2.3
    }
  }
  EXPECT_EQ(bn_ocalls, 4u);  // 2 allocs at init, 2 frees at finish
}

TEST(Glamdring, AnalyzerFlagsSiscOnSubPartWords) {
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  {
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    (void)partitioned.sign(0);
  }
  logger.detach();

  perf::Analyzer analyzer(trace);
  const auto report = analyzer.analyze();
  bool batch_flagged = false;
  bool short_flagged = false;
  for (const auto& f : report.findings) {
    if (f.subject_name != "ecall_bn_sub_part_words") continue;
    batch_flagged |= f.kind == perf::FindingKind::kBatchable;
    short_flagged |= f.kind == perf::FindingKind::kShortCalls;
  }
  EXPECT_TRUE(batch_flagged) << "Eq.3 must flag the paired ecalls as batchable (SISC)";
  EXPECT_TRUE(short_flagged) << "Eq.1 must flag the call as shorter than the transition";
}

TEST(Glamdring, OptimizedIsFasterPartitionedIsSlowerThanNative) {
  sgxsim::Urts urts;
  const auto time_one_sign = [&](Variant v) {
    SigningBenchmark bench(urts, v);
    const auto t0 = urts.clock().now();
    (void)bench.sign(0);
    return urts.clock().now() - t0;
  };
  const auto native = time_one_sign(Variant::kNative);
  const auto partitioned = time_one_sign(Variant::kPartitioned);
  const auto optimized = time_one_sign(Variant::kOptimized);
  EXPECT_LT(native, optimized);
  EXPECT_LT(optimized, partitioned);
  // The headline result: moving bn_mul_recursive inside wins ~2x.
  EXPECT_GT(static_cast<double>(partitioned) / static_cast<double>(optimized), 1.5);
}

TEST(Glamdring, SpeedupGrowsWithPatchLevel) {
  const auto ratio_at = [](sgxsim::PatchLevel lvl) {
    sgxsim::Urts urts(sgxsim::CostModel::preset(lvl));
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    const auto t0 = urts.clock().now();
    (void)partitioned.sign(0);
    const auto part = urts.clock().now() - t0;
    SigningBenchmark optimized(urts, Variant::kOptimized);
    const auto t1 = urts.clock().now();
    (void)optimized.sign(0);
    const auto opt = urts.clock().now() - t1;
    return static_cast<double>(part) / static_cast<double>(opt);
  };
  const double base = ratio_at(sgxsim::PatchLevel::kUnpatched);
  const double spectre = ratio_at(sgxsim::PatchLevel::kSpectre);
  const double l1tf = ratio_at(sgxsim::PatchLevel::kSpectreL1tf);
  // §5.2.3: 2.16x -> 2.66x -> 2.87x as transitions get more expensive.
  EXPECT_GT(spectre, base);
  EXPECT_GT(l1tf, spectre);
}

TEST(Glamdring, RunForRespectsVirtualDeadline) {
  sgxsim::Urts urts;
  SigningBenchmark native(urts, Variant::kNative);
  const auto result = native.run_for(500'000'000);  // 0.5 virtual seconds
  EXPECT_GT(result.signs, 10u);
  EXPECT_GE(result.elapsed_ns, 500'000'000u);
  EXPECT_GT(result.signs_per_s, 0.0);
}

TEST(Glamdring, WorkingSetIsSmall) {
  sgxsim::Urts urts;
  SigningBenchmark partitioned(urts, Variant::kPartitioned);
  perf::WorkingSetEstimator ws(urts.enclave(partitioned.enclave_id()));
  ws.start();
  (void)partitioned.sign(0);
  const auto startup = ws.checkpoint();
  (void)partitioned.sign(1);
  const auto steady = ws.accessed_pages();
  ws.stop();
  // §5.2.3 measured 61 pages after start-up, 32 during the benchmark: small,
  // and steady below start-up.
  EXPECT_LT(startup.size(), 100u);
  EXPECT_LE(steady.size(), startup.size());
}

}  // namespace
