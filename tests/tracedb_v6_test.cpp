// Binary format v6: the order-rules table and the five orderliness alert
// kinds round-trip byte-identically, every older format (v2..v5) still loads
// with the v6 table absent-but-valid, and corrupt v6 payloads (bad rule kind,
// orderliness alert kinds smuggled into a pre-v6 file, implausible row
// counts, truncation) are rejected instead of being half-loaded.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"

namespace {

using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::OrderRuleRecord;
using tracedb::TraceDatabase;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Little-endian byte assembler mirroring the serializer's Writer, but into
/// memory — so fixtures can be truncated or corrupted at exact offsets.
struct Buf {
  std::string bytes;

  void raw(const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
};

/// Appends the six empty v2 tables (calls..call_names).
void empty_v2_tables(Buf& b) {
  for (int t = 0; t < 6; ++t) b.u64(0);
}

/// Appends the empty v3 appendix (dropped count + metric tables).
void empty_v3_tables(Buf& b) {
  b.u64(0);  // dropped_events
  b.u64(0);  // metric_series
  b.u64(0);  // metric_samples
}

/// Appends the empty v4 appendix (stream drops + HDR geometry + latencies).
void empty_v4_tables(Buf& b) {
  b.u64(0);  // stream_dropped
  b.u8(static_cast<std::uint8_t>(telemetry::hdr::kSubBits));
  b.u8(static_cast<std::uint8_t>(telemetry::hdr::kMaxExponent));
  b.u64(0);  // latencies
}

/// Appends the empty v5 time-series tables plus one alert of `alert_kind`.
/// Alert row = kind(1) + enclave(8) + type(1) + call_id(4) + onset(8) +
/// resolved(8) + window(4) + detail(8) = 42 bytes, last row of the table.
void v5_tables_with_alert(Buf& b, std::uint8_t alert_kind) {
  b.u64(0);           // window_period
  b.u64(0);           // windows
  b.u64(0);           // window_sites
  b.u64(1);           // alerts
  b.u8(alert_kind);   //   kind
  b.u64(1);           //   enclave_id
  b.u8(0);            //   type = ecall
  b.u32(2);           //   call_id
  b.u64(123'456);     //   onset_ns
  b.u64(0);           //   resolved_ns (orderliness alerts never auto-resolve)
  b.u32(0);           //   window_index
  b.u64((1ull << 32) | 3);  // detail: first thread 1, count 3
}

/// One rule row: enclave(8) + kind(1) + a(4) + b(4) = 17 bytes.
void rule_row(Buf& b, std::uint64_t enclave, std::uint8_t kind, std::uint32_t a,
              std::uint32_t b_id) {
  b.u64(enclave);
  b.u8(kind);
  b.u32(a);
  b.u32(b_id);
}

/// A well-formed v6 fixture: one orderliness alert plus a two-rule model.
std::string v6_fixture_bytes() {
  Buf b;
  b.raw("SGXPTRC6", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  v5_tables_with_alert(b, 10);  // kReentrantEcall: legal in a v6 file
  b.u64(2);                     // order_rules
  rule_row(b, 1, 0, 0, 0);      //   init 0
  rule_row(b, 1, 3, 0, 1);      //   edge 0 -> 1
  return b.bytes;
}

TEST(FormatV6, RoundTripsByteIdentically) {
  TraceDatabase original;
  CallRecord c;
  c.type = CallType::kEcall;
  c.thread_id = 1;
  c.enclave_id = 1;
  c.call_id = 0;
  c.start_ns = 10;
  c.end_ns = 4215;
  original.add_call(c);

  // One rule of every kind, spanning two enclaves.
  using Rule = OrderRuleRecord::Rule;
  std::vector<OrderRuleRecord> rules;
  rules.push_back({1, Rule::kInit, 0, 0});
  rules.push_back({1, Rule::kEntry, 0, 0});
  rules.push_back({1, Rule::kKnownEcall, 2, 0});
  rules.push_back({1, Rule::kEdge, 0, 2});
  rules.push_back({1, Rule::kReentrantOk, 3, 0});
  rules.push_back({2, Rule::kEntry, 0, 0});
  original.set_order_rules(rules);

  // One alert per v6 kind: every new kind byte must survive the round trip.
  for (const auto kind :
       {AlertKind::kOutOfOrderEcall, AlertKind::kReentrantEcall, AlertKind::kUseBeforeInit,
        AlertKind::kUseAfterDestroy, AlertKind::kPhaseViolation}) {
    AlertRecord a;
    a.kind = kind;
    a.enclave_id = 1;
    a.type = CallType::kEcall;
    a.call_id = static_cast<tracedb::CallId>(kind);
    a.onset_ns = 1'000 + static_cast<std::uint64_t>(kind);
    a.detail = (7ull << 32) | 2;
    original.add_alert(a);
  }

  const std::string path_a = temp_path("tracedb_v6_a.bin");
  const std::string path_b = temp_path("tracedb_v6_b.bin");
  original.save(path_a);

  const TraceDatabase reloaded = TraceDatabase::load(path_a);
  ASSERT_EQ(reloaded.order_rules().size(), 6u);
  EXPECT_EQ(reloaded.order_rules()[0].rule, Rule::kInit);
  EXPECT_EQ(reloaded.order_rules()[3].rule, Rule::kEdge);
  EXPECT_EQ(reloaded.order_rules()[3].a, 0u);
  EXPECT_EQ(reloaded.order_rules()[3].b, 2u);
  EXPECT_EQ(reloaded.order_rules()[5].enclave_id, 2u);
  ASSERT_EQ(reloaded.alerts().size(), 5u);
  EXPECT_EQ(reloaded.alerts()[0].kind, AlertKind::kOutOfOrderEcall);
  EXPECT_EQ(reloaded.alerts()[4].kind, AlertKind::kPhaseViolation);
  EXPECT_EQ(reloaded.alerts()[1].detail, (7ull << 32) | 2);
  EXPECT_EQ(reloaded.alerts()[2].resolved_ns, 0u);

  reloaded.save(path_b);
  const std::string bytes_a = slurp(path_a);
  const std::string bytes_b = slurp(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(bytes_a.substr(0, 8), "SGXPTRC6");
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

// --- older formats stay loadable -------------------------------------------

TEST(FormatV6, LoadsOlderFixturesWithEmptyOrderRules) {
  for (const char* magic : {"SGXPTRC2", "SGXPTRC3", "SGXPTRC4", "SGXPTRC5"}) {
    Buf b;
    b.raw(magic, 8);
    empty_v2_tables(b);
    if (magic[7] >= '3') empty_v3_tables(b);
    if (magic[7] >= '4') empty_v4_tables(b);
    if (magic[7] >= '5') v5_tables_with_alert(b, 0);  // kShortCalls: v5-legal
    const std::string path = temp_path("tracedb_v6_from_older.bin");
    spill(path, b.bytes);
    const TraceDatabase db = TraceDatabase::load(path);
    EXPECT_TRUE(db.order_rules().empty()) << magic;
    EXPECT_EQ(db.alerts().size(), magic[7] >= '5' ? 1u : 0u) << magic;
    std::filesystem::remove(path);
  }
}

// --- rejection paths --------------------------------------------------------

TEST(FormatV6, WellFormedFixtureLoads) {
  const std::string path = temp_path("tracedb_v6_fixture.bin");
  spill(path, v6_fixture_bytes());
  const TraceDatabase db = TraceDatabase::load(path);
  ASSERT_EQ(db.order_rules().size(), 2u);
  EXPECT_EQ(db.order_rules()[1].rule, OrderRuleRecord::Rule::kEdge);
  ASSERT_EQ(db.alerts().size(), 1u);
  EXPECT_EQ(db.alerts()[0].kind, AlertKind::kReentrantEcall);
  std::filesystem::remove(path);
}

TEST(FormatV6, RejectsUnknownRuleKindByte) {
  std::string bytes = v6_fixture_bytes();
  // The rules table is last; each row is 17 bytes with the kind byte at
  // offset 8 within the row, so the second row's kind byte sits 9 bytes
  // before EOF.  Overwrite it with kOrderRuleKindCount.
  bytes[bytes.size() - 9] = static_cast<char>(5);
  const std::string path = temp_path("tracedb_v6_bad_rule_kind.bin");
  spill(path, bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV6, RejectsOrderlinessAlertKindsInPreV6Files) {
  // The orderliness kinds (9..13) postdate v5: a v5-magic file containing
  // one is corrupt, not forward-compatible.
  for (const std::uint8_t kind : {std::uint8_t{9}, std::uint8_t{13}}) {
    Buf b;
    b.raw("SGXPTRC5", 8);
    empty_v2_tables(b);
    empty_v3_tables(b);
    empty_v4_tables(b);
    v5_tables_with_alert(b, kind);
    const std::string path = temp_path("tracedb_v6_smuggled_kind.bin");
    spill(path, b.bytes);
    EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error)
        << "alert kind " << int(kind) << " must be rejected under a v5 magic";
    std::filesystem::remove(path);
  }
}

TEST(FormatV6, AcceptsHighestAlertKindUnderV6Magic) {
  Buf b;
  b.raw("SGXPTRC6", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  v5_tables_with_alert(b, 13);  // kPhaseViolation, the current ceiling
  b.u64(0);                     // order_rules
  const std::string path = temp_path("tracedb_v6_top_kind.bin");
  spill(path, b.bytes);
  const TraceDatabase db = TraceDatabase::load(path);
  ASSERT_EQ(db.alerts().size(), 1u);
  EXPECT_EQ(db.alerts()[0].kind, AlertKind::kPhaseViolation);
  std::filesystem::remove(path);

  // ...and one past the ceiling still throws, even under the v6 magic.
  Buf bad;
  bad.raw("SGXPTRC6", 8);
  empty_v2_tables(bad);
  empty_v3_tables(bad);
  empty_v4_tables(bad);
  v5_tables_with_alert(bad, 14);  // kAlertKindCount
  bad.u64(0);
  const std::string bad_path = temp_path("tracedb_v6_past_kind.bin");
  spill(bad_path, bad.bytes);
  EXPECT_THROW((void)TraceDatabase::load(bad_path), std::runtime_error);
  std::filesystem::remove(bad_path);
}

TEST(FormatV6, RejectsImplausibleRuleCounts) {
  Buf b;
  b.raw("SGXPTRC6", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  v5_tables_with_alert(b, 0);
  b.u64(1ull << 33);  // rule count > kMaxV5Rows: must fail fast, before any
                      // allocation is attempted
  const std::string path = temp_path("tracedb_v6_huge_count.bin");
  spill(path, b.bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV6, RejectsTruncatedFiles) {
  const std::string full = v6_fixture_bytes();
  // Cut at several depths: mid-rule-row, right before the rules table, and
  // mid-count — every prefix must throw, never half-load.
  for (const std::size_t keep :
       {full.size() - 4, full.size() - 17, full.size() - 38, full.size() - 40}) {
    const std::string path = temp_path("tracedb_v6_truncated.bin");
    spill(path, full.substr(0, keep));
    EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error)
        << "prefix of " << keep << " bytes should be rejected";
    std::filesystem::remove(path);
  }
}

}  // namespace
