// SGXSTORE round-trip, laziness, corruption and compaction tests.
//
// The store is a re-sectioning of the flat v6 payload, so losslessness is
// asserted the same way tracedb_v6_test.cpp asserts save/load stability:
// byte-compare the flat serialisations on either side of a pack -> unpack
// trip.  Corruption coverage mirrors that file's style too — damage one
// exact spot on disk, expect one distinct error, and verify no partially
// populated database escapes.  The soak-corpus tests additionally pin the
// headline lazy-loading claim: a summary open of an events-dominated store
// reads less than 10% of its bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sgxsim/runtime.hpp"
#include "stress/harness.hpp"
#include "tracedb/database.hpp"
#include "tracedb/open.hpp"
#include "tracedb/store/format.hpp"
#include "tracedb/store/store.hpp"

namespace {

namespace fs = std::filesystem;
using tracedb::AexRecord;
using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::EnclaveRecord;
using tracedb::LatencyRecord;
using tracedb::OrderRuleRecord;
using tracedb::PagingRecord;
using tracedb::SyncRecord;
using tracedb::TraceDatabase;
using tracedb::WindowRecord;
using tracedb::WindowSiteRecord;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Flat serialisation of `db` — the byte-identity yardstick for round trips.
std::string flat_bytes(const TraceDatabase& db, const std::string& name) {
  const std::string path = temp_path(name);
  db.save(path);
  std::string bytes = slurp(path);
  fs::remove(path);
  return bytes;
}

/// A database exercising every table the store persists: nested calls whose
/// parent references cross chunk boundaries, aux events interleaved with the
/// calls, and a full summary (latencies, windows, alerts, order rules).
TraceDatabase make_fixture_db() {
  TraceDatabase db;
  db.add_enclave({1, "worker", 5, 0, 4, 1 << 20});
  db.add_call_name({1, CallType::kEcall, 7, "process"});
  db.add_call_name({1, CallType::kOcall, 3, "write_log"});

  // Ten top-level ecalls, each hosting one ocall: with chunk_calls = 3 the
  // pack splits these 20 rows across many chunks, and every ocall's parent
  // points at an earlier row — the rebase arithmetic gets real work.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const tracedb::Nanoseconds base = 1'000 * (i + 1);
    CallRecord ecall;
    ecall.type = CallType::kEcall;
    ecall.thread_id = static_cast<tracedb::ThreadId>(i % 3);
    ecall.enclave_id = 1;
    ecall.call_id = 7;
    ecall.start_ns = base;
    ecall.end_ns = base + 900;
    ecall.aex_count = i % 2;
    const tracedb::CallIndex parent = db.add_call(ecall);
    CallRecord ocall;
    ocall.type = CallType::kOcall;
    ocall.thread_id = ecall.thread_id;
    ocall.enclave_id = 1;
    ocall.call_id = 3;
    ocall.parent = parent;
    ocall.start_ns = base + 100;
    ocall.end_ns = base + 200;
    db.add_call(ocall);
    db.add_aex({ecall.thread_id, 1, base + 50, parent, tracedb::AexCause::kInterrupt});
    db.add_paging({1, i, tracedb::PageDirection::kPageOut, base + 60});
    db.add_sync({tracedb::SyncKind::kSleep, ecall.thread_id, 0, 1, base + 70});
  }

  const auto series = db.add_metric_series(tracedb::MetricKind::kGauge, "epc_used", "pages");
  db.add_metric_sample({series, 1'500, 12.5});
  db.add_metric_sample({series, 2'500, 14.0});

  LatencyRecord lat;
  lat.enclave_id = 1;
  lat.type = CallType::kEcall;
  lat.call_id = 7;
  lat.count = 10;
  lat.sum_ns = 9'000;
  lat.buckets = {{40, 4}, {41, 6}};
  db.set_latency(lat);

  db.set_window_period(1'000'000);
  for (std::uint32_t w = 0; w < 2; ++w) {
    WindowRecord win;
    win.window_index = w;
    win.start_ns = w * 1'000'000;
    win.end_ns = (w + 1) * 1'000'000;
    win.calls = 10;
    win.aexs = 5;
    win.active_alerts = w;
    db.add_window(win);
    WindowSiteRecord site;
    site.window_index = w;
    site.enclave_id = 1;
    site.type = CallType::kEcall;
    site.call_id = 7;
    site.calls = 10;
    site.p50_ns = 900;
    site.p99_ns = 950;
    db.add_window_site(site);
  }
  AlertRecord alert;
  alert.kind = AlertKind::kShortCalls;
  alert.enclave_id = 1;
  alert.type = CallType::kEcall;
  alert.call_id = 7;
  alert.onset_ns = 1'200;
  alert.resolved_ns = 2'400;
  alert.window_index = 1;
  alert.detail = 1'500;
  db.add_alert(alert);

  db.add_order_rule({1, OrderRuleRecord::Rule::kInit, 7, 0});
  db.add_order_rule({1, OrderRuleRecord::Rule::kEdge, 7, 7});
  db.set_stream_dropped(3);
  return db;
}

/// RAII-ish store directory path: removed on construction and destruction.
struct StoreDir {
  explicit StoreDir(const std::string& name) : path(temp_path(name)) { fs::remove_all(path); }
  ~StoreDir() { fs::remove_all(path); }
  const std::string path;
};

std::string expect_store_error(const std::string& dir, unsigned mask) {
  try {
    tracedb::store::StoreReader reader(dir);
    (void)reader.load(mask);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a store error from " << dir;
  return {};
}

// --- round trips -------------------------------------------------------------

TEST(TraceStore, PackUnpackRoundTripsByteIdentically) {
  const TraceDatabase db = make_fixture_db();
  const std::string before = flat_bytes(db, "store_rt_before.bin");

  StoreDir store("store_rt.store");
  tracedb::store::pack(db, store.path, {.chunk_calls = 3});  // force 7 chunks
  const TraceDatabase back = tracedb::store::unpack(store.path);
  EXPECT_EQ(flat_bytes(back, "store_rt_after.bin"), before);

  // The directory really is multi-file with every section present.
  for (const char* f : {"store.idx", "meta.db", "profile.db", "alerts.db", "events.db"}) {
    EXPECT_TRUE(fs::exists(fs::path(store.path) / f)) << f;
  }
}

TEST(TraceStore, EmptyDatabaseRoundTrips) {
  const TraceDatabase db;
  const std::string before = flat_bytes(db, "store_empty_before.bin");
  StoreDir store("store_empty.store");
  tracedb::store::pack(db, store.path);
  const TraceDatabase back = tracedb::store::unpack(store.path);
  EXPECT_EQ(flat_bytes(back, "store_empty_after.bin"), before);
}

// --- lazy loading ------------------------------------------------------------

/// A deterministic stress corpus at fleet-realistic shape: 5 ms windows keep
/// the profile section small while the event log dominates the store.
TraceDatabase make_soak_corpus() {
  const auto stressor = stress::make_stressor("ocall-storm");
  EXPECT_NE(stressor, nullptr);
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched),
                    sgxsim::Driver::kDefaultEpcPages);
  TraceDatabase db;
  stress::SoakConfig config;
  config.stress.threads = 2;
  config.stress.duration_ns = 20'000'000;
  config.stress.seed = 7;
  config.window_ns = 5'000'000;
  (void)stress::run_soak(*stressor, urts, db, config);
  EXPECT_GT(db.calls().size(), 500u);
  return db;
}

TEST(TraceStore, SoakCorpusRoundTripsAndSummaryReadsUnderTenPercent) {
  const TraceDatabase db = make_soak_corpus();
  const std::string before = flat_bytes(db, "store_soak_before.bin");

  StoreDir store("store_soak.store");
  tracedb::store::pack(db, store.path);
  const TraceDatabase back = tracedb::store::unpack(store.path);
  EXPECT_EQ(flat_bytes(back, "store_soak_after.bin"), before);

  // The headline acceptance pin: `sgxperf stats` on a packed store must read
  // less than 10% of the store's bytes.  This is the stats open path itself
  // (open_trace with the summary mask), not a reader micro-benchmark.
  tracedb::OpenStats stats;
  const TraceDatabase summary =
      tracedb::open_trace(store.path, tracedb::store::kSummarySections, &stats);
  EXPECT_TRUE(stats.store);
  EXPECT_GT(stats.total_bytes, 0u);
  EXPECT_LT(stats.bytes_read * 10, stats.total_bytes)
      << stats.bytes_read << " of " << stats.total_bytes << " bytes";
  // The event tables stayed on disk; the summary tables arrived whole.
  EXPECT_TRUE(summary.calls().empty());
  EXPECT_EQ(summary.latencies().size(), db.latencies().size());
  EXPECT_EQ(summary.windows().size(), db.windows().size());
  EXPECT_EQ(std::count(stats.sections_loaded.begin(), stats.sections_loaded.end(),
                       std::string("events")),
            0);
}

TEST(TraceStore, LoadEventsOverlappingSelectsOnlyMatchingChunks) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_range.store");
  tracedb::store::pack(db, store.path, {.chunk_calls = 2});  // 10 chunks

  tracedb::store::StoreReader reader(store.path);
  TraceDatabase window = reader.load(tracedb::store::kSectionMeta);
  // Calls start at 1000*(i+1); with chunk_calls = 2 each (ecall, ocall)
  // pair is its own chunk spanning [base, base+900].  Selection is
  // chunk-granular: [3000, 5000] touches exactly the chunks for bases
  // 3000/4000/5000 — six calls of the twenty.
  reader.load_events_overlapping(window, 3'000, 5'000);
  ASSERT_EQ(window.calls().size(), 6u);
  EXPECT_EQ(window.calls().front().start_ns, 3'000u);
  EXPECT_EQ(window.calls().back().start_ns, 5'100u);  // the ocall of base 5000
  // Every call that truly intersects the range is present.
  for (const auto& call : db.calls()) {
    if (call.end_ns < 3'000 || call.start_ns > 5'000) continue;
    const auto& loaded = window.calls();
    EXPECT_NE(std::find_if(loaded.begin(), loaded.end(),
                           [&](const CallRecord& c) {
                             return c.start_ns == call.start_ns && c.call_id == call.call_id;
                           }),
              loaded.end());
  }
  // Partial event reads are cheaper than the whole store.
  EXPECT_LT(reader.io().bytes_read, reader.io().total_bytes);
}

// --- corruption --------------------------------------------------------------

TEST(TraceStore, SectionCrcMismatchIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_crc.store");
  tracedb::store::pack(db, store.path);

  const std::string profile_path = store.path + "/profile.db";
  std::string bytes = slurp(profile_path);
  ASSERT_GT(bytes.size(), 10u);
  bytes[10] ^= 0x01;  // damage the payload, leave the index intact
  spill(profile_path, bytes);

  const std::string what = expect_store_error(store.path, tracedb::store::kSummarySections);
  EXPECT_NE(what.find("section checksum mismatch"), std::string::npos) << what;
  // The undamaged sections still load on their own — per-section checksums
  // isolate the blast radius.
  tracedb::store::StoreReader reader(store.path);
  const TraceDatabase meta_only = reader.load(tracedb::store::kSectionMeta);
  EXPECT_EQ(meta_only.enclaves().size(), 1u);
}

TEST(TraceStore, TruncatedIndexHeaderIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_idx.store");
  tracedb::store::pack(db, store.path);

  const std::string idx_path = store.path + "/" + tracedb::store::kIndexFileName;
  std::string bytes = slurp(idx_path);
  bytes.resize(16);  // past the magic, short of the fixed header
  spill(idx_path, bytes);

  const std::string what = expect_store_error(store.path, tracedb::store::kAllSections);
  EXPECT_NE(what.find("truncated index header"), std::string::npos) << what;
}

TEST(TraceStore, IndexChecksumMismatchIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_idxcrc.store");
  tracedb::store::pack(db, store.path);

  const std::string idx_path = store.path + "/" + tracedb::store::kIndexFileName;
  std::string bytes = slurp(idx_path);
  bytes[bytes.size() / 2] ^= 0x40;
  spill(idx_path, bytes);

  const std::string what = expect_store_error(store.path, tracedb::store::kAllSections);
  EXPECT_NE(what.find("index checksum mismatch"), std::string::npos) << what;
}

TEST(TraceStore, TruncatedEventChunkIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_chunk.store");
  tracedb::store::pack(db, store.path, {.chunk_calls = 3});

  // Cut bytes out of the chunk area while keeping the footer (and its CRC)
  // intact, then shrink the section length to match: the footer now
  // describes chunk extents that overrun the chunk area.
  const std::string events_path = store.path + "/events.db";
  const std::string bytes = slurp(events_path);
  constexpr std::size_t kCut = 16;
  ASSERT_GT(bytes.size(), kCut + 12);
  spill(events_path, bytes.substr(kCut));

  const std::string idx_path = store.path + "/" + tracedb::store::kIndexFileName;
  tracedb::store::StoreIndex index = tracedb::store::parse_index(slurp(idx_path));
  for (auto& section : index.sections) {
    if (section.id == tracedb::store::kEventsSection) section.length -= kCut;
  }
  spill(idx_path, tracedb::store::encode_index(index));

  const std::string what = expect_store_error(store.path, tracedb::store::kAllSections);
  EXPECT_NE(what.find("truncated event chunk"), std::string::npos) << what;
}

TEST(TraceStore, TruncatedEventSectionIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_evtail.store");
  tracedb::store::pack(db, store.path);

  // Chopping the file tail destroys the footer-length trailer; the mapped
  // section is then shorter than the index says.
  const std::string events_path = store.path + "/events.db";
  const std::string bytes = slurp(events_path);
  spill(events_path, bytes.substr(0, bytes.size() - 8));

  const std::string what = expect_store_error(store.path, tracedb::store::kAllSections);
  EXPECT_NE(what.find("truncated section file"), std::string::npos) << what;
}

TEST(TraceStore, UnknownSectionIsSkippedForwardCompatibly) {
  const TraceDatabase db = make_fixture_db();
  const std::string before = flat_bytes(db, "store_fwd_before.bin");
  StoreDir store("store_fwd.store");
  tracedb::store::pack(db, store.path);

  // A future writer adds a section this reader has never heard of.  The id
  // is unknown, the payload is opaque — loads must succeed and ignore it.
  const std::string extra = "bytes from the future";
  spill(store.path + "/extra.db", extra);
  const std::string idx_path = store.path + "/" + tracedb::store::kIndexFileName;
  tracedb::store::StoreIndex index = tracedb::store::parse_index(slurp(idx_path));
  tracedb::store::IndexSection future;
  future.id = 200;
  future.file = "extra.db";
  future.length = extra.size();
  future.crc = support::crc32(extra.data(), extra.size());
  future.counts = {42};
  index.sections.push_back(future);
  spill(idx_path, tracedb::store::encode_index(index));

  tracedb::store::StoreReader reader(store.path);
  const TraceDatabase back = reader.load(tracedb::store::kAllSections);
  EXPECT_EQ(flat_bytes(back, "store_fwd_after.bin"), before);
  const auto info = reader.info();
  ASSERT_EQ(info.sections.size(), 5u);
  EXPECT_EQ(info.sections.back().name, "unknown");
  EXPECT_EQ(info.sections.back().file, "extra.db");
}

TEST(TraceStore, MissingSectionFileIsRejected) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_missing.store");
  tracedb::store::pack(db, store.path);
  fs::remove(store.path + "/alerts.db");
  const std::string what = expect_store_error(store.path, tracedb::store::kSummarySections);
  EXPECT_NE(what.find("cannot open"), std::string::npos) << what;
}

// --- compaction --------------------------------------------------------------

TEST(TraceStore, CompactMergesSummariesAndRebasesEventChunks) {
  const TraceDatabase db1 = make_fixture_db();
  const TraceDatabase db2 = make_fixture_db();
  StoreDir in1("store_c_in1.store");
  StoreDir in2("store_c_in2.store");
  tracedb::store::pack(db1, in1.path, {.chunk_calls = 3});
  tracedb::store::pack(db2, in2.path, {.chunk_calls = 3});

  StoreDir out("store_c_out.store");
  tracedb::store::compact({in1.path, in2.path}, out.path);
  const TraceDatabase merged = tracedb::store::unpack(out.path);

  // Events: concatenated in input order with parent references rebased —
  // the second copy's rows resolve to its own ecalls, not the first's.
  ASSERT_EQ(merged.calls().size(), db1.calls().size() + db2.calls().size());
  const std::size_t shift = db1.calls().size();
  for (std::size_t i = 0; i < db2.calls().size(); ++i) {
    const auto& expected = db2.calls()[i];
    const auto& actual = merged.calls()[shift + i];
    EXPECT_EQ(actual.start_ns, expected.start_ns);
    if (expected.parent >= 0) {
      EXPECT_EQ(actual.parent, expected.parent + static_cast<tracedb::CallIndex>(shift));
    } else {
      EXPECT_EQ(actual.parent, tracedb::kNoParent);
    }
  }
  ASSERT_EQ(merged.aexs().size(), db1.aexs().size() + db2.aexs().size());
  EXPECT_EQ(merged.aexs().back().during_call,
            db2.aexs().back().during_call + static_cast<tracedb::CallIndex>(shift));

  // Summary: histograms summed, windows and alerts re-indexed past the first
  // input's window table, scalar counters added, duplicate metadata deduped.
  const auto* lat = merged.find_latency(1, CallType::kEcall, 7);
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 20u);
  EXPECT_EQ(lat->sum_ns, 18'000u);
  ASSERT_EQ(lat->buckets.size(), 2u);
  EXPECT_EQ(lat->buckets[0].second, 8u);
  ASSERT_EQ(merged.windows().size(), 4u);
  EXPECT_EQ(merged.windows()[2].window_index, 2u);
  ASSERT_EQ(merged.alerts().size(), 2u);
  EXPECT_EQ(merged.alerts()[1].window_index, 1u + 2u);
  EXPECT_EQ(merged.enclaves().size(), 1u);
  EXPECT_EQ(merged.order_rules().size(), 2u);
  EXPECT_EQ(merged.stream_dropped(), 6u);
  EXPECT_EQ(merged.window_period(), 1'000'000u);
}

TEST(TraceStore, CompactAcceptsFlatInputsAndNeedsAtLeastOne) {
  const TraceDatabase db = make_fixture_db();
  const std::string flat = temp_path("store_c_flat.bin");
  db.save(flat);
  StoreDir out("store_c_flatout.store");
  tracedb::store::compact({flat}, out.path);
  const TraceDatabase back = tracedb::store::unpack(out.path);
  EXPECT_EQ(back.calls().size(), db.calls().size());
  EXPECT_EQ(back.windows().size(), db.windows().size());
  fs::remove(flat);

  EXPECT_THROW(tracedb::store::compact({}, out.path), std::runtime_error);
}

// --- rewrite / generations ---------------------------------------------------

TEST(TraceStore, RepackBumpsGenerationAndRemovesStaleFiles) {
  const TraceDatabase db = make_fixture_db();
  StoreDir store("store_gen.store");
  tracedb::store::pack(db, store.path);
  {
    tracedb::store::StoreReader reader(store.path);
    EXPECT_EQ(reader.generation(), 0u);
  }
  ASSERT_TRUE(fs::exists(store.path + "/meta.db"));

  tracedb::store::pack(db, store.path);
  tracedb::store::StoreReader reader(store.path);
  EXPECT_EQ(reader.generation(), 1u);
  // Generation-1 files replace the gen-0 names; the old ones are gone.
  EXPECT_TRUE(fs::exists(store.path + "/meta.1.db"));
  EXPECT_FALSE(fs::exists(store.path + "/meta.db"));
  const std::string before = flat_bytes(db, "store_gen_before.bin");
  EXPECT_EQ(flat_bytes(reader.load(tracedb::store::kAllSections), "store_gen_after.bin"),
            before);
}

TEST(TraceStore, WriterCommitTwiceThrows) {
  StoreDir store("store_twice.store");
  tracedb::store::StoreWriter writer(store.path);
  const TraceDatabase empty;
  writer.commit(empty);
  EXPECT_THROW(writer.commit(empty), std::logic_error);
}

// --- open/save dispatch (the serve checkpoint path) --------------------------

TEST(TraceStore, SaveTraceAtomicWritesFlatAndStoreCheckpoints) {
  const TraceDatabase db = make_fixture_db();
  const std::string before = flat_bytes(db, "store_atomic_ref.bin");

  // Flat checkpoint: temp + rename, no droppings next to the target.
  const std::string flat = temp_path("store_atomic.bin");
  tracedb::save_trace_atomic(db, flat);
  EXPECT_EQ(slurp(flat), before);
  EXPECT_FALSE(fs::exists(flat + ".tmp"));
  fs::remove(flat);

  // ".store" checkpoint path: the same call writes a store directory, and a
  // second checkpoint atomically supersedes the first (the serve daemon's
  // repeated-checkpoint shape).
  StoreDir store("store_atomic.store");
  tracedb::save_trace_atomic(db, store.path);
  tracedb::save_trace_atomic(db, store.path);
  EXPECT_TRUE(tracedb::store::is_store(store.path));
  const TraceDatabase back = tracedb::store::unpack(store.path);
  EXPECT_EQ(flat_bytes(back, "store_atomic_after.bin"), before);
}

}  // namespace
