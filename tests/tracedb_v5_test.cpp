// Binary format v5: the window/alert time-series tables round-trip
// byte-identically, every older format (v2/v3/v4) still loads with the v5
// tables absent-but-valid, and corrupt v5 payloads (bad alert kind, malformed
// window interval, dangling window reference, implausible row counts,
// truncation) are rejected instead of being half-loaded.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"

namespace {

using tracedb::AlertKind;
using tracedb::AlertRecord;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;
using tracedb::WindowRecord;
using tracedb::WindowSiteRecord;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Little-endian byte assembler mirroring the serializer's Writer, but into
/// memory — so fixtures can be truncated or corrupted at exact offsets.
struct Buf {
  std::string bytes;

  void raw(const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
};

/// Appends the six empty v2 tables (calls..call_names).
void empty_v2_tables(Buf& b) {
  for (int t = 0; t < 6; ++t) b.u64(0);
}

/// Appends the empty v3 appendix (dropped count + metric tables).
void empty_v3_tables(Buf& b) {
  b.u64(0);  // dropped_events
  b.u64(0);  // metric_series
  b.u64(0);  // metric_samples
}

/// Appends the empty v4 appendix (stream drops + HDR geometry + latencies).
void empty_v4_tables(Buf& b) {
  b.u64(0);  // stream_dropped
  b.u8(static_cast<std::uint8_t>(telemetry::hdr::kSubBits));
  b.u8(static_cast<std::uint8_t>(telemetry::hdr::kMaxExponent));
  b.u64(0);  // latencies
}

/// A minimal well-formed v5 payload: one window, one site row, one alert.
void small_v5_tables(Buf& b) {
  b.u64(1'000'000);  // window_period
  b.u64(1);          // windows
  b.u32(0);          //   window_index
  b.u64(0);          //   start_ns
  b.u64(1'000'000);  //   end_ns
  b.u64(4);          //   calls
  b.u64(1);          //   aexs
  b.u64(0);          //   page_ins
  b.u64(0);          //   page_outs
  b.u64(0);          //   stream_dropped
  b.u64(2);          //   switchless_calls
  b.u64(1);          //   switchless_fallbacks
  b.u64(500);        //   switchless_wasted_ns
  b.u32(1);          //   active_alerts
  b.u64(1);          // window_sites
  b.u32(0);          //   window_index
  b.u64(1);          //   enclave_id
  b.u8(1);           //   type = ocall
  b.u32(7);          //   call_id
  b.u64(4);          //   calls
  b.u64(1);          //   aex_count
  b.u64(800);        //   p50_ns
  b.u64(1600);       //   p99_ns
  b.u64(1);          // alerts
  b.u8(0);           //   kind = short_calls
  b.u64(1);          //   enclave_id
  b.u8(1);           //   type = ocall
  b.u32(7);          //   call_id
  b.u64(123'456);    //   onset_ns
  b.u64(0);          //   resolved_ns (active)
  b.u32(0);          //   window_index
  b.u64(1000);       //   detail
}

TEST(FormatV5, RoundTripsByteIdentically) {
  TraceDatabase original;
  CallRecord c;
  c.type = CallType::kEcall;
  c.thread_id = 1;
  c.enclave_id = 1;
  c.call_id = 0;
  c.start_ns = 10;
  c.end_ns = 4215;
  original.add_call(c);

  original.set_window_period(1'000'000);
  WindowRecord w0;
  w0.window_index = 0;
  w0.start_ns = 0;
  w0.end_ns = 1'000'000;
  w0.calls = 3;
  w0.aexs = 1;
  w0.switchless_calls = 5;
  w0.switchless_fallbacks = 2;
  w0.switchless_wasted_ns = 900;
  w0.active_alerts = 1;
  original.add_window(w0);
  WindowRecord w1 = w0;
  w1.window_index = 1;
  w1.start_ns = 1'000'000;
  w1.end_ns = 2'000'000;
  w1.calls = 0;
  w1.active_alerts = 2;
  original.add_window(w1);

  WindowSiteRecord s;
  s.window_index = 1;
  s.enclave_id = 1;
  s.type = CallType::kOcall;
  s.call_id = 7;
  s.calls = 12;
  s.aex_count = 3;
  s.p50_ns = 750;
  s.p99_ns = 9'000;
  original.add_window_site(s);

  AlertRecord active;
  active.kind = AlertKind::kShortCalls;
  active.enclave_id = 1;
  active.type = CallType::kOcall;
  active.call_id = 7;
  active.onset_ns = 1'234'567;
  active.window_index = 1;
  active.detail = 812;
  original.add_alert(active);
  AlertRecord resolved = active;
  resolved.kind = AlertKind::kLatencyShift;
  resolved.resolved_ns = 2'000'000;
  original.add_alert(resolved);

  const std::string path_a = temp_path("tracedb_v5_a.bin");
  const std::string path_b = temp_path("tracedb_v5_b.bin");
  original.save(path_a);

  const TraceDatabase reloaded = TraceDatabase::load(path_a);
  EXPECT_EQ(reloaded.window_period(), 1'000'000u);
  ASSERT_EQ(reloaded.windows().size(), 2u);
  EXPECT_EQ(reloaded.windows()[0].switchless_calls, 5u);
  EXPECT_EQ(reloaded.windows()[0].switchless_wasted_ns, 900u);
  EXPECT_EQ(reloaded.windows()[1].active_alerts, 2u);
  ASSERT_EQ(reloaded.window_sites().size(), 1u);
  EXPECT_EQ(reloaded.window_sites()[0].window_index, 1u);
  EXPECT_EQ(reloaded.window_sites()[0].p99_ns, 9'000u);
  ASSERT_EQ(reloaded.alerts().size(), 2u);
  EXPECT_EQ(reloaded.alerts()[0].kind, AlertKind::kShortCalls);
  EXPECT_EQ(reloaded.alerts()[0].resolved_ns, 0u);
  EXPECT_EQ(reloaded.alerts()[1].kind, AlertKind::kLatencyShift);
  EXPECT_EQ(reloaded.alerts()[1].resolved_ns, 2'000'000u);

  reloaded.save(path_b);
  const std::string bytes_a = slurp(path_a);
  const std::string bytes_b = slurp(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(bytes_a.substr(0, 8), "SGXPTRC6");
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

// --- older formats stay loadable -------------------------------------------

TEST(FormatV5, LoadsV2FixtureWithEmptyTimeSeries) {
  Buf b;
  b.raw("SGXPTRC2", 8);
  empty_v2_tables(b);
  const std::string path = temp_path("tracedb_v5_from_v2.bin");
  spill(path, b.bytes);
  const TraceDatabase db = TraceDatabase::load(path);
  EXPECT_EQ(db.window_period(), 0u);
  EXPECT_TRUE(db.windows().empty());
  EXPECT_TRUE(db.window_sites().empty());
  EXPECT_TRUE(db.alerts().empty());
  std::filesystem::remove(path);
}

TEST(FormatV5, LoadsV3FixtureWithEmptyTimeSeries) {
  Buf b;
  b.raw("SGXPTRC3", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  const std::string path = temp_path("tracedb_v5_from_v3.bin");
  spill(path, b.bytes);
  const TraceDatabase db = TraceDatabase::load(path);
  EXPECT_EQ(db.window_period(), 0u);
  EXPECT_TRUE(db.windows().empty());
  EXPECT_TRUE(db.alerts().empty());
  std::filesystem::remove(path);
}

TEST(FormatV5, LoadsV4FixtureWithEmptyTimeSeries) {
  Buf b;
  b.raw("SGXPTRC4", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  const std::string path = temp_path("tracedb_v5_from_v4.bin");
  spill(path, b.bytes);
  const TraceDatabase db = TraceDatabase::load(path);
  EXPECT_EQ(db.window_period(), 0u);
  EXPECT_TRUE(db.windows().empty());
  EXPECT_TRUE(db.window_sites().empty());
  EXPECT_TRUE(db.alerts().empty());
  std::filesystem::remove(path);
}

// --- rejection paths --------------------------------------------------------

std::string v5_fixture_bytes() {
  Buf b;
  b.raw("SGXPTRC5", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  small_v5_tables(b);
  return b.bytes;
}

TEST(FormatV5, WellFormedFixtureLoads) {
  const std::string path = temp_path("tracedb_v5_fixture.bin");
  spill(path, v5_fixture_bytes());
  const TraceDatabase db = TraceDatabase::load(path);
  ASSERT_EQ(db.windows().size(), 1u);
  ASSERT_EQ(db.window_sites().size(), 1u);
  ASSERT_EQ(db.alerts().size(), 1u);
  EXPECT_EQ(db.alerts()[0].onset_ns, 123'456u);
  std::filesystem::remove(path);
}

TEST(FormatV5, RejectsUnknownAlertKindByte) {
  std::string bytes = v5_fixture_bytes();
  // The alert row starts right after the alerts count; its first byte is the
  // kind.  The alert table is the last table, so the row's kind byte sits
  // 34 bytes (u8 + u64 + u8 + u32 + u64*3 + u32... = full row 42 bytes)
  // before EOF: row = kind(1) + enclave(8) + type(1) + call_id(4) +
  // onset(8) + resolved(8) + window(4) + detail(8) = 42.
  bytes[bytes.size() - 42] = static_cast<char>(9);  // kAlertKindCount
  const std::string path = temp_path("tracedb_v5_bad_kind.bin");
  spill(path, bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV5, RejectsWindowIntervalEndBeforeStart) {
  Buf b;
  b.raw("SGXPTRC5", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  b.u64(1'000'000);  // window_period
  b.u64(1);          // windows
  b.u32(0);
  b.u64(2'000'000);  // start_ns
  b.u64(1'000'000);  // end_ns < start_ns: malformed
  for (int i = 0; i < 8; ++i) b.u64(0);
  b.u32(0);
  b.u64(0);  // window_sites
  b.u64(0);  // alerts
  const std::string path = temp_path("tracedb_v5_bad_interval.bin");
  spill(path, b.bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV5, RejectsSiteReferencingUnknownWindow) {
  Buf b;
  b.raw("SGXPTRC5", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  b.u64(1'000'000);  // window_period
  b.u64(0);          // windows: none
  b.u64(1);          // window_sites: one, referencing window 3
  b.u32(3);
  b.u64(1);
  b.u8(0);
  b.u32(0);
  b.u64(1);
  b.u64(0);
  b.u64(100);
  b.u64(200);
  b.u64(0);  // alerts
  const std::string path = temp_path("tracedb_v5_dangling_site.bin");
  spill(path, b.bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV5, RejectsImplausibleRowCounts) {
  Buf b;
  b.raw("SGXPTRC5", 8);
  empty_v2_tables(b);
  empty_v3_tables(b);
  empty_v4_tables(b);
  b.u64(1'000'000);       // window_period
  b.u64(1ull << 33);      // windows count > kMaxV5Rows: must fail fast,
                          // before any allocation is attempted
  const std::string path = temp_path("tracedb_v5_huge_count.bin");
  spill(path, b.bytes);
  EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FormatV5, RejectsTruncatedFiles) {
  const std::string full = v5_fixture_bytes();
  // Cut at several depths: mid-alert-row, mid-window-row, and right after
  // the magic — every prefix must throw, never half-load.
  for (const std::size_t keep :
       {full.size() - 4, full.size() - 42, full.size() - 100, std::size_t{8}}) {
    const std::string path = temp_path("tracedb_v5_truncated.bin");
    spill(path, full.substr(0, keep));
    EXPECT_THROW((void)TraceDatabase::load(path), std::runtime_error)
        << "prefix of " << keep << " bytes should be rejected";
    std::filesystem::remove(path);
  }
}

}  // namespace
