// Fleet aggregation (`sgxperf serve`): wire framing, order-independent
// merging, loss accounting, socket transport and checkpointing.
//
// The acceptance bar from the fleet design: N concurrent producers feeding
// one aggregator yield (a) a byte-identical query snapshot across runs,
// ingest chunkings, producer orderings and transport thread counts, and
// (b) merged per-site p99s equal to what each producer's own cumulative
// HDR histogram reports — bucket-wise delta addition is exact.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/aggregator.hpp"
#include "fleet/corpus.hpp"
#include "fleet/server.hpp"
#include "fleet/wire.hpp"
#include "telemetry/hdr_histogram.hpp"
#include "tracedb/database.hpp"

namespace {

fleet::CorpusConfig small_corpus() {
  fleet::CorpusConfig config = fleet::default_corpus();
  for (auto& p : config.producers) p.duration_ns = 10'000'000;
  return config;
}

std::vector<std::string> corpus_streams(const fleet::CorpusConfig& config) {
  std::vector<std::string> streams;
  streams.reserve(config.producers.size());
  for (const auto& spec : config.producers) {
    streams.push_back(fleet::run_corpus_producer(spec, config));
  }
  return streams;
}

std::string ingest_all(const std::vector<std::string>& streams, std::size_t chunk,
                       bool reverse = false) {
  fleet::Aggregator agg;
  std::vector<std::size_t> order(streams.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = reverse ? order.size() - 1 - i : i;
  }
  for (const std::size_t idx : order) {
    const auto& bytes = streams[idx];
    const fleet::ProducerId id = agg.connect();
    if (chunk == 0) {
      agg.ingest(id, bytes);
    } else {
      for (std::size_t off = 0; off < bytes.size(); off += chunk) {
        agg.ingest(id, bytes.data() + off, std::min(chunk, bytes.size() - off));
      }
    }
    agg.disconnect(id);
  }
  return agg.snapshot_json();
}

TEST(FleetWire, ProducerStreamRoundTrips) {
  fleet::CorpusConfig config = small_corpus();
  const auto& spec = config.producers[1];  // the transition-storm producer
  const std::string bytes = fleet::run_corpus_producer(spec, config);
  ASSERT_GT(bytes.size(), 8u);

  fleet::FrameParser parser;
  parser.push(bytes);
  std::vector<fleet::Frame> frames;
  while (auto f = parser.next()) frames.push_back(std::move(*f));
  ASSERT_FALSE(parser.error()) << parser.error_message();
  ASSERT_GE(frames.size(), 4u) << "hello + >=1 window + stats + bye";

  const auto* hello = std::get_if<fleet::HelloFrame>(&frames.front());
  ASSERT_NE(hello, nullptr) << "first frame must be hello";
  EXPECT_EQ(hello->version, fleet::kWireVersion);
  EXPECT_EQ(hello->host, spec.host);
  EXPECT_EQ(hello->enclave, spec.enclave);
  EXPECT_EQ(hello->window_ns, config.window_ns);
  EXPECT_EQ(hello->hdr_sub_bits, telemetry::hdr::kSubBits);
  EXPECT_EQ(hello->hdr_max_exponent, telemetry::hdr::kMaxExponent);

  const auto* stats = std::get_if<fleet::StatsFrame>(&frames[frames.size() - 2]);
  ASSERT_NE(stats, nullptr) << "penultimate frame must be stats";
  EXPECT_GT(stats->events, 0u);
  EXPECT_EQ(stats->stream_dropped, 0u);

  const auto* bye = std::get_if<fleet::ByeFrame>(&frames.back());
  ASSERT_NE(bye, nullptr) << "last frame must be bye";
  EXPECT_GT(bye->end_ns, 0u);

  std::size_t windows = 0;
  std::uint64_t window_calls = 0;
  std::uint64_t delta_counts = 0;
  for (const auto& frame : frames) {
    if (const auto* w = std::get_if<fleet::WindowFrame>(&frame)) {
      ++windows;
      window_calls += w->window.calls;
      for (const auto& site : w->sites) {
        EXPECT_FALSE(site.name.empty());
        std::uint64_t bucket_sum = 0;
        for (const auto& [bucket, count] : site.buckets) bucket_sum += count;
        EXPECT_EQ(bucket_sum, site.delta_count)
            << "sparse buckets must cover the whole delta";
        delta_counts += site.delta_count;
      }
    }
  }
  EXPECT_GT(windows, 0u);
  EXPECT_EQ(delta_counts, window_calls) << "site deltas partition window calls";
}

TEST(FleetWire, ParserRejectsMalformedStreams) {
  {
    fleet::FrameParser parser;
    parser.push(std::string("XXXXGARBAGE"));
    while (parser.next()) {
    }
    EXPECT_TRUE(parser.error()) << "bad magic must poison the parser";
  }
  {
    // Valid magic, then an absurd frame length.
    std::string bytes;
    fleet::encode_magic(bytes);
    const std::uint32_t len = fleet::FrameParser::kMaxPayload + 1;
    bytes.append(reinterpret_cast<const char*>(&len), 4);
    bytes.push_back(static_cast<char>(fleet::FrameType::kHello));
    fleet::FrameParser parser;
    parser.push(bytes);
    while (parser.next()) {
    }
    EXPECT_TRUE(parser.error()) << "oversized frame must poison the parser";
  }
  {
    // Valid magic, plausible length, unknown frame type.
    std::string bytes;
    fleet::encode_magic(bytes);
    const std::uint32_t len = 1;
    bytes.append(reinterpret_cast<const char*>(&len), 4);
    bytes.push_back(static_cast<char>(0x7f));
    bytes.push_back('\0');
    fleet::FrameParser parser;
    parser.push(bytes);
    while (parser.next()) {
    }
    EXPECT_TRUE(parser.error()) << "unknown frame type must poison the parser";
  }
}

TEST(FleetAggregator, SnapshotIndependentOfRunsChunkingAndOrder) {
  const fleet::CorpusConfig config = small_corpus();
  const auto streams_a = corpus_streams(config);
  const auto streams_b = corpus_streams(config);

  // Producer streams are a pure function of their spec.
  ASSERT_EQ(streams_a.size(), streams_b.size());
  for (std::size_t i = 0; i < streams_a.size(); ++i) {
    EXPECT_EQ(streams_a[i], streams_b[i]) << "producer " << i << " stream not deterministic";
  }

  const std::string whole = ingest_all(streams_a, 0);
  EXPECT_FALSE(whole.empty());
  EXPECT_NE(whole.find("\"schema_version\":1"), std::string::npos);
  EXPECT_EQ(whole, ingest_all(streams_a, 1)) << "byte-at-a-time ingest must not change the snapshot";
  EXPECT_EQ(whole, ingest_all(streams_a, 4093)) << "chunked ingest must not change the snapshot";
  EXPECT_EQ(whole, ingest_all(streams_a, 0, /*reverse=*/true))
      << "producer order must not change the snapshot";
  EXPECT_EQ(whole, ingest_all(streams_b, 0)) << "re-generated streams must merge identically";

  // The interleaved-chunk corpus driver lands on the same bytes too.
  fleet::Aggregator corpus_agg;
  fleet::run_corpus(corpus_agg, config);
  EXPECT_EQ(whole, corpus_agg.snapshot_json());

  // A healthy corpus has no lossy producers.
  EXPECT_EQ(whole.find("\"lossy\":true"), std::string::npos);
}

TEST(FleetAggregator, LossyProducerIsFlaggedAndPartialDataStaysMerged) {
  const fleet::CorpusConfig config = small_corpus();
  const std::string full = fleet::run_corpus_producer(config.producers[0], config);

  fleet::Aggregator agg;
  const fleet::ProducerId id = agg.connect();
  // Kill the producer mid-stream: drop the tail (stats + bye + trailing
  // windows), cutting inside a frame.
  agg.ingest(id, full.data(), full.size() * 3 / 5);
  agg.disconnect(id);

  EXPECT_GT(agg.windows_merged(), 0u) << "partial windows must stay merged";
  const std::string snapshot = agg.snapshot_json();
  EXPECT_NE(snapshot.find("\"lossy\":true"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"clean\":false"), std::string::npos) << snapshot;
}

TEST(FleetAggregator, MergedP99MatchesSingleProcessHistograms) {
  // One producer, aggregated alone: every site's fleet-cumulative histogram
  // must reproduce the p99 of the producer's own v4 latency table — window
  // deltas sum back to the cumulative distribution exactly.
  fleet::CorpusConfig config = small_corpus();
  const auto& spec = config.producers[1];
  const std::string bytes = fleet::run_corpus_producer(spec, config);

  fleet::Aggregator agg;
  const fleet::ProducerId id = agg.connect();
  agg.ingest(id, bytes);
  agg.disconnect(id);

  // Reconstruct the producer's own cumulative per-site distributions from
  // its wire windows (the producer's db is internal to run_corpus_producer;
  // the wire stream carries the same deltas its latency table accumulated).
  fleet::FrameParser parser;
  parser.push(bytes);
  std::map<fleet::SiteKey, telemetry::HdrSnapshot> cumulative;
  std::map<fleet::SiteKey, std::uint64_t> calls;
  while (auto f = parser.next()) {
    const auto* w = std::get_if<fleet::WindowFrame>(&*f);
    if (w == nullptr) continue;
    for (const auto& site : w->sites) {
      const fleet::SiteKey key{spec.host, spec.enclave, site.name, site.row.type};
      auto& snap = cumulative[key];
      for (const auto& [bucket, count] : site.buckets) snap.add_bucket(bucket, count);
      calls[key] += site.delta_count;
    }
  }
  ASSERT_FALSE(parser.error()) << parser.error_message();
  ASSERT_FALSE(cumulative.empty());

  for (const auto& [key, snap] : cumulative) {
    const auto fleet_p99 = agg.site_p99(key);
    ASSERT_TRUE(fleet_p99.has_value()) << key.host << "/" << key.enclave << "/" << key.site;
    EXPECT_EQ(*fleet_p99, snap.value_at_percentile(99)) << key.site;
    EXPECT_EQ(snap.count(), calls[key]) << key.site;
  }

  // The ranking endpoints agree with the cumulative state.
  const auto top = agg.top("p99", 3);
  ASSERT_FALSE(top.empty());
  for (const auto& row : top) {
    const auto p99 = agg.site_p99(row.key);
    ASSERT_TRUE(p99.has_value());
    EXPECT_EQ(row.p99_ns, *p99);
  }
}

TEST(FleetAggregator, QueryProtocolAnswersEveryVerb) {
  fleet::Aggregator agg;
  const fleet::CorpusConfig config = small_corpus();
  fleet::run_corpus(agg, config);

  EXPECT_EQ(agg.query("snapshot"), agg.snapshot_json());
  EXPECT_EQ(agg.query("top transitions 5"), agg.top_json("transitions", 5));
  EXPECT_EQ(agg.query("alerts"), agg.alerts_json());
  const auto& spec = config.producers[1];
  const auto top = agg.top("transitions", 1);
  ASSERT_FALSE(top.empty());
  const std::string series = agg.query("series " + spec.host + " " + spec.enclave + " " +
                                       top.front().key.site);
  EXPECT_NE(series.find("\"points\""), std::string::npos) << series;
  EXPECT_NE(agg.query("bogus verb").find("\"error\""), std::string::npos);
}

TEST(FleetAggregator, KeyCapQuarantinesRunawayProducer) {
  fleet::AggregatorConfig config;
  config.max_keys_per_producer = 8;
  fleet::Aggregator agg(config);

  // A producer that mints a fresh site name every window: without the cap
  // the keyed maps (and their HDR snapshots) would grow without bound.
  std::string bytes;
  fleet::encode_magic(bytes);
  fleet::HelloFrame hello;
  hello.hdr_sub_bits = telemetry::hdr::kSubBits;
  hello.hdr_max_exponent = telemetry::hdr::kMaxExponent;
  hello.window_ns = 1'000'000;
  hello.host = "host-x";
  hello.enclave = "runaway";
  fleet::encode(bytes, hello);
  for (int i = 0; i < 64; ++i) {
    fleet::WindowFrame w;
    w.window.window_index = static_cast<std::uint32_t>(i);
    w.window.start_ns = static_cast<std::uint64_t>(i) * 1'000'000;
    w.window.end_ns = w.window.start_ns + 1'000'000;
    w.window.calls = 1;
    fleet::WireSite site;
    site.name = "site_" + std::to_string(i);
    site.row.calls = 1;
    site.delta_count = 1;
    site.delta_sum = 100;
    site.buckets = {{0, 1}};
    w.sites.push_back(site);
    fleet::encode(bytes, w);
  }

  const fleet::ProducerId id = agg.connect();
  agg.ingest(id, bytes);
  agg.disconnect(id);

  EXPECT_EQ(agg.windows_merged(), 8u) << "nothing past the cap may be merged";
  const std::string snapshot = agg.snapshot_json();
  EXPECT_NE(snapshot.find("fleet key cap exceeded"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"lossy\":true"), std::string::npos) << snapshot;
  EXPECT_NE(snapshot.find("\"site\":\"site_7\""), std::string::npos)
      << "keys created below the cap must stay merged";
  EXPECT_EQ(snapshot.find("\"site\":\"site_8\""), std::string::npos) << snapshot;
}

TEST(FleetServer, ConcurrentSocketProducersMatchInProcessMerge) {
  const fleet::CorpusConfig config = small_corpus();
  const auto streams = corpus_streams(config);
  const std::string expected = ingest_all(streams, 0);

  const std::string base =
      "/tmp/sgxperf_fleet_test_" + std::to_string(::getpid());
  fleet::ServerConfig sconfig;
  sconfig.ingest_path = base + ".ingest";
  sconfig.query_path = base + ".query";
  fleet::Server server(sconfig);
  ASSERT_TRUE(server.start());
  std::thread loop([&] { server.run(); });

  // All producers stream concurrently — the transport thread count must not
  // show in the merged snapshot.
  std::vector<std::thread> senders;
  for (const auto& bytes : streams) {
    senders.emplace_back([&, bytes] {
      EXPECT_TRUE(fleet::send_producer_stream(sconfig.ingest_path, bytes));
    });
  }
  for (auto& t : senders) t.join();

  // Senders return once their bytes are written; wait for the server to
  // finish draining and closing the connections.
  std::string got;
  for (int i = 0; i < 500; ++i) {
    got = fleet::query_server(sconfig.query_path, "snapshot");
    if (got == expected) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(got, expected);

  const std::string alerts = fleet::query_server(sconfig.query_path, "alerts");
  EXPECT_NE(alerts.find("\"schema_version\":1"), std::string::npos);

  server.stop();
  loop.join();
  std::remove(sconfig.ingest_path.c_str());
  std::remove(sconfig.query_path.c_str());
}

TEST(FleetServer, VanishedQueryClientDoesNotKillTheDaemon) {
  const fleet::CorpusConfig config = small_corpus();
  const auto streams = corpus_streams(config);

  const std::string base = "/tmp/sgxperf_fleet_gone_" + std::to_string(::getpid());
  fleet::ServerConfig sconfig;
  sconfig.ingest_path = base + ".ingest";
  sconfig.query_path = base + ".query";
  fleet::Server server(sconfig);
  ASSERT_TRUE(server.start());
  std::thread loop([&] { server.run(); });

  ASSERT_TRUE(fleet::send_producer_stream(sconfig.ingest_path, streams[0]));

  // Clients that send a query and vanish before reading the response: the
  // daemon (same process as this test) must see EPIPE and drop the
  // response — a SIGPIPE would kill the whole test binary.
  for (int i = 0; i < 10; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sconfig.query_path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    const char req[] = "snapshot\n";
    ASSERT_EQ(::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(req) - 1));
    ::close(fd);  // gone before reading a byte of the response
  }

  // The daemon is still alive and answering.
  const std::string got = fleet::query_server(sconfig.query_path, "alerts");
  EXPECT_NE(got.find("\"schema_version\":1"), std::string::npos) << got;

  server.stop();
  loop.join();
  std::remove(sconfig.ingest_path.c_str());
  std::remove(sconfig.query_path.c_str());
}

TEST(FleetAggregator, CheckpointRoundTripsThroughTheV5Format) {
  fleet::Aggregator agg;
  const fleet::CorpusConfig config = small_corpus();
  fleet::run_corpus(agg, config);

  tracedb::TraceDatabase db;
  agg.checkpoint(db);
  EXPECT_FALSE(db.windows().empty());
  EXPECT_FALSE(db.window_sites().empty());
  EXPECT_FALSE(db.latencies().empty());
  EXPECT_EQ(db.window_period(), config.window_ns);
  // One synthetic enclave per (host, enclave) identity.
  EXPECT_EQ(db.enclaves().size(), config.producers.size());

  const std::string path =
      "/tmp/sgxperf_fleet_ckpt_" + std::to_string(::getpid()) + ".trace";
  db.save(path);
  const tracedb::TraceDatabase loaded = tracedb::TraceDatabase::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.windows().size(), db.windows().size());
  EXPECT_EQ(loaded.window_sites().size(), db.window_sites().size());
  EXPECT_EQ(loaded.latencies().size(), db.latencies().size());
  EXPECT_EQ(loaded.alerts().size(), db.alerts().size());
  EXPECT_EQ(loaded.enclaves().size(), db.enclaves().size());
}

}  // namespace
