// Telemetry layer: metrics registry semantics, lock-free concurrency
// (exercised under TSan by tools/ci.sh), and the virtual-time sampler.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/clock.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "tracedb/database.hpp"

namespace {

using telemetry::MetricKind;
using telemetry::MetricsRegistry;
using telemetry::TelemetrySampler;

TEST(Counter, AddAndValue) {
  MetricsRegistry reg;
  auto& c = reg.counter("test.counter", "events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.name(), "test.counter");
  EXPECT_EQ(c.unit(), "events");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SignedDeltas) {
  MetricsRegistry reg;
  auto& g = reg.gauge("test.gauge", "pages");
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.sub(20);  // gauges may go negative (deltas can interleave across threads)
  EXPECT_EQ(g.value(), -13);
}

TEST(Histogram, BucketsOverflowAndSum) {
  MetricsRegistry reg;
  auto& h = reg.histogram("test.hist", {10, 100, 1000}, "ns");
  h.observe(5);     // <= 10
  h.observe(10);    // inclusive upper bound -> still bucket 0
  h.observe(50);    // <= 100
  h.observe(1000);  // <= 1000
  h.observe(5000);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5u + 10 + 50 + 1000 + 5000);
}

TEST(Registry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  auto& a = reg.counter("same.name", "x");
  auto& b = reg.counter("same.name", "ignored-second-unit");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.unit(), "x");  // first registration wins
  auto& g1 = reg.gauge("g");
  auto& g2 = reg.gauge("g");
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Registry, SnapshotFlattensHistograms) {
  MetricsRegistry reg;
  reg.counter("c", "events").add(3);
  reg.gauge("g", "pages").add(-2);
  auto& h = reg.histogram("h", {10, 100}, "ns");
  h.observe(7);
  h.observe(70);
  h.observe(7000);

  const auto rows = reg.snapshot();
  // counters, then gauges, then histogram rows: count, sum, one per bound.
  ASSERT_EQ(rows.size(), 2u + 4u);
  EXPECT_EQ(rows[0].name, "c");
  EXPECT_EQ(rows[0].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
  EXPECT_EQ(rows[1].name, "g");
  EXPECT_EQ(rows[1].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(rows[1].value, -2.0);
  EXPECT_EQ(rows[2].name, "h.count");
  EXPECT_DOUBLE_EQ(rows[2].value, 3.0);
  EXPECT_EQ(rows[3].name, "h.sum");
  EXPECT_DOUBLE_EQ(rows[3].value, 7077.0);
  EXPECT_EQ(rows[4].name, "h.le_10");
  EXPECT_DOUBLE_EQ(rows[4].value, 1.0);
  EXPECT_EQ(rows[5].name, "h.le_100");
  EXPECT_DOUBLE_EQ(rows[5].value, 1.0);
}

TEST(Registry, ResetZeroesEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").add(5);
  reg.histogram("h", {10}).observe(3);
  reg.reset();
  for (const auto& row : reg.snapshot()) EXPECT_DOUBLE_EQ(row.value, 0.0);
}

// The lock-free contract: concurrent writers from many threads lose no
// updates.  Run under TSan (tools/ci.sh) this also proves data-race freedom.
TEST(Registry, ConcurrentWritersLoseNothing) {
  MetricsRegistry reg;
  auto& c = reg.counter("conc.counter");
  auto& g = reg.gauge("conc.gauge");
  auto& h = reg.histogram("conc.hist", {100, 10'000});

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.add();
        g.add(t % 2 == 0 ? 1 : -1);  // half the threads add, half subtract
        h.observe(static_cast<std::uint64_t>(i % 200));
      }
      // Concurrent registration of the same name must also be safe.
      (void)reg.counter("conc.counter");
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// --- sampler ---------------------------------------------------------------

struct SamplerFixture : ::testing::Test {
  tracedb::TraceDatabase db;
  support::VirtualClock clock;
  MetricsRegistry reg;
};

TEST_F(SamplerFixture, PollSamplesOnVirtualCadence) {
  auto& c = reg.counter("s.counter", "events");
  TelemetrySampler sampler(db, clock, reg, 1000);

  sampler.poll();  // t=0: deadline (t=1000) not reached
  EXPECT_EQ(sampler.samples_taken(), 0u);

  c.add(7);
  clock.advance(1000);
  sampler.poll();
  EXPECT_EQ(sampler.samples_taken(), 1u);
  ASSERT_EQ(db.metric_samples().size(), 1u);
  EXPECT_EQ(db.metric_samples()[0].timestamp_ns, 1000u);
  EXPECT_DOUBLE_EQ(db.metric_samples()[0].value, 7.0);
  ASSERT_EQ(db.metric_series().size(), 1u);
  EXPECT_EQ(db.metric_series()[0].name, "s.counter");
  EXPECT_EQ(db.metric_series()[0].unit, "events");
  EXPECT_EQ(db.metric_series()[0].kind, tracedb::MetricKind::kCounter);

  sampler.poll();  // same instant: next deadline is t=2000
  EXPECT_EQ(sampler.samples_taken(), 1u);
}

TEST_F(SamplerFixture, MultiPeriodGapTakesOneCatchUpSample) {
  reg.counter("s.counter");
  TelemetrySampler sampler(db, clock, reg, 1000);
  clock.advance(10'500);  // ten periods elapse unobserved
  sampler.poll();
  EXPECT_EQ(sampler.samples_taken(), 1u);  // no burst of back-samples
  clock.advance(400);     // t=10'900 < next deadline 11'000
  sampler.poll();
  EXPECT_EQ(sampler.samples_taken(), 1u);
  clock.advance(100);     // t=11'000
  sampler.poll();
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST_F(SamplerFixture, SampleNowIsUnconditionalAndSeriesIdsAreStable) {
  auto& c = reg.counter("s.counter");
  TelemetrySampler sampler(db, clock, reg, 1'000'000);
  sampler.sample_now();
  c.add(5);
  reg.gauge("s.late_gauge").add(3);  // registered between samples
  sampler.sample_now();
  EXPECT_EQ(sampler.samples_taken(), 2u);
  // Two series; the counter's id did not shift when the gauge appeared.
  ASSERT_EQ(db.metric_series().size(), 2u);
  ASSERT_EQ(db.metric_samples().size(), 3u);  // 1 then 2 rows
  const auto counter_id = db.metric_series()[0].series_id;
  EXPECT_EQ(db.metric_series()[0].name, "s.counter");
  EXPECT_EQ(db.metric_samples()[0].series_id, counter_id);
  EXPECT_DOUBLE_EQ(db.metric_samples()[0].value, 0.0);
  EXPECT_EQ(db.metric_samples()[1].series_id, counter_id);
  EXPECT_DOUBLE_EQ(db.metric_samples()[1].value, 5.0);
  EXPECT_EQ(db.metric_series()[1].name, "s.late_gauge");
  EXPECT_EQ(db.metric_series()[1].kind, tracedb::MetricKind::kGauge);
}

TEST_F(SamplerFixture, ZeroPeriodDisablesPolling) {
  reg.counter("s.counter");
  TelemetrySampler sampler(db, clock, reg, 0);
  clock.advance(1'000'000'000);
  sampler.poll();
  EXPECT_EQ(sampler.samples_taken(), 0u);
  EXPECT_TRUE(db.metric_samples().empty());
  sampler.sample_now();  // explicit samples still work
  EXPECT_EQ(sampler.samples_taken(), 1u);
}

TEST_F(SamplerFixture, ConcurrentPollersProduceExactlyOneSamplePerDeadline) {
  reg.counter("s.counter");
  TelemetrySampler sampler(db, clock, reg, 100);
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    clock.advance(100);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] { sampler.poll(); });
    }
    for (auto& w : workers) w.join();
  }
  EXPECT_EQ(sampler.samples_taken(), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(db.metric_samples().size(), static_cast<std::size_t>(kRounds));
}

}  // namespace
