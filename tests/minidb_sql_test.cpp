// Tests for the SQL front end of minidb.
#include <gtest/gtest.h>

#include "minidb/sql.hpp"

namespace {

using namespace minidb;

class SqlTest : public testing::Test {
 protected:
  SqlTest() : vfs_(clock_), db_(vfs_, "/sql.db"), sql_(db_) {}

  SqlResult exec(const std::string& statement) { return sql_.exec(statement); }

  support::VirtualClock clock_;
  HostVfs vfs_;
  Database db_;
  SqlEngine sql_;
};

TEST_F(SqlTest, CreateInsertSelect) {
  ASSERT_TRUE(exec("CREATE TABLE kv").ok);
  const auto ins = exec("INSERT INTO kv VALUES ('alpha', 'one')");
  ASSERT_TRUE(ins.ok) << ins.error;
  EXPECT_EQ(ins.affected, 1u);

  const auto sel = exec("SELECT value FROM kv WHERE key = 'alpha'");
  ASSERT_TRUE(sel.ok) << sel.error;
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0], "one");
}

TEST_F(SqlTest, SelectMissingKeyReturnsNoRows) {
  ASSERT_TRUE(exec("CREATE TABLE kv").ok);
  const auto sel = exec("SELECT value FROM kv WHERE key = 'nope'");
  ASSERT_TRUE(sel.ok);
  EXPECT_TRUE(sel.rows.empty());
}

TEST_F(SqlTest, SelectStarAndKeyValue) {
  ASSERT_TRUE(exec("CREATE TABLE kv").ok);
  exec("INSERT INTO kv VALUES ('b', '2')");
  exec("INSERT INTO kv VALUES ('a', '1')");
  const auto all = exec("SELECT * FROM kv");
  ASSERT_TRUE(all.ok);
  ASSERT_EQ(all.rows.size(), 2u);
  EXPECT_EQ(all.rows[0][0], "a");  // scan order is sorted
  EXPECT_EQ(all.rows[0][1], "1");
  const auto kv = exec("SELECT key, value FROM kv");
  ASSERT_TRUE(kv.ok);
  EXPECT_EQ(kv.rows, all.rows);
}

TEST_F(SqlTest, CountStar) {
  ASSERT_TRUE(exec("CREATE TABLE kv").ok);
  for (int i = 0; i < 7; ++i) {
    exec("INSERT INTO kv VALUES ('k" + std::to_string(i) + "', 'v')");
  }
  const auto count = exec("SELECT COUNT(*) FROM kv");
  ASSERT_TRUE(count.ok);
  EXPECT_EQ(count.rows[0][0], "7");
}

TEST_F(SqlTest, DeleteRow) {
  exec("CREATE TABLE kv");
  exec("INSERT INTO kv VALUES ('k', 'v')");
  const auto del = exec("DELETE FROM kv WHERE key = 'k'");
  ASSERT_TRUE(del.ok);
  EXPECT_EQ(del.affected, 1u);
  EXPECT_EQ(exec("DELETE FROM kv WHERE key = 'k'").affected, 0u);
  EXPECT_TRUE(exec("SELECT value FROM kv WHERE key = 'k'").rows.empty());
}

TEST_F(SqlTest, TablesAreIsolated) {
  exec("CREATE TABLE a");
  exec("CREATE TABLE b");
  exec("INSERT INTO a VALUES ('k', 'from-a')");
  exec("INSERT INTO b VALUES ('k', 'from-b')");
  EXPECT_EQ(exec("SELECT value FROM a WHERE key = 'k'").rows[0][0], "from-a");
  EXPECT_EQ(exec("SELECT value FROM b WHERE key = 'k'").rows[0][0], "from-b");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM a").rows[0][0], "1");
}

TEST_F(SqlTest, DropTableRemovesRows) {
  exec("CREATE TABLE kv");
  exec("INSERT INTO kv VALUES ('k1', 'v')");
  exec("INSERT INTO kv VALUES ('k2', 'v')");
  const auto drop = exec("DROP TABLE kv");
  ASSERT_TRUE(drop.ok);
  EXPECT_EQ(drop.affected, 2u);
  EXPECT_FALSE(exec("SELECT COUNT(*) FROM kv").ok);  // table gone
  // Recreate: starts empty.
  exec("CREATE TABLE kv");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM kv").rows[0][0], "0");
}

TEST_F(SqlTest, TransactionsCommitAndRollback) {
  exec("CREATE TABLE kv");
  ASSERT_TRUE(exec("BEGIN").ok);
  exec("INSERT INTO kv VALUES ('a', '1')");
  exec("INSERT INTO kv VALUES ('b', '2')");
  ASSERT_TRUE(exec("COMMIT").ok);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM kv").rows[0][0], "2");

  ASSERT_TRUE(exec("BEGIN").ok);
  exec("INSERT INTO kv VALUES ('c', '3')");
  ASSERT_TRUE(exec("ROLLBACK").ok);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM kv").rows[0][0], "2");
}

TEST_F(SqlTest, TransactionErrors) {
  EXPECT_FALSE(exec("COMMIT").ok);
  EXPECT_FALSE(exec("ROLLBACK").ok);
  exec("BEGIN");
  EXPECT_FALSE(exec("BEGIN").ok);
  exec("ROLLBACK");
}

TEST_F(SqlTest, QuotedStringEscapes) {
  exec("CREATE TABLE kv");
  ASSERT_TRUE(exec("INSERT INTO kv VALUES ('o''brien', 'it''s fine')").ok);
  const auto sel = exec("SELECT value FROM kv WHERE key = 'o''brien'");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0], "it's fine");
}

TEST_F(SqlTest, IdentifiersAreCaseInsensitive) {
  exec("create table KV");
  ASSERT_TRUE(exec("insert into kv values ('k', 'v')").ok);
  EXPECT_EQ(exec("SELECT VALUE FROM Kv WHERE KEY = 'k'").rows[0][0], "v");
}

TEST_F(SqlTest, SyntaxErrors) {
  EXPECT_FALSE(exec("").ok);
  EXPECT_FALSE(exec("BANANA").ok);
  EXPECT_FALSE(exec("CREATE kv").ok);
  EXPECT_FALSE(exec("INSERT INTO nope VALUES ('a','b')").ok);
  exec("CREATE TABLE kv");
  EXPECT_FALSE(exec("INSERT INTO kv VALUES ('a')").ok);
  EXPECT_FALSE(exec("INSERT INTO kv VALUES ('a', 'b'").ok);
  EXPECT_FALSE(exec("SELECT nonsense FROM kv").ok);
  EXPECT_FALSE(exec("SELECT value FROM kv WHERE banana = 'x'").ok);
  EXPECT_FALSE(exec("INSERT INTO kv VALUES ('unterminated, 'v')").ok);
  EXPECT_FALSE(exec("INSERT INTO kv VALUES ('', 'v')").ok);
}

TEST_F(SqlTest, ExecScriptStopsAtFirstError) {
  const auto r = sql_.exec_script(
      "CREATE TABLE kv; INSERT INTO kv VALUES ('a','1'); BOGUS; INSERT INTO kv VALUES ('b','2')");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM kv").rows[0][0], "1");
}

TEST_F(SqlTest, PersistsAcrossReopen) {
  exec("CREATE TABLE kv");
  exec("INSERT INTO kv VALUES ('durable', 'yes')");
  Database reopened(vfs_, "/sql.db");
  SqlEngine sql2(reopened);
  EXPECT_EQ(sql2.exec("SELECT value FROM kv WHERE key = 'durable'").rows[0][0], "yes");
}

}  // namespace
