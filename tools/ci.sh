#!/bin/sh
# CI driver: build + run the full test suite four times —
#   1. plain RelWithDebInfo build,
#   2. ThreadSanitizer build (-DSGXPERF_SANITIZE=thread), which must report
#      zero races across the concurrent recording paths,
#   3. AddressSanitizer build (-DSGXPERF_SANITIZE=address), which must report
#      zero heap errors / leaks,
#   4. UBSan build (-DSGXPERF_SANITIZE=undefined) with recovery disabled, so
#      any undefined behaviour aborts the test that triggered it.
# The plain build then runs the full bench suite in --smoke mode with
# --out-dir pointed at the repo root (so the BENCH_*.json trajectory is
# refreshed in place and can be committed), validates every artefact with
# tools/json_check, and runs a flamegraph golden check: `sgxperf flamegraph`
# over a deterministic single-threaded recording must reproduce
# tests/golden/flamegraph_demo.txt byte-for-byte (tools/stack_check also
# validates the collapsed-stack grammar).
#
# Every build (plain + all three sanitizer legs) additionally runs a bounded
# `sgxperf monitor` soak: a deterministic single-threaded demo workload whose
# streamed alert log must match tests/golden/monitor_demo_alerts.txt
# byte-for-byte — virtual time makes the online analyser's alert onsets
# reproducible, so any drift is a real behaviour change.
#
# Every build also regenerates one golden stress corpus (`sgxperf stress`,
# lockstep + fixed seed => deterministic trace) and diffs `sgxperf stats
# --json` against tests/golden/stress_corpus_stats.json to catch silent
# detector-threshold drift.
#
# Every build also runs the fleet golden gate: `sgxperf fleet snapshot
# --corpus` drives three deterministic stress producers through monitor
# sessions, wire framing and the fleet aggregator, and the merged query
# snapshot must match tests/golden/fleet_corpus.json byte-for-byte — in the
# sanitizer legs too, so the whole producer->merge->query path is proven
# race-free and exact.
#
# Every build also runs the doctor golden gate: the event-conservation audit
# over the stress corpus (trace + packed-store modes) and a live demo run
# must pass byte-stably, and the status / Prometheus emitters must validate
# (json_check, json_check --prom).
#
# After the bench smoke run, bench_diff compares the refreshed BENCH_*.json
# against the committed baselines (advisory: wall-clock metrics vary with
# machine load, so drift is reported but does not fail the build).
#
# Usage: tools/ci.sh [jobs]   (run from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

monitor_soak() {
  build_dir="$1"
  soak_dir="$build_dir/monitor-soak"
  rm -rf "$soak_dir"
  mkdir -p "$soak_dir"
  "$build_dir/tools/sgxperf" monitor --threads 1 --calls 60 --window 100000 \
    --alert-log "$soak_dir/alerts.txt" --out "$soak_dir/soak.bin" >/dev/null 2>/dev/null
  if ! cmp -s "$soak_dir/alerts.txt" "$root/tests/golden/monitor_demo_alerts.txt"; then
    echo "error: monitor soak alert log diverged from the golden:" >&2
    diff -u "$root/tests/golden/monitor_demo_alerts.txt" "$soak_dir/alerts.txt" >&2 || true
    exit 1
  fi
  echo "monitor soak alert log matches golden"
}

# Regenerate one golden stress corpus and diff its post-mortem statistics:
# the stressors are deterministic under virtual time (lockstep scheduling,
# fixed seed), so any drift in `sgxperf stats --json` is a real change in a
# detector threshold, the cost model or the trace format — exactly the silent
# drift this leg exists to catch.
stress_corpus() {
  build_dir="$1"
  corpus_dir="$build_dir/stress-corpus"
  rm -rf "$corpus_dir"
  mkdir -p "$corpus_dir"
  "$build_dir/tools/sgxperf" stress --stressor ocall-storm --threads 2 \
    --duration 20000000 --seed 7 --out "$corpus_dir/corpus.bin" >/dev/null
  "$build_dir/tools/sgxperf" stats "$corpus_dir/corpus.bin" --json > "$corpus_dir/stats.json"
  if ! cmp -s "$corpus_dir/stats.json" "$root/tests/golden/stress_corpus_stats.json"; then
    echo "error: stress corpus stats diverged from the golden:" >&2
    diff -u "$root/tests/golden/stress_corpus_stats.json" "$corpus_dir/stats.json" >&2 || true
    exit 1
  fi
  echo "stress corpus stats match golden"
}

# Fleet golden gate: the in-process corpus (3 deterministic stress producers
# -> monitor sessions -> wire frames -> aggregator) must produce a
# byte-stable merged query snapshot.  Runs in every leg: under the
# sanitizers this covers the concurrent ingest/query locking too.
fleet_corpus() {
  build_dir="$1"
  fleet_dir="$build_dir/fleet-corpus"
  rm -rf "$fleet_dir"
  mkdir -p "$fleet_dir"
  "$build_dir/tools/sgxperf" fleet snapshot --corpus > "$fleet_dir/snapshot.json"
  if ! cmp -s "$fleet_dir/snapshot.json" "$root/tests/golden/fleet_corpus.json"; then
    echo "error: fleet corpus snapshot diverged from the golden:" >&2
    diff -u "$root/tests/golden/fleet_corpus.json" "$fleet_dir/snapshot.json" >&2 || true
    exit 1
  fi
  "$build_dir/tools/json_check" "$fleet_dir/snapshot.json"
  echo "fleet corpus snapshot matches golden"
}

# Orderliness golden gate: the violating `order` stressor is deterministic
# (lockstep + fixed seed), so `sgxperf order check --json` over its trace —
# validated against the model the soak embedded — must reproduce the exact
# violation sites, counts and onsets, and must exit 1 (violations found).
# The learned-spec emitter is exercised and json_checked alongside.
order_corpus() {
  build_dir="$1"
  order_dir="$build_dir/order-corpus"
  rm -rf "$order_dir"
  mkdir -p "$order_dir"
  "$build_dir/tools/sgxperf" stress --stressor order --threads 2 \
    --duration 20000000 --seed 7 --out "$order_dir/order.bin" >/dev/null
  rc=0
  (cd "$order_dir" && "$build_dir/tools/sgxperf" order check order.bin --json \
    > "$order_dir/check.json") || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "error: order check exited $rc, expected 1 (violations present)" >&2
    exit 1
  fi
  if ! cmp -s "$order_dir/check.json" "$root/tests/golden/order_check_corpus.json"; then
    echo "error: order check report diverged from the golden:" >&2
    diff -u "$root/tests/golden/order_check_corpus.json" "$order_dir/check.json" >&2 || true
    exit 1
  fi
  (cd "$order_dir" && "$build_dir/tools/sgxperf" order learn order.bin --json \
    > "$order_dir/learn.json")
  "$build_dir/tools/json_check" "$order_dir/check.json"
  "$build_dir/tools/json_check" "$order_dir/learn.json"
  echo "order check report matches golden"
}

# Store golden gate: pack the deterministic stress corpus into an SGXSTORE
# directory.  `store info --json` must match the committed golden — section
# lengths, row counts and CRC32s are all deterministic, so any drift is a
# format change — the unpacked flat trace must be byte-identical to the
# input, and `stats` on the store (which loads only the summary sections)
# must produce valid JSON end to end.
store_corpus() {
  build_dir="$1"
  store_dir="$build_dir/store-corpus"
  rm -rf "$store_dir"
  mkdir -p "$store_dir"
  "$build_dir/tools/sgxperf" stress --stressor ocall-storm --threads 2 \
    --duration 20000000 --seed 7 --out "$store_dir/corpus.bin" >/dev/null
  "$build_dir/tools/sgxperf" store pack "$store_dir/corpus.bin" "$store_dir/corpus.store" \
    --json > "$store_dir/info.json"
  if ! cmp -s "$store_dir/info.json" "$root/tests/golden/store_info_corpus.json"; then
    echo "error: store info diverged from the golden:" >&2
    diff -u "$root/tests/golden/store_info_corpus.json" "$store_dir/info.json" >&2 || true
    exit 1
  fi
  "$build_dir/tools/sgxperf" store unpack "$store_dir/corpus.store" \
    "$store_dir/roundtrip.bin" >/dev/null
  if ! cmp -s "$store_dir/corpus.bin" "$store_dir/roundtrip.bin"; then
    echo "error: store pack -> unpack round trip is not byte-identical" >&2
    exit 1
  fi
  "$build_dir/tools/sgxperf" stats "$store_dir/corpus.store" --json > "$store_dir/stats.json"
  "$build_dir/tools/json_check" "$store_dir/info.json"
  "$build_dir/tools/json_check" "$store_dir/stats.json"
  echo "store corpus info matches golden; round trip byte-identical"
}

# Doctor golden gate: the event-conservation audit (`sgxperf doctor`) over
# the deterministic stress corpus must be byte-stable and pass (exit 0) in
# trace mode, pass on the packed store (whose audit genuinely cross-checks
# the chunk directory against the index), and pass over a live demo run.
# The status and Prometheus emitters are validated alongside: `fleet status
# --corpus` must be valid schema_version'd JSON, `metrics --prom` must be
# valid Prometheus text exposition (json_check --prom).
doctor_corpus() {
  build_dir="$1"
  doc_dir="$build_dir/doctor-corpus"
  rm -rf "$doc_dir"
  mkdir -p "$doc_dir"
  "$build_dir/tools/sgxperf" stress --stressor ocall-storm --threads 2 \
    --duration 20000000 --seed 7 --out "$doc_dir/corpus.bin" >/dev/null
  "$build_dir/tools/sgxperf" doctor "$doc_dir/corpus.bin" --json > "$doc_dir/doctor.json"
  if ! cmp -s "$doc_dir/doctor.json" "$root/tests/golden/doctor_stress_corpus.json"; then
    echo "error: doctor report diverged from the golden:" >&2
    diff -u "$root/tests/golden/doctor_stress_corpus.json" "$doc_dir/doctor.json" >&2 || true
    exit 1
  fi
  "$build_dir/tools/json_check" "$doc_dir/doctor.json"
  "$build_dir/tools/sgxperf" store pack "$doc_dir/corpus.bin" "$doc_dir/corpus.store" >/dev/null
  "$build_dir/tools/sgxperf" doctor "$doc_dir/corpus.store" --json > "$doc_dir/doctor_store.json"
  "$build_dir/tools/json_check" "$doc_dir/doctor_store.json"
  "$build_dir/tools/sgxperf" doctor --workload demo --threads 1 --calls 60 --json \
    > "$doc_dir/doctor_live.json"
  "$build_dir/tools/json_check" "$doc_dir/doctor_live.json"
  "$build_dir/tools/sgxperf" fleet status --corpus > "$doc_dir/status.json"
  "$build_dir/tools/json_check" "$doc_dir/status.json"
  "$build_dir/tools/sgxperf" metrics "$doc_dir/corpus.bin" --prom > "$doc_dir/metrics.prom"
  "$build_dir/tools/json_check" --prom "$doc_dir/metrics.prom"
  echo "doctor report matches golden; status/prom emitters valid"
}

run_suite() {
  build_dir="$1"
  shift
  cmake -S "$root" -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  monitor_soak "$build_dir"
  stress_corpus "$build_dir"
  fleet_corpus "$build_dir"
  order_corpus "$build_dir"
  store_corpus "$build_dir"
  doctor_corpus "$build_dir"
}

echo "=== plain build ==="
run_suite "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== bench smoke run (JSON artefacts) ==="
smoke_dir="$root/build/bench-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
benches="bench_transitions bench_logger_overhead bench_paging bench_switchless \
         bench_sync bench_merge bench_replay bench_analyzer bench_glamdring \
         bench_securekeeper bench_sqlite bench_talos bench_online bench_stress \
         bench_fleet bench_store"
# Snapshot the committed baselines before the smoke run refreshes them in
# place — bench_diff compares against what was in the tree.
baseline_dir="$smoke_dir/baseline"
mkdir -p "$baseline_dir"
for f in "$root"/BENCH_*.json; do
  [ -f "$f" ] && cp "$f" "$baseline_dir/"
done
for bench in $benches; do
  echo "--- $bench --smoke"
  (cd "$smoke_dir" && "$root/build/bench/$bench" --smoke --out-dir "$root" >/dev/null)
done
count=0
diff_files=""
for bench in $benches; do
  artefact="$root/BENCH_${bench#bench_}.json"
  if [ ! -f "$artefact" ]; then
    echo "error: $bench did not write $artefact" >&2
    exit 1
  fi
  "$root/build/tools/json_check" "$artefact"
  count=$((count + 1))
  diff_files="$diff_files $(basename "$artefact")"
done
echo "$count bench artefacts valid (refreshed in $root)"

echo "=== bench regression diff (advisory) ==="
# Every artefact goes to bench_diff: benches without a committed baseline are
# *reported* as skipped in its summary instead of being silently dropped from
# the comparison (--strict would turn those skips into failures).
# shellcheck disable=SC2086 — diff_files is a word list by construction.
"$root/build/tools/bench_diff" --fresh "$root" --baseline "$baseline_dir" \
  --threshold 0.25 $diff_files \
  || echo "bench_diff: drift or missing baselines flagged (advisory — not failing the build)"

echo "=== flamegraph golden check ==="
# Single-threaded demo recording: virtual time makes it fully deterministic,
# so the collapsed stacks must match the committed golden byte-for-byte.
"$root/build/tools/sgxperf" record "$smoke_dir/fg_demo.bin" --threads 1 --calls 25 >/dev/null
"$root/build/tools/sgxperf" flamegraph "$smoke_dir/fg_demo.bin" > "$smoke_dir/fg_demo.txt"
"$root/build/tools/stack_check" "$smoke_dir/fg_demo.txt" \
  --golden "$root/tests/golden/flamegraph_demo.txt"

echo "=== ThreadSanitizer build ==="
# halt_on_error makes any report fail the run; TSan's exit code then fails ctest.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_suite "$root/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=thread

echo "=== AddressSanitizer build ==="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
  run_suite "$root/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=address

echo "=== UndefinedBehaviorSanitizer build ==="
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  run_suite "$root/build-ubsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=undefined

echo "=== all suites passed ==="
