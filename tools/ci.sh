#!/bin/sh
# CI driver: build + run the full test suite four times —
#   1. plain RelWithDebInfo build,
#   2. ThreadSanitizer build (-DSGXPERF_SANITIZE=thread), which must report
#      zero races across the concurrent recording paths,
#   3. AddressSanitizer build (-DSGXPERF_SANITIZE=address), which must report
#      zero heap errors / leaks,
#   4. UBSan build (-DSGXPERF_SANITIZE=undefined) with recovery disabled, so
#      any undefined behaviour aborts the test that triggered it.
# The plain build then runs the bench suite in --smoke mode and validates
# every BENCH_*.json artefact with tools/json_check, plus a flamegraph
# golden check: `sgxperf flamegraph` over a deterministic single-threaded
# recording must reproduce tests/golden/flamegraph_demo.txt byte-for-byte
# (tools/stack_check also validates the collapsed-stack grammar).
#
# Usage: tools/ci.sh [jobs]   (run from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
  build_dir="$1"
  shift
  cmake -S "$root" -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "=== plain build ==="
run_suite "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== bench smoke run (JSON artefacts) ==="
smoke_dir="$root/build/bench-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
for bench in bench_transitions bench_logger_overhead bench_paging \
             bench_switchless bench_sync bench_merge bench_replay; do
  echo "--- $bench --smoke"
  (cd "$smoke_dir" && "$root/build/bench/$bench" --smoke >/dev/null)
done
count=0
for artefact in "$smoke_dir"/BENCH_*.json; do
  "$root/build/tools/json_check" "$artefact"
  count=$((count + 1))
done
if [ "$count" -lt 5 ]; then
  echo "error: expected at least 5 BENCH_*.json artefacts, got $count" >&2
  exit 1
fi
echo "$count bench artefacts valid"

echo "=== flamegraph golden check ==="
# Single-threaded demo recording: virtual time makes it fully deterministic,
# so the collapsed stacks must match the committed golden byte-for-byte.
"$root/build/tools/sgxperf" record "$smoke_dir/fg_demo.bin" --threads 1 --calls 25 >/dev/null
"$root/build/tools/sgxperf" flamegraph "$smoke_dir/fg_demo.bin" > "$smoke_dir/fg_demo.txt"
"$root/build/tools/stack_check" "$smoke_dir/fg_demo.txt" \
  --golden "$root/tests/golden/flamegraph_demo.txt"

echo "=== ThreadSanitizer build ==="
# halt_on_error makes any report fail the run; TSan's exit code then fails ctest.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_suite "$root/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=thread

echo "=== AddressSanitizer build ==="
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
  run_suite "$root/build-asan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=address

echo "=== UndefinedBehaviorSanitizer build ==="
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  run_suite "$root/build-ubsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=undefined

echo "=== all suites passed ==="
