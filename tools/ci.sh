#!/bin/sh
# CI driver: build + run the full test suite twice —
#   1. plain RelWithDebInfo build,
#   2. ThreadSanitizer build (-DSGXPERF_SANITIZE=thread), which must report
#      zero races across the concurrent recording paths.
#
# Usage: tools/ci.sh [jobs]   (run from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
  build_dir="$1"
  shift
  cmake -S "$root" -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "=== plain build ==="
run_suite "$root/build" -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== ThreadSanitizer build ==="
# halt_on_error makes any report fail the run; TSan's exit code then fails ctest.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  run_suite "$root/build-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSGXPERF_SANITIZE=thread

echo "=== all suites passed ==="
