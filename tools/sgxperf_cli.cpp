// sgxperf — offline analysis of recorded traces.
//
// The real tool's workflow is record-then-analyse: the logger serialises all
// events to a database, and the analyser is run on it afterwards, possibly
// many times with different options.  This CLI provides that second half:
//
//   sgxperf report  <trace.bin> [--edl FILE] [--enclave ID]   text report
//   sgxperf graph   <trace.bin>                               DOT call graph
//   sgxperf hist    <trace.bin> --call NAME [--bins N]        duration histogram
//   sgxperf scatter <trace.bin> --call NAME                   time series (CSV)
//   sgxperf csv     <trace.bin> <directory>                   dump all tables
//   sgxperf stats   <trace.bin>                               general statistics
//   sgxperf compare <before.bin> <after.bin>                  optimisation diff
//   sgxperf timeline <trace.bin>                              per-thread activity
//   sgxperf metrics <trace.bin>                               telemetry summary
//   sgxperf export  <trace.bin> --chrome FILE                 Chrome/Perfetto JSON
//   sgxperf flamegraph <trace.bin> [--tree]                   collapsed stacks
//   sgxperf record  <out.bin> [--threads N] [--calls N]       demo recording
//   sgxperf top     [--workload demo|kv|db] [--frames N]      live monitor
//   sgxperf monitor [--workload demo|kv|db] [--window NS]     online detection daemon
//   sgxperf stress  --stressor cpu|vm|sync|ocall-storm|mixed  labeled stress run
//   sgxperf serve   --socket PATH [--query-socket PATH]       fleet aggregation daemon
//   sgxperf fleet   [snapshot|top|alerts|series|status] ...   query the fleet daemon
//   sgxperf doctor  [<trace.bin>|<dir.store>] [--json]        event-conservation audit
//
// `record` exercises the first half on a built-in multi-threaded workload:
// it attaches the logger (sharded per-thread buffers), runs N threads of
// ecall+ocall pairs, merges the shards and saves the trace — useful as a
// quick source of traces for the other commands and as a smoke test of the
// concurrent recording path.
//
// `top` is the third workflow: neither record-then-analyse nor post-mortem,
// but live.  It attaches the logger to a running workload, subscribes to the
// lock-free event stream and repaints calls/s, per-site latency percentiles,
// AEX rate and EPC residency while the workload is still in flight.
//
// `monitor` is `top`'s daemon sibling: instead of rendering frames it feeds
// the stream into the online analyser (perf/online.hpp), emits every alert
// transition as a JSON line on stderr the moment the predicate flips, and
// persists the windowed time-series + alert history as a v5 trace.  On a
// quiesced run its end-of-run verdicts equal `sgxperf report`'s findings.
//
// `serve` is the fleet half: a daemon that ingests binary alert/window
// frames (fleet/wire.hpp) from N `monitor --fleet` producers over a UNIX
// socket, merges the per-site HDR deltas into one keyed time-series and
// answers `fleet` queries over a second socket.  `fleet --corpus` runs the
// built-in deterministic 3-producer stress corpus in-process instead — the
// CI golden gate for the whole pipeline.
//
// Weights of the Eq. 1-3 detectors are tunable: --eq1-alpha 0.5 etc.
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fleet/corpus.hpp"
#include "fleet/server.hpp"
#include "fleet/wire.hpp"
#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "minikv/driver.hpp"
#include "perf/analyzer.hpp"
#include "perf/calltree.hpp"
#include "perf/compare.hpp"
#include "perf/live.hpp"
#include "perf/logger.hpp"
#include "perf/online.hpp"
#include "perf/session.hpp"
#include "perf/timeline.hpp"
#include "perf/report.hpp"
#include "replay/engine.hpp"
#include "replay/render.hpp"
#include "sgxsim/edl.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/harness.hpp"
#include "support/json.hpp"
#include "support/strutil.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/prometheus.hpp"
#include "tracedb/open.hpp"
#include "tracedb/query.hpp"
#include "tracedb/store/store.hpp"

namespace {

struct Options {
  std::string command;
  std::string trace_path;
  std::string edl_path;
  std::string call_name;
  std::string csv_dir;
  std::string chrome_path;
  tracedb::EnclaveId enclave_id = 1;
  std::size_t bins = 100;
  std::size_t threads = 4;
  std::size_t calls = 1000;
  support::Nanoseconds sample_ns = 0;  // 0 = telemetry sampling off
  bool json = false;
  bool tree = false;                   // flamegraph: indented tree, not stacks
  std::string workload = "demo";       // top/monitor: demo | kv | db
  std::size_t frames = 5;              // top: frames to render
  std::size_t interval_ms = 100;       // top/monitor: wall-clock poll interval
  support::Nanoseconds window_ns = 0;  // top/monitor: aggregation window (0 = default)
  std::string alert_log_path;          // monitor: duplicate alert JSON-lines here
  std::string out_path;                // monitor/stress: save the v5 trace here
  // stress flags
  std::string stressor;                        // cpu | vm | sync | ocall-storm | mixed
  support::Nanoseconds duration_ns = 200'000'000;  // virtual-time budget
  std::size_t intensity = 1;
  std::uint64_t seed = 42;
  // whatif / compare --whatif scenario flags
  std::string switchless_site;
  std::string eliminate_site;
  std::string merge_site;
  std::string workers_range = "1..8";      // --workers N or A..B
  std::string cost_profile;                // unpatched | spectre | l1tf
  std::string recorded_profile = "unpatched";
  std::size_t epc_mb = 0;                  // 0 = no EPC resize pass
  std::size_t replay_threads = 0;          // 0 = hardware concurrency
  bool all_recommendations = false;
  bool whatif = false;                     // compare: diff against a replayed scenario
  // fleet / serve flags
  std::string socket_path;                 // serve: ingest socket path
  std::string query_socket_path;           // serve: query socket; fleet: daemon to ask
  std::size_t retention = 256;             // serve/fleet: fleet windows retained
  std::string checkpoint_path;             // serve: periodic v5 checkpoint trace
  std::uint64_t checkpoint_every = 0;      // serve: checkpoint every N merged windows
  std::uint64_t idle_exit_ms = 0;          // serve: exit after idle (0 = run forever)
  std::string fleet_socket;                // monitor: stream wire frames to this ingest socket
  std::string fleet_host = "localhost";    // monitor: producer host identity
  std::string rank_by = "p99";             // fleet top: p99 | transitions | paging
  std::size_t top_n = 10;                  // fleet top: rows
  bool corpus = false;                     // fleet: run the built-in corpus in-process
  std::string fleet_subcommand;            // fleet: snapshot | top | alerts | series
  std::vector<std::string> fleet_args;     // fleet series: <host> <enclave> <site>
  // order flags
  std::string order_subcommand;            // order: learn | check
  std::string model_path;                  // order check / monitor: declared spec file
  std::string embed_path;                  // order learn: write a rules-embedded v6 copy
  // store flags
  std::string store_subcommand;            // store: pack | unpack | info | compact
  std::vector<std::string> store_args;     // store: positional paths
  // observability flags (DESIGN.md §13)
  bool prom = false;                       // metrics: Prometheus text format
  std::uint64_t max_loss = 0;              // doctor: attributed-drop budget
  std::string prom_out_path;               // serve: atomic Prometheus snapshot file
  std::uint64_t self_stat_ms = 0;          // serve: self-stat JSON line cadence
  perf::AnalyzerConfig config;
};

void usage() {
  std::fputs(
      "usage: sgxperf <command> <trace.bin> [options]\n"
      "commands:\n"
      "  report   full analysis report (findings + recommendations)\n"
      "  stats    general statistics only\n"
      "  graph    Graphviz DOT call graph (Figure 5 style) to stdout\n"
      "  hist     ASCII+CSV duration histogram    (--call NAME [--bins N])\n"
      "  scatter  duration-over-time CSV          (--call NAME)\n"
      "  csv      export all tables as CSV        (csv <trace> <directory>)\n"
      "  compare  diff two traces                 (compare <before> <after>)\n"
      "  timeline per-thread enclave activity\n"
      "  metrics  telemetry metric series recorded in the trace\n"
      "  export   convert to another format       (export <trace> --chrome FILE)\n"
      "  flamegraph  collapsed call stacks for flamegraph.pl  (--tree for ASCII tree)\n"
      "  record   record a demo workload          (record <out.bin> [--threads N] [--calls N])\n"
      "  top      live monitor over a running workload (top [--workload demo|kv|db]\n"
      "           [--frames N] [--interval N] [--window NS] [--threads N] [--calls N])\n"
      "  monitor  online anti-pattern detection over a running workload:\n"
      "           monitor [--workload demo|kv|db] [--threads N] [--calls N]\n"
      "           [--window NS] [--interval N] [--alert-log FILE] [--out trace.bin] [--json]\n"
      "           alerts stream to stderr as JSON lines; --out saves the v5 trace\n"
      "  stress   run a labeled stressor through the logger + online analyser:\n"
      "           stress --stressor cpu|vm|sync|ocall-storm|mixed [--threads N]\n"
      "           [--duration NS] [--intensity N] [--seed N] [--epc-mb N]\n"
      "           [--window NS] [--out trace.bin] [--json]\n"
      "           exits nonzero if the run violates the stressor's label set\n"
      "  serve    fleet aggregation daemon: ingest monitor streams, answer queries:\n"
      "           serve --socket PATH [--query-socket PATH] [--retention N]\n"
      "           [--checkpoint FILE [--checkpoint-every N]] [--idle-exit-ms N] [--json]\n"
      "  fleet    query a serve daemon (or the built-in deterministic corpus):\n"
      "           fleet [snapshot|top|alerts|series|status] (--query-socket PATH | --corpus)\n"
      "           [--by p99|transitions|paging] [--n N] [--out trace.bin]\n"
      "           fleet series <host> <enclave> <site> ...   (always JSON on stdout)\n"
      "           fleet status: producer lag + conservation ledger (+ daemon\n"
      "           self-telemetry when asked over --query-socket)\n"
      "  doctor   audit event conservation (produced == delivered + drops per\n"
      "           pipeline stage) and report the first leaking stage:\n"
      "           doctor <trace.bin|dir.store>               post-mortem audit\n"
      "           doctor --workload demo|kv|db [--threads N] [--calls N]  live run\n"
      "           doctor --query-socket PATH                 audit a serve daemon\n"
      "           [--json] [--max-loss N]   exits 0 ok / 1 conservation violated /\n"
      "           2 usage or IO error / 3 attributed loss exceeds --max-loss\n"
      "  store    multi-file SGXSTORE trace databases (lazy section loading):\n"
      "           store pack <trace.bin> <dir.store>      split a flat trace\n"
      "           store unpack <dir.store> <out.bin>      back to a flat v6 file\n"
      "           store info <dir.store> [--json]         section table + row counts\n"
      "           store compact <in...> --out <dir.store> fold stores/traces into one\n"
      "           any command reading a trace also accepts a store directory, and\n"
      "           summary commands (stats, metrics) then skip the event section\n"
      "  order    interface-orderliness models (learn from a baseline, check a trace):\n"
      "           order learn <trace.bin> [--out spec.txt] [--embed out.bin] [--json]\n"
      "           order check <trace.bin> [--model spec.txt] [--json]\n"
      "           check uses --model, or the rules embedded in a v6 trace; exits 1\n"
      "           when violations are found\n"
      "  whatif   predict speedups by replaying the trace under a scenario:\n"
      "           whatif <trace.bin> [--switchless SITE [--workers N|A..B]]\n"
      "           [--eliminate SITE] [--merge SITE] [--cost-profile P] [--epc-mb N]\n"
      "           [--all-recommendations] [--json]   (no flags: validation only)\n"
      "options:\n"
      "  --edl FILE        enclave EDL for security analysis\n"
      "  --enclave ID      enclave id the EDL/call belongs to (default 1)\n"
      "  --call NAME       call to plot (as shown by 'stats')\n"
      "  --bins N          histogram bins (default 100)\n"
      "  --eq1-alpha X --eq1-beta X --eq1-gamma X    Eq.1 weights\n"
      "  --eq2-gamma X                                Eq.2 threshold\n"
      "  --eq3-epsilon X --eq3-lambda X               Eq.3 weights\n"
      "  --transition-ns N  ecall transition time to subtract (default 4205)\n"
      "  --chrome FILE     (export) write Chrome trace-event JSON to FILE\n"
      "  --sample-ns N     (record) telemetry sample period, virtual ns (0 = off)\n"
      "  --json            (record, stats) machine-readable JSON on stdout\n"
      "  --tree            (flamegraph) indented call tree instead of collapsed stacks\n"
      "  --workload W      (top, monitor) workload to drive: demo, kv (minikv), db (minidb)\n"
      "  --frames N        (top) frames to render before exiting (default 5)\n"
      "  --interval N      (top, monitor) wall-clock poll/repaint interval in ms\n"
      "                    (default 100; --interval-ms is an alias)\n"
      "  --window NS       (top, monitor) aggregation window in virtual ns\n"
      "                    (top default: cumulative; monitor default: 1000000 = 1ms)\n"
      "  --alert-log FILE  (monitor) also append alert JSON lines to FILE\n"
      "  --fleet PATH      (monitor) also stream wire frames to a serve ingest socket\n"
      "  --fleet-host H    (monitor) producer host identity for --fleet (default localhost)\n"
      "  --socket PATH     (serve) ingest UNIX socket producers connect to\n"
      "  --query-socket P  (serve, fleet) query UNIX socket\n"
      "  --retention N     (serve, fleet --corpus) fleet windows retained (default 256)\n"
      "  --checkpoint FILE (serve) persist the fleet series as a v5 trace\n"
      "  --checkpoint-every N  (serve) checkpoint every N merged windows (0 = at exit)\n"
      "  --idle-exit-ms N  (serve) exit after N ms with no connection (0 = run forever)\n"
      "  --prom            (metrics) Prometheus text exposition format on stdout\n"
      "  --prom-out FILE   (serve) atomic Prometheus snapshot at checkpoint cadence\n"
      "  --self-stat-ms N  (serve) emit a status JSON line to stderr every N ms\n"
      "  --max-loss N      (doctor) attributed-drop budget before exit 3 (default 0)\n"
      "  --by M            (fleet top) ranking metric: p99, transitions, paging\n"
      "  --n N             (fleet top) rows to return (default 10)\n"
      "  --corpus          (fleet) aggregate the built-in 3-producer stress corpus\n"
      "  --out FILE        (monitor, stress) save the trace (windows + alerts) to FILE;\n"
      "                    (order learn) write the model spec to FILE\n"
      "  --model FILE      (order check) declared model spec to validate against\n"
      "  --embed FILE      (order learn) save a copy of the trace with the learned\n"
      "                    rules embedded (self-checking v6 trace)\n"
      "  --order-model F   (monitor, stress) validate the live stream against the\n"
      "                    declared model spec in F (orderliness alerts)\n"
      "  --stressor NAME   (stress) stressor to run: cpu, vm, sync, ocall-storm,\n"
      "                    mixed, order, order-clean\n"
      "  --duration NS     (stress) virtual-time budget per run (default 200000000)\n"
      "  --intensity N     (stress) per-op payload scale (default 1)\n"
      "  --seed N          (stress) rng seed; fixed seed => deterministic bogo-ops\n"
      "  --switchless SITE (whatif) serve SITE via in-enclave workers; sweeps --workers\n"
      "  --workers N|A..B  (whatif) worker count or sweep range (default 1..8)\n"
      "  --eliminate SITE  (whatif) remove SITE's transition overhead entirely\n"
      "  --merge SITE      (whatif) batch/merge SITE into its indirect parents (Eq. 3)\n"
      "  --cost-profile P  (whatif) re-cost transitions: unpatched, spectre, l1tf\n"
      "  --epc-mb N        (whatif) re-simulate recorded faults with an N-MiB EPC\n"
      "  --all-recommendations  (whatif) rank every analyser recommendation\n"
      "  --recorded-profile P   (whatif) profile the trace was recorded under\n"
      "  --replay-threads N     (whatif) scenario replay parallelism (0 = auto)\n"
      "  --whatif          (compare) diff the trace against a replayed scenario\n",
      stderr);
}

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  int i;
  if (opts.command == "top" || opts.command == "monitor" || opts.command == "stress" ||
      opts.command == "serve" || opts.command == "fleet" || opts.command == "doctor") {
    i = 2;  // these drive their own workload / daemon — no trace path argument
    if (opts.command == "fleet" && argc > 2 && argv[2][0] != '-') {
      opts.fleet_subcommand = argv[2];
      i = 3;
    }
    // doctor's target (flat trace or .store dir) is optional: without one it
    // audits a live --workload run or a serve daemon via --query-socket.
    if (opts.command == "doctor" && argc > 2 && argv[2][0] != '-') {
      opts.trace_path = argv[2];
      i = 3;
    }
  } else if (opts.command == "order") {
    // order <learn|check> <trace.bin> [options]
    if (argc < 4) return false;
    opts.order_subcommand = argv[2];
    opts.trace_path = argv[3];
    i = 4;
  } else if (opts.command == "store") {
    // store <pack|unpack|info|compact> <paths...> [options]
    if (argc < 3) return false;
    opts.store_subcommand = argv[2];
    i = 3;
  } else {
    if (argc < 3) return false;
    opts.trace_path = argv[2];
    i = 3;
    if (opts.command == "csv") {
      if (argc < 4) return false;
      opts.csv_dir = argv[3];  // second path (csv directory)
      i = 4;
    } else if (opts.command == "compare") {
      // The after-trace is optional when --whatif supplies the scenario.
      if (argc >= 4 && argv[3][0] != '-') {
        opts.csv_dir = argv[3];
        i = 4;
      }
    }
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--edl") {
      opts.edl_path = next();
    } else if (arg == "--enclave") {
      opts.enclave_id = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--call") {
      opts.call_name = next();
    } else if (arg == "--bins") {
      opts.bins = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--threads") {
      opts.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--calls") {
      opts.calls = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--eq1-alpha") {
      opts.config.eq1_alpha = std::strtod(next(), nullptr);
    } else if (arg == "--eq1-beta") {
      opts.config.eq1_beta = std::strtod(next(), nullptr);
    } else if (arg == "--eq1-gamma") {
      opts.config.eq1_gamma = std::strtod(next(), nullptr);
    } else if (arg == "--eq2-gamma") {
      opts.config.eq2_gamma = std::strtod(next(), nullptr);
    } else if (arg == "--eq3-epsilon") {
      opts.config.eq3_epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--eq3-lambda") {
      opts.config.eq3_lambda = std::strtod(next(), nullptr);
    } else if (arg == "--transition-ns") {
      opts.config.ecall_transition_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--chrome") {
      opts.chrome_path = next();
    } else if (arg == "--sample-ns") {
      opts.sample_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--tree") {
      opts.tree = true;
    } else if (arg == "--switchless") {
      opts.switchless_site = next();
    } else if (arg == "--eliminate") {
      opts.eliminate_site = next();
    } else if (arg == "--merge") {
      opts.merge_site = next();
    } else if (arg == "--workers") {
      opts.workers_range = next();
    } else if (arg == "--cost-profile") {
      opts.cost_profile = next();
    } else if (arg == "--recorded-profile") {
      opts.recorded_profile = next();
    } else if (arg == "--epc-mb") {
      opts.epc_mb = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--replay-threads") {
      opts.replay_threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--all-recommendations") {
      opts.all_recommendations = true;
    } else if (arg == "--whatif") {
      opts.whatif = true;
    } else if (arg == "--workload") {
      opts.workload = next();
    } else if (arg == "--frames") {
      opts.frames = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval" || arg == "--interval-ms") {
      opts.interval_ms = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--window") {
      opts.window_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--alert-log") {
      opts.alert_log_path = next();
    } else if (arg == "--out") {
      opts.out_path = next();
    } else if (arg == "--stressor") {
      opts.stressor = next();
    } else if (arg == "--duration") {
      opts.duration_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--intensity") {
      opts.intensity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--socket") {
      opts.socket_path = next();
    } else if (arg == "--query-socket") {
      opts.query_socket_path = next();
    } else if (arg == "--retention") {
      opts.retention = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--checkpoint") {
      opts.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      opts.checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--idle-exit-ms" || arg == "--idle-exit") {
      opts.idle_exit_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fleet") {
      opts.fleet_socket = next();
    } else if (arg == "--fleet-host") {
      opts.fleet_host = next();
    } else if (arg == "--by") {
      opts.rank_by = next();
    } else if (arg == "--n") {
      opts.top_n = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--corpus") {
      opts.corpus = true;
    } else if (arg == "--prom") {
      opts.prom = true;
    } else if (arg == "--max-loss") {
      opts.max_loss = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--prom-out") {
      opts.prom_out_path = next();
    } else if (arg == "--self-stat-ms") {
      opts.self_stat_ms = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--model" || arg == "--order-model") {
      opts.model_path = next();
    } else if (arg == "--embed") {
      opts.embed_path = next();
    } else if (!arg.empty() && arg[0] != '-' && opts.command == "fleet") {
      opts.fleet_args.push_back(arg);  // fleet series <host> <enclave> <site>
    } else if (!arg.empty() && arg[0] != '-' && opts.command == "store") {
      opts.store_args.push_back(arg);  // store <sub> <paths...>
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

constexpr const char* kDemoEdl = R"(
enclave {
  trusted {
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

sgxsim::SgxStatus demo_ocall(void*) { return sgxsim::SgxStatus::kSuccess; }

/// Drives the built-in demo enclave: `threads` workers, each issuing `calls`
/// ecall+ocall pairs.  Shared by `record` and `top --workload demo`.
void run_demo_workload(sgxsim::Urts& urts, std::size_t threads, std::size_t calls) {
  using namespace sgxsim;
  EnclaveConfig config;
  config.name = "demo";
  config.tcs_count = threads + 1;
  const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kDemoEdl));
  urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
    ctx.work(500);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&demo_ocall});

  const auto body = [&] {
    for (std::size_t i = 0; i < calls; ++i) {
      urts.sgx_ecall(eid, 0, &table, nullptr);
    }
  };
  if (threads == 1) {
    body();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) workers.emplace_back(body);
    for (auto& w : workers) w.join();
  }
}

/// `sgxperf record`: run the built-in demo workload (--threads workers, each
/// issuing --calls ecall+ocall pairs) through the sharded logger and save the
/// merged trace to opts.trace_path.
int run_record(const Options& opts) {
  using namespace sgxsim;
  if (opts.threads == 0 || opts.calls == 0) {
    std::fputs("error: --threads and --calls must be > 0\n", stderr);
    return 2;
  }
  Urts urts;
  tracedb::TraceDatabase db;
  perf::LoggerConfig logger_config;
  logger_config.metric_sample_period_ns = opts.sample_ns;
  perf::Logger logger(db, logger_config);
  logger.attach(urts);

  run_demo_workload(urts, opts.threads, opts.calls);
  logger.detach();  // seals + merges the per-thread shards

  const auto stats = db.merge_stats();
  try {
    tracedb::save_trace(db, opts.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("calls", static_cast<std::uint64_t>(db.calls().size()));
    w.kv("aexs", static_cast<std::uint64_t>(db.aexs().size()));
    w.kv("paging", static_cast<std::uint64_t>(db.paging().size()));
    w.kv("syncs", static_cast<std::uint64_t>(db.syncs().size()));
    w.kv("shards_registered", static_cast<std::uint64_t>(db.shard_count()));
    w.kv("shards_merged", static_cast<std::uint64_t>(stats.shards_merged));
    w.kv("merges", static_cast<std::uint64_t>(stats.merges));
    w.kv("dropped_events", static_cast<std::uint64_t>(stats.dropped));
    w.kv("metric_series", static_cast<std::uint64_t>(db.metric_series().size()));
    w.kv("metric_samples", static_cast<std::uint64_t>(db.metric_samples().size()));
    w.kv("trace", opts.trace_path);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("recorded %zu calls, %zu AEXs, %zu paging events, %zu syncs\n", db.calls().size(),
                db.aexs().size(), db.paging().size(), db.syncs().size());
    std::printf("shards: %zu registered, %zu merged in %zu merge(s), %zu events dropped\n",
                db.shard_count(), stats.shards_merged, stats.merges, stats.dropped);
    if (db.metric_samples().size() > 0) {
      std::printf("telemetry: %zu metric series, %zu samples\n", db.metric_series().size(),
                  db.metric_samples().size());
    }
    std::printf("trace written to %s\n", opts.trace_path.c_str());
  }
  return 0;
}

/// Validates the `--workload` name shared by `top` and `monitor`.
bool check_workload(const Options& opts) {
  if (opts.workload == "demo" || opts.workload == "kv" || opts.workload == "db") return true;
  std::fprintf(stderr, "error: unknown workload '%s' (demo, kv, db)\n", opts.workload.c_str());
  return false;
}

/// Drives the selected built-in workload to completion — the body of the
/// worker thread `top` and `monitor` observe from the consumer side.
void run_named_workload(sgxsim::Urts& urts, const Options& opts) {
  if (opts.workload == "kv") {
    minikv::Store store(urts.clock());
    minikv::KvProxy proxy(urts, store);
    minikv::DriverConfig config;
    config.clients = opts.threads;
    config.ops_per_client = opts.calls;
    minikv::run_workload(proxy, config);
  } else if (opts.workload == "db") {
    minidb::HostVfs vfs(urts.clock());
    minidb::DbEnclave dbe(urts, vfs, minidb::WriteMode::kSeekThenWrite);
    dbe.open("/top.db");
    minidb::CommitGenerator gen;
    for (std::size_t i = 0; i < opts.calls; ++i) {
      dbe.begin();
      for (const auto& [k, v] : gen.make(static_cast<std::uint64_t>(i)).to_records()) {
        dbe.put_in_txn(k, v);
      }
      dbe.commit();
    }
    dbe.close_db();
  } else {
    run_demo_workload(urts, opts.threads, opts.calls);
  }
}

/// `sgxperf top`: attach the logger to a live workload, subscribe to the
/// event stream and repaint aggregate statistics while it runs.  The logger
/// is never detached between frames — everything shown comes through the
/// lock-free streaming subscription, not the merged trace.
int run_top(const Options& opts) {
  if (opts.threads == 0 || opts.calls == 0 || opts.frames == 0) {
    std::fputs("error: --threads, --calls and --frames must be > 0\n", stderr);
    return 2;
  }
  if (!check_workload(opts)) return 2;

  sgxsim::Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  perf::LiveMonitor monitor(logger);
  if (!monitor.ok()) {
    std::fputs("error: no free streaming subscriber slot\n", stderr);
    return 1;
  }
  monitor.set_window_ns(opts.window_ns);

  std::atomic<bool> done{false};
  std::thread worker([&] {
    run_named_workload(urts, opts);
    done.store(true, std::memory_order_release);
  });

  // Repaint in place on a terminal; emit sequential frames when piped.
  const bool tty = isatty(fileno(stdout)) != 0;
  for (std::size_t frame = 0; frame + 1 < opts.frames; ++frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    const std::string text = monitor.render_frame();
    if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(text.c_str(), stdout);
    if (!tty) std::fputs("\n", stdout);
    std::fflush(stdout);
    if (done.load(std::memory_order_acquire)) break;
  }
  worker.join();

  // Final frame after the workload finished: drains whatever is still queued.
  const std::string text = monitor.render_frame();
  if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
  std::fputs(text.c_str(), stdout);

  logger.detach();
  std::printf("\nworkload '%s' finished: %llu calls observed live, %llu dropped by the "
              "subscriber (trace recorded %zu calls)\n",
              opts.workload.c_str(),
              static_cast<unsigned long long>(monitor.total_calls()),
              static_cast<unsigned long long>(monitor.dropped()), db.calls().size());
  return 0;
}

/// `sgxperf monitor`: the daemon sibling of `top`.  Runs the workload with
/// the logger attached and a perf::MonitorSession (the embeddable consumer
/// loop) watching it: alert transitions stream to stderr and --alert-log as
/// JSON lines the moment the predicate flips, wire frames stream to a serve
/// daemon when --fleet names an ingest socket, a status line with the loss
/// counters goes to stderr about once a second, and finish() seals the run —
/// stale alerts resolve, the window time-series and alert history persist
/// into the trace (v5), and a summary goes to stdout.
int run_monitor(const Options& opts) {
  if (opts.threads == 0 || opts.calls == 0) {
    std::fputs("error: --threads and --calls must be > 0\n", stderr);
    return 2;
  }
  if (!check_workload(opts)) return 2;

  sgxsim::Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);

  // Subscribe before the workload starts so no event predates the ring, and
  // size the ring generously: a dropped event would skew the online state.
  perf::MonitorSessionConfig scfg;
  scfg.identity = {opts.fleet_host, opts.workload};
  scfg.subscription_name = "monitor";
  scfg.online.analyzer = opts.config;
  if (opts.window_ns > 0) scfg.online.window_ns = opts.window_ns;
  if (!opts.model_path.empty()) {
    try {
      scfg.online.order = perf::load_model_spec(opts.model_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  perf::MonitorSession session(logger, urts, scfg);
  if (!session.ok()) {
    std::fputs("error: no free streaming subscriber slot\n", stderr);
    return 1;
  }

  session.add_sink(std::make_shared<perf::JsonLinesSink>(stderr));
  std::FILE* alert_log = nullptr;
  if (!opts.alert_log_path.empty()) {
    alert_log = std::fopen(opts.alert_log_path.c_str(), "wb");
    if (alert_log == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", opts.alert_log_path.c_str());
      return 1;
    }
    session.add_sink(std::make_shared<perf::JsonLinesSink>(alert_log));
  }
  int fleet_fd = -1;
  std::shared_ptr<fleet::FrameSink> fleet_sink;
  if (!opts.fleet_socket.empty()) {
    fleet_fd = fleet::connect_ingest(opts.fleet_socket);
    if (fleet_fd < 0) {
      std::fprintf(stderr, "error: cannot connect to fleet ingest socket %s: %s\n",
                   opts.fleet_socket.c_str(), std::strerror(errno));
      if (alert_log != nullptr) std::fclose(alert_log);
      return 1;
    }
    // Best-effort: a vanished daemon drops frames, it never kills the run.
    // MSG_NOSIGNAL turns the SIGPIPE a dead daemon would raise into EPIPE,
    // and `daemon_gone` stops further frame writes after the first failure.
    auto daemon_gone = std::make_shared<bool>(false);
    fleet_sink = std::make_shared<fleet::FrameSink>(
        [fleet_fd, daemon_gone](const char* data, std::size_t size) {
          if (*daemon_gone) return false;
          while (size > 0) {
            const ssize_t n = ::send(fleet_fd, data, size, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
              *daemon_gone = true;
              std::fprintf(stderr, "monitor: fleet daemon unreachable (%s), frames dropped\n",
                           n < 0 ? std::strerror(errno) : "closed");
              return false;
            }
            data += n;
            size -= static_cast<std::size_t>(n);
          }
          return true;
        });
    session.add_sink(fleet_sink);
  }

  std::atomic<bool> done{false};
  std::thread worker([&] {
    run_named_workload(urts, opts);
    done.store(true, std::memory_order_release);
  });

  // The session's pump loop, with a periodic status line: the per-subscriber
  // stream-drop / sealed-shard-drop counters were invisible mid-run before.
  using Clock = std::chrono::steady_clock;
  auto next_status = Clock::now() + std::chrono::seconds(1);
  for (;;) {
    if (session.poll() > 0) continue;  // keep draining while events are flowing
    if (done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    if (Clock::now() >= next_status) {
      const auto st = session.stats();
      std::fprintf(stderr,
                   "monitor: %llu events, alerts %llu/%llu, stream_dropped=%llu "
                   "sealed_dropped=%llu pending_evicted=%llu\n",
                   static_cast<unsigned long long>(st.events),
                   static_cast<unsigned long long>(st.alerts_raised),
                   static_cast<unsigned long long>(st.alerts_resolved),
                   static_cast<unsigned long long>(st.stream_dropped),
                   static_cast<unsigned long long>(st.sealed_dropped),
                   static_cast<unsigned long long>(st.pending_evicted));
      next_status = Clock::now() + std::chrono::seconds(1);
    }
  }
  worker.join();
  session.poll();   // everything published before `done` flipped is in the ring
  logger.detach();  // workload quiesced: seals and merges the shards
  session.finish(); // resolves stale alerts, emits stats/bye to the sinks
  session.persist();
  if (alert_log != nullptr) std::fclose(alert_log);
  if (fleet_fd >= 0) ::close(fleet_fd);

  if (!opts.out_path.empty()) {
    try {
      tracedb::save_trace(db, opts.out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  const auto& online = session.analyzer();
  const auto stats = session.stats();
  const auto active = online.active_alerts();
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("workload", opts.workload);
    w.kv("events", stats.events);
    w.kv("windows", static_cast<std::uint64_t>(online.windows().size()));
    w.kv("window_ns", static_cast<std::uint64_t>(scfg.online.window_ns));
    w.kv("alerts_raised", stats.alerts_raised);
    w.kv("alerts_resolved", stats.alerts_resolved);
    w.kv("alerts_active", static_cast<std::uint64_t>(active.size()));
    w.kv("stream_dropped", stats.stream_dropped);
    w.kv("sealed_dropped", stats.sealed_dropped);
    w.kv("pending_evicted", stats.pending_evicted);
    // The session's event-conservation ledger (DESIGN.md §13): machine-
    // readable loss accounting, per pipeline stage, in the final summary.
    telemetry::Ledger led = session.ledger();
    if (fleet_sink != nullptr) fleet_sink->fill_ledger(led);
    w.key("ledger");
    led.write_json(w);
    w.kv("conservation_ok", led.audit().ok);
    if (!opts.out_path.empty()) w.kv("trace", opts.out_path);
    w.end_object();
    std::printf("%s\n", w.take().c_str());
  } else {
    std::printf("monitor: workload '%s' finished — %llu events in %zu windows of %.3fms\n",
                opts.workload.c_str(), static_cast<unsigned long long>(stats.events),
                online.windows().size(), static_cast<double>(scfg.online.window_ns) / 1e6);
    std::printf("alerts: %llu raised, %llu resolved, %zu active at end of run\n",
                static_cast<unsigned long long>(stats.alerts_raised),
                static_cast<unsigned long long>(stats.alerts_resolved), active.size());
    for (const auto& a : active) {
      std::printf("  ACTIVE %-14s %s (onset %.3fms)\n", perf::to_string(a.kind),
                  a.kind == tracedb::AlertKind::kPaging
                      ? support::format("enclave %llu",
                                        static_cast<unsigned long long>(a.enclave_id))
                            .c_str()
                      : db.name_of(a.enclave_id, a.type, a.call_id).c_str(),
                  static_cast<double>(a.onset_ns) / 1e6);
    }
    if (stats.stream_dropped > 0 || stats.sealed_dropped > 0 || stats.pending_evicted > 0) {
      std::printf("warning: %llu stream events dropped, %llu sealed-shard drops, "
                  "%llu pending children evicted — online verdicts may undercount\n",
                  static_cast<unsigned long long>(stats.stream_dropped),
                  static_cast<unsigned long long>(stats.sealed_dropped),
                  static_cast<unsigned long long>(stats.pending_evicted));
    }
    telemetry::Ledger led = session.ledger();
    if (fleet_sink != nullptr) fleet_sink->fill_ledger(led);
    std::fputs(led.render_table().c_str(), stdout);
    if (!opts.out_path.empty()) std::printf("trace written to %s\n", opts.out_path.c_str());
  }
  return 0;
}

// `serve` must shut down cleanly on SIGINT/SIGTERM (final checkpoint, socket
// unlink); Server::stop() is async-signal-safe by design (self-pipe).
fleet::Server* g_serve_instance = nullptr;

void serve_signal_handler(int) {
  if (g_serve_instance != nullptr) g_serve_instance->stop();
}

/// `sgxperf serve`: the fleet aggregation daemon.  Listens on --socket for
/// producer streams (`sgxperf monitor --fleet`, or any MonitorSession with a
/// FrameSink), merges them into the keyed fleet time-series, and answers
/// queries on --query-socket until SIGINT/SIGTERM or idle-exit.
int run_serve(const Options& opts) {
  if (opts.socket_path.empty()) {
    std::fputs("error: serve requires --socket PATH (the ingest socket)\n", stderr);
    return 2;
  }
  fleet::ServerConfig cfg;
  cfg.ingest_path = opts.socket_path;
  cfg.query_path = opts.query_socket_path;
  cfg.aggregator.retention_windows = opts.retention;
  cfg.checkpoint_path = opts.checkpoint_path;
  cfg.checkpoint_every_windows = opts.checkpoint_every;
  cfg.idle_exit_ms = opts.idle_exit_ms;
  cfg.prom_out_path = opts.prom_out_path;
  cfg.self_stat_interval_ms = opts.self_stat_ms;
  fleet::Server server(cfg);
  if (!server.start()) return 1;

  g_serve_instance = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::fprintf(stderr, "serve: ingest %s%s%s\n", opts.socket_path.c_str(),
               opts.query_socket_path.empty() ? "" : ", query ",
               opts.query_socket_path.c_str());

  const std::uint64_t producers = server.run();
  g_serve_instance = nullptr;

  if (opts.json) {
    std::printf("%s\n", server.aggregator().snapshot_json().c_str());
  } else {
    std::printf("serve: %llu producer stream(s), %llu fleet windows merged\n",
                static_cast<unsigned long long>(producers),
                static_cast<unsigned long long>(server.aggregator().windows_merged()));
    if (!opts.checkpoint_path.empty()) {
      std::printf("fleet checkpoint written to %s\n", opts.checkpoint_path.c_str());
    }
  }
  return 0;
}

/// `sgxperf fleet`: ask a running serve daemon (--query-socket) — or the
/// built-in deterministic 3-producer stress corpus aggregated in-process
/// (--corpus, the CI golden path) — for a snapshot / top-N / alert listing /
/// per-site series.  Output is always one JSON document on stdout.
int run_fleet(const Options& opts) {
  const std::string sub = opts.fleet_subcommand.empty() ? "snapshot" : opts.fleet_subcommand;
  std::string request;
  if (sub == "snapshot") {
    request = "snapshot";
  } else if (sub == "alerts") {
    request = "alerts";
  } else if (sub == "status") {
    // Over --query-socket the server intercepts this and attaches its daemon
    // self-telemetry block; in --corpus mode it is the aggregator-only view.
    request = "status";
  } else if (sub == "top") {
    request = support::format("top %s %zu", opts.rank_by.c_str(), opts.top_n);
  } else if (sub == "series") {
    if (opts.fleet_args.size() != 3) {
      std::fputs("error: fleet series needs <host> <enclave> <site>\n", stderr);
      return 2;
    }
    request = "series " + opts.fleet_args[0] + " " + opts.fleet_args[1] + " " +
              opts.fleet_args[2];
  } else {
    std::fprintf(stderr,
                 "error: unknown fleet subcommand '%s' (snapshot, top, alerts, series, status)\n",
                 sub.c_str());
    return 2;
  }

  std::string response;
  if (opts.corpus) {
    fleet::Aggregator agg({opts.retention});
    try {
      fleet::run_corpus(agg, fleet::default_corpus());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    response = agg.query(request);
    if (!opts.out_path.empty()) {
      tracedb::TraceDatabase db;
      agg.checkpoint(db);
      try {
        tracedb::save_trace(db, opts.out_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
  } else if (!opts.query_socket_path.empty()) {
    try {
      response = fleet::query_server(opts.query_socket_path, request);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  } else {
    std::fputs("error: fleet needs --query-socket PATH (live daemon) or --corpus (built-in)\n",
               stderr);
    return 2;
  }
  std::printf("%s\n", response.c_str());
  return 0;
}

/// Emits a set of alert kinds as a JSON array of kind names.
void kinds_array(support::json::Writer& w, std::string_view key,
                 const std::set<tracedb::AlertKind>& kinds) {
  w.key(key);
  w.begin_array();
  for (const auto kind : kinds) w.value(perf::to_string(kind));
  w.end_array();
}

/// `sgxperf stress`: run one labeled stressor through the logger + online
/// analyser soak harness (src/stress/harness.hpp), report deterministic
/// bogo-ops and the label verdict, and optionally save the v5 trace.  The
/// exit status reflects the verdict, so a stress run doubles as a detector
/// precision/recall check.
int run_stress(const Options& opts) {
  const auto list_names = [] {
    std::string names;
    for (const auto& n : stress::stressor_names()) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    return names;
  };
  if (opts.stressor.empty()) {
    std::fprintf(stderr, "error: stress requires --stressor NAME (%s)\n", list_names().c_str());
    return 2;
  }
  const auto stressor = stress::make_stressor(opts.stressor);
  if (stressor == nullptr) {
    std::fprintf(stderr, "error: unknown stressor '%s' (%s)\n", opts.stressor.c_str(),
                 list_names().c_str());
    return 2;
  }
  if (opts.threads == 0 || opts.duration_ns == 0) {
    std::fputs("error: --threads and --duration must be > 0\n", stderr);
    return 2;
  }

  const std::size_t epc_pages = opts.epc_mb > 0
                                    ? opts.epc_mb * (1024 * 1024 / sgxsim::kPageSize)
                                    : sgxsim::Driver::kDefaultEpcPages;
  sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched), epc_pages);
  tracedb::TraceDatabase db;

  stress::SoakConfig scfg;
  scfg.stress.threads = opts.threads;
  scfg.stress.duration_ns = opts.duration_ns;
  scfg.stress.intensity = opts.intensity;
  scfg.stress.seed = opts.seed;
  scfg.analyzer = opts.config;
  if (opts.window_ns > 0) scfg.window_ns = opts.window_ns;
  if (!opts.model_path.empty()) {
    try {
      scfg.order = perf::load_model_spec(opts.model_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  stress::SoakResult result;
  try {
    result = stress::run_soak(*stressor, urts, db, scfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!opts.out_path.empty()) {
    try {
      tracedb::save_trace(db, opts.out_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  const auto& spec = stressor->spec();
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("stressor", spec.name);
    w.kv("threads", static_cast<std::uint64_t>(opts.threads));
    w.kv("duration_ns", static_cast<std::uint64_t>(opts.duration_ns));
    w.kv("intensity", static_cast<std::uint64_t>(opts.intensity));
    w.kv("seed", opts.seed);
    w.kv("bogo_ops", result.stress.bogo_ops);
    w.kv("bogo_ops_per_vsec", result.stress.bogo_ops_per_vsec());
    w.kv("elapsed_ns", static_cast<std::uint64_t>(result.stress.elapsed_ns));
    w.key("per_thread_ops");
    w.begin_array();
    for (const auto ops : result.stress.per_thread_ops) w.value(ops);
    w.end_array();
    w.kv("events", result.events);
    w.kv("windows", result.windows);
    w.kv("alerts_raised", result.alerts_raised);
    w.kv("alerts_resolved", result.alerts_resolved);
    w.kv("stream_dropped", result.stream_dropped);
    w.kv("sealed_dropped", result.sealed_dropped);
    w.kv("pending_evicted", result.pending_evicted);
    kinds_array(w, "must_trigger", spec.must_trigger);
    kinds_array(w, "must_not", spec.must_not);
    kinds_array(w, "triggered", result.triggered);
    kinds_array(w, "missing", result.missing);
    kinds_array(w, "false_positives", result.false_positives);
    w.kv("labels_ok", result.labels_ok());
    if (!opts.out_path.empty()) w.kv("trace", opts.out_path);
    w.end_object();
    std::printf("%s\n", w.take().c_str());
  } else {
    std::printf("stress '%s': %llu bogo-ops in %.3fms virtual (%.0f bogo-ops/s), %zu thread(s)\n",
                spec.name.c_str(), static_cast<unsigned long long>(result.stress.bogo_ops),
                static_cast<double>(result.stress.elapsed_ns) / 1e6,
                result.stress.bogo_ops_per_vsec(), opts.threads);
    std::printf("observed: %llu events in %llu windows; alerts %llu raised / %llu resolved\n",
                static_cast<unsigned long long>(result.events),
                static_cast<unsigned long long>(result.windows),
                static_cast<unsigned long long>(result.alerts_raised),
                static_cast<unsigned long long>(result.alerts_resolved));
    const auto print_kinds = [](const char* label, const std::set<tracedb::AlertKind>& kinds) {
      std::printf("%s", label);
      if (kinds.empty()) std::printf(" (none)");
      for (const auto kind : kinds) std::printf(" %s", perf::to_string(kind));
      std::printf("\n");
    };
    print_kinds("labels expected:", spec.must_trigger);
    print_kinds("labels triggered:", result.triggered);
    if (result.labels_ok()) {
      std::printf("label verdict: OK (100%% recall, 0 false positives)\n");
    } else {
      print_kinds("labels MISSING:", result.missing);
      print_kinds("labels FALSE-POSITIVE:", result.false_positives);
    }
    if (result.stream_dropped > 0 || result.sealed_dropped > 0 || result.pending_evicted > 0) {
      std::printf("warning: %llu stream events dropped, %llu sealed-shard drops, "
                  "%llu pending children evicted\n",
                  static_cast<unsigned long long>(result.stream_dropped),
                  static_cast<unsigned long long>(result.sealed_dropped),
                  static_cast<unsigned long long>(result.pending_evicted));
    }
    if (!opts.out_path.empty()) std::printf("trace written to %s\n", opts.out_path.c_str());
  }
  return result.labels_ok() ? 0 : 1;
}

/// `sgxperf order learn|check`: the interface-orderliness workflow.  learn
/// distils a per-enclave protocol model (entries, edges, re-entrancy
/// whitelist, init phase) from a trusted baseline trace; check replays a
/// trace against a model — declared via --model or embedded in a v6 trace —
/// and reports every violation, exiting 1 when any were found so CI can gate
/// on protocol conformance.
int run_order(const Options& opts, const tracedb::TraceDatabase& db) {
  if (opts.order_subcommand == "learn") {
    const auto model = perf::learn_model(db);
    const auto spec = perf::render_model_spec(model);
    const auto rules = perf::rules_from_model(model);
    if (!opts.out_path.empty()) {
      std::FILE* f = std::fopen(opts.out_path.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", opts.out_path.c_str());
        return 1;
      }
      std::fwrite(spec.data(), 1, spec.size(), f);
      std::fclose(f);
    }
    if (!opts.embed_path.empty()) {
      try {
        tracedb::TraceDatabase copy = tracedb::open_trace(opts.trace_path);
        copy.set_order_rules(rules);
        tracedb::save_trace(copy, opts.embed_path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
      }
    }
    if (opts.json) {
      support::json::Writer w;
      w.begin_object();
      w.kv("schema_version", support::json::kSchemaVersion);
      w.kv("trace", opts.trace_path);
      w.kv("rules", static_cast<std::uint64_t>(rules.size()));
      w.key("enclaves");
      w.begin_array();
      for (const auto& [eid, em] : model.enclaves) {
        w.begin_object();
        w.kv("enclave_id", eid);
        if (em.has_init) w.kv("init", static_cast<std::uint64_t>(em.init_call_id));
        const auto ids = [&w](const char* key, const std::set<tracedb::CallId>& set) {
          w.key(key);
          w.begin_array();
          for (const auto id : set) w.value(static_cast<std::uint64_t>(id));
          w.end_array();
        };
        ids("entries", em.entries);
        ids("ecalls", em.known);
        ids("reentrant", em.reentrant_ok);
        w.key("edges");
        w.begin_array();
        for (const auto& [a, b] : em.edges) {
          w.begin_array();
          w.value(static_cast<std::uint64_t>(a));
          w.value(static_cast<std::uint64_t>(b));
          w.end_array();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      if (!opts.out_path.empty()) w.kv("spec", opts.out_path);
      if (!opts.embed_path.empty()) w.kv("embedded", opts.embed_path);
      w.end_object();
      std::printf("%s\n", w.take().c_str());
    } else if (opts.out_path.empty()) {
      std::fputs(spec.c_str(), stdout);
    } else {
      std::printf("learned %zu rules over %zu enclave(s); spec written to %s\n", rules.size(),
                  model.enclaves.size(), opts.out_path.c_str());
    }
    return 0;
  }

  if (opts.order_subcommand != "check") {
    std::fprintf(stderr, "error: unknown order subcommand '%s' (learn | check)\n",
                 opts.order_subcommand.c_str());
    return 2;
  }

  perf::OrderModel model;
  const char* source = "embedded";
  if (!opts.model_path.empty()) {
    try {
      model = perf::load_model_spec(opts.model_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    source = opts.model_path.c_str();
  } else {
    model = perf::model_from_rules(db.order_rules());
  }
  if (model.empty()) {
    std::fputs("error: no order model: pass --model FILE or a trace with embedded rules\n",
               stderr);
    return 2;
  }

  const auto alerts = perf::check_trace(db, model);
  std::uint64_t total = 0;
  for (const auto& a : alerts) total += a.detail & 0xffffffffull;
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("trace", opts.trace_path);
    w.kv("model", source);
    w.kv("enclaves_modelled", static_cast<std::uint64_t>(model.enclaves.size()));
    w.key("violations");
    w.begin_array();
    for (const auto& a : alerts) {
      w.begin_object();
      w.kv("kind", perf::to_string(a.kind));
      w.kv("enclave_id", a.enclave_id);
      w.kv("site", db.name_of(a.enclave_id, a.type, a.call_id));
      w.kv("call_id", static_cast<std::uint64_t>(a.call_id));
      w.kv("onset_ns", a.onset_ns);
      w.kv("first_thread", a.detail >> 32);
      w.kv("count", static_cast<std::uint64_t>(a.detail & 0xffffffffull));
      w.end_object();
    }
    w.end_array();
    w.kv("violation_sites", static_cast<std::uint64_t>(alerts.size()));
    w.kv("total_violations", total);
    w.end_object();
    std::printf("%s\n", w.take().c_str());
  } else if (alerts.empty()) {
    std::printf("order check: clean — no violations against %s model (%zu enclave(s))\n",
                source, model.enclaves.size());
  } else {
    std::printf("order check: %llu violation(s) at %zu site(s):\n",
                static_cast<unsigned long long>(total), alerts.size());
    for (const auto& a : alerts) {
      std::printf("  %-20s %s (enclave %llu, ecall %u): %llu violation(s), first on thread %llu "
                  "at %llu ns\n",
                  perf::to_string(a.kind), db.name_of(a.enclave_id, a.type, a.call_id).c_str(),
                  static_cast<unsigned long long>(a.enclave_id), a.call_id,
                  static_cast<unsigned long long>(a.detail & 0xffffffffull),
                  static_cast<unsigned long long>(a.detail >> 32),
                  static_cast<unsigned long long>(a.onset_ns));
    }
  }
  return alerts.empty() ? 0 : 1;
}

/// `sgxperf stats --json`: general statistics as a JSON document, one object
/// per call site, so CI can assert on counts without scraping the text table.
std::string stats_json(const perf::AnalysisReport& report, const tracedb::TraceDatabase& db,
                       const tracedb::OpenStats& io) {
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.key("dropped_events");
  w.value(report.dropped_events);
  w.key("stream_dropped_events");
  w.value(report.stream_dropped);
  w.key("enclaves");
  w.begin_array();
  for (const auto& ov : report.overviews) {
    w.begin_object();
    w.kv("enclave_id", static_cast<std::uint64_t>(ov.enclave_id));
    w.kv("name", ov.name);
    w.kv("ecalls_called", static_cast<std::uint64_t>(ov.ecalls_called));
    w.kv("ocalls_called", static_cast<std::uint64_t>(ov.ocalls_called));
    w.kv("ecall_instances", static_cast<std::uint64_t>(ov.ecall_instances));
    w.kv("ocall_instances", static_cast<std::uint64_t>(ov.ocall_instances));
    w.kv("ecalls_below_10us", ov.ecalls_below_10us);
    w.kv("ocalls_below_10us", ov.ocalls_below_10us);
    w.kv("page_ins", static_cast<std::uint64_t>(ov.page_ins));
    w.kv("page_outs", static_cast<std::uint64_t>(ov.page_outs));
    w.end_object();
  }
  w.end_array();
  w.key("calls");
  w.begin_array();
  for (const auto& s : report.stats) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("type", s.key.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
    w.kv("enclave_id", static_cast<std::uint64_t>(s.key.enclave_id));
    w.kv("call_id", static_cast<std::uint64_t>(s.key.call_id));
    w.kv("count", static_cast<std::uint64_t>(s.duration_ns.count));
    w.kv("mean_ns", s.duration_ns.mean);
    w.kv("median_ns", s.duration_ns.median);
    w.kv("stddev_ns", s.duration_ns.stddev);
    // HDR-quantized percentiles (same bucketing as the trace's latency table).
    w.kv("p50_ns", s.p50_ns);
    w.kv("p90_ns", s.p90_ns);
    w.kv("p99_ns", s.p99_ns);
    w.kv("p999_ns", s.p999_ns);
    w.kv("aex_total", s.aex_total);
    w.end_object();
  }
  w.end_array();
  w.key("findings");
  w.begin_array();
  for (const auto& f : report.findings) {
    w.begin_object();
    w.kv("kind", perf::to_string(f.kind));
    w.kv("subject", f.subject_name);
    w.kv("partner", f.partner ? f.partner_name : "");
    w.kv("severity", f.severity);
    w.kv("detail", f.detail);
    w.key("recommendations");
    w.begin_array();
    for (const auto& r : f.recommendations) {
      w.begin_object();
      w.kv("action", perf::to_string(r.action));
      w.kv("predicted_speedup", r.predicted_speedup);
      w.kv("best_workers", static_cast<std::uint64_t>(r.best_workers));
      w.kv("scenario", r.scenario);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  // v5 time-series (sgxperf monitor): the windowed run history and the full
  // alert trail, so CI and dashboards can answer "when did this regress".
  w.kv("window_period_ns", static_cast<std::uint64_t>(db.window_period()));
  w.key("windows");
  w.begin_array();
  for (const auto& win : db.windows()) {
    w.begin_object();
    w.kv("index", static_cast<std::uint64_t>(win.window_index));
    w.kv("start_ns", static_cast<std::uint64_t>(win.start_ns));
    w.kv("end_ns", static_cast<std::uint64_t>(win.end_ns));
    w.kv("calls", win.calls);
    w.kv("aexs", win.aexs);
    w.kv("page_ins", win.page_ins);
    w.kv("page_outs", win.page_outs);
    w.kv("stream_dropped", win.stream_dropped);
    w.kv("switchless_calls", win.switchless_calls);
    w.kv("switchless_fallbacks", win.switchless_fallbacks);
    w.kv("switchless_wasted_ns", win.switchless_wasted_ns);
    w.kv("active_alerts", static_cast<std::uint64_t>(win.active_alerts));
    w.end_object();
  }
  w.end_array();
  w.key("window_sites");
  w.begin_array();
  for (const auto& site : db.window_sites()) {
    w.begin_object();
    w.kv("window", static_cast<std::uint64_t>(site.window_index));
    w.kv("name", db.name_of(site.enclave_id, site.type, site.call_id));
    w.kv("enclave_id", static_cast<std::uint64_t>(site.enclave_id));
    w.kv("type", site.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
    w.kv("call_id", static_cast<std::uint64_t>(site.call_id));
    w.kv("calls", site.calls);
    w.kv("aex", site.aex_count);
    w.kv("p50_ns", static_cast<std::uint64_t>(site.p50_ns));
    w.kv("p99_ns", static_cast<std::uint64_t>(site.p99_ns));
    w.end_object();
  }
  w.end_array();
  w.key("alerts");
  w.begin_array();
  for (const auto& a : db.alerts()) {
    w.begin_object();
    w.kv("alert", perf::to_string(a.kind));
    if (a.kind == tracedb::AlertKind::kPaging) {
      w.kv("site",
           support::format("enclave %llu", static_cast<unsigned long long>(a.enclave_id)));
    } else {
      w.kv("site", db.name_of(a.enclave_id, a.type, a.call_id));
    }
    w.kv("enclave_id", static_cast<std::uint64_t>(a.enclave_id));
    w.kv("type", a.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
    w.kv("call_id", static_cast<std::uint64_t>(a.call_id));
    w.kv("onset_ns", static_cast<std::uint64_t>(a.onset_ns));
    w.kv("resolved_ns", static_cast<std::uint64_t>(a.resolved_ns));
    w.kv("active", a.resolved_ns == 0);
    w.kv("window", static_cast<std::uint64_t>(a.window_index));
    w.kv("detail", a.detail);
    w.end_object();
  }
  w.end_array();
  // I/O accounting for this open: flat files read whole; SGXSTORE inputs
  // report how few bytes the summary sections actually cost, which is what
  // makes the store's lazy-loading claim checkable from CI.
  w.key("io");
  w.begin_object();
  w.kv("store", io.store);
  w.kv("total_bytes", io.total_bytes);
  w.kv("bytes_read", io.bytes_read);
  w.key("sections_loaded");
  w.begin_array();
  for (const auto& s : io.sections_loaded) w.value(s);
  w.end_array();
  w.end_object();
  w.end_object();
  return w.take();
}

/// Resolves a call by registered name across both call types, reporting a
/// usable error when the name is unknown.
std::optional<tracedb::CallKey> find_call(const tracedb::TraceDatabase& db,
                                          tracedb::EnclaveId enclave,
                                          const std::string& name) {
  const auto key = tracedb::find_call_by_name(db, enclave, name);
  if (!key) {
    std::fprintf(stderr, "error: no call named '%s' for enclave %llu\n", name.c_str(),
                 static_cast<unsigned long long>(enclave));
  }
  return key;
}

std::optional<sgxsim::PatchLevel> parse_profile(const std::string& name) {
  using sgxsim::PatchLevel;
  if (name == "unpatched") return PatchLevel::kUnpatched;
  if (name == "spectre") return PatchLevel::kSpectre;
  if (name == "l1tf" || name == "spectre-l1tf") return PatchLevel::kSpectreL1tf;
  std::fprintf(stderr, "error: unknown cost profile '%s' (unpatched, spectre, l1tf)\n",
               name.c_str());
  return std::nullopt;
}

/// Parses "--workers N" or "--workers A..B" into an inclusive range.
std::optional<std::pair<std::size_t, std::size_t>> parse_workers(const std::string& range) {
  const auto pos = range.find("..");
  std::size_t lo = 0;
  std::size_t hi = 0;
  if (pos == std::string::npos) {
    lo = hi = std::strtoul(range.c_str(), nullptr, 10);
  } else {
    lo = std::strtoul(range.substr(0, pos).c_str(), nullptr, 10);
    hi = std::strtoul(range.substr(pos + 2).c_str(), nullptr, 10);
  }
  if (lo == 0 || hi < lo) {
    std::fprintf(stderr, "error: bad --workers '%s' (want N or A..B, 1-based)\n", range.c_str());
    return std::nullopt;
  }
  return std::make_pair(lo, hi);
}

/// Builds one combined scenario from the ad-hoc CLI flags (used by
/// `compare --whatif`, where a single after-trace is materialized).  Returns
/// nullopt on a bad flag; `*any` says whether any pass was requested.
std::optional<replay::Scenario> scenario_from_flags(const Options& opts,
                                                    const tracedb::TraceDatabase& db,
                                                    std::size_t workers, bool* any) {
  replay::Scenario s;
  s.name = "whatif";
  *any = false;
  if (!opts.switchless_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.switchless_site);
    if (!key) return std::nullopt;
    s.switchless.push_back({*key, workers});
    *any = true;
  }
  if (!opts.eliminate_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.eliminate_site);
    if (!key) return std::nullopt;
    s.eliminate.push_back({*key});
    *any = true;
  }
  if (!opts.merge_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.merge_site);
    if (!key) return std::nullopt;
    s.merge.push_back({*key, std::nullopt});
    *any = true;
  }
  if (!opts.cost_profile.empty()) {
    const auto profile = parse_profile(opts.cost_profile);
    if (!profile) return std::nullopt;
    s.cost_profile = *profile;
    *any = true;
  }
  if (opts.epc_mb > 0) {
    s.epc_pages = opts.epc_mb * (1024 * 1024 / sgxsim::kPageSize);
    *any = true;
  }
  return s;
}

/// One analyser recommendation with its replay-predicted speedup, flattened
/// for the `whatif --all-recommendations` ranking.
struct RankedRecommendation {
  std::string finding;
  std::string subject;
  std::string action;
  std::string scenario;
  double predicted_speedup = 1.0;
  std::size_t best_workers = 0;
};

/// `sgxperf whatif`: validate the replay against the recorded trace, then
/// re-cost it under the scenarios requested on the command line and/or rank
/// every analyser recommendation by its predicted speedup.
int run_whatif(const Options& opts, tracedb::TraceDatabase& db) {
  const auto recorded = parse_profile(opts.recorded_profile);
  if (!recorded) return 2;
  const auto workers = parse_workers(opts.workers_range);
  if (!workers) return 2;

  replay::ReplayConfig rcfg;
  rcfg.recorded_cost = sgxsim::CostModel::preset(*recorded);
  rcfg.threads = opts.replay_threads;
  replay::ReplayEngine engine(db, rcfg);
  const auto validation = engine.validate();

  std::vector<replay::ScenarioResult> results;
  std::string sweep_text;

  if (!opts.switchless_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.switchless_site);
    if (!key) return 1;
    const auto sweep = engine.sweep_switchless(*key, workers->first, workers->second);
    if (!opts.json) sweep_text = replay::render_sweep_text(sweep, workers->first);
    for (const auto& point : sweep.points) results.push_back(point);
  }
  if (!opts.eliminate_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.eliminate_site);
    if (!key) return 1;
    replay::Scenario s;
    s.name = "eliminate " + opts.eliminate_site;
    s.eliminate.push_back({*key});
    results.push_back(engine.run(s));
  }
  if (!opts.merge_site.empty()) {
    const auto key = find_call(db, opts.enclave_id, opts.merge_site);
    if (!key) return 1;
    replay::Scenario s;
    s.name = "merge " + opts.merge_site;
    s.merge.push_back({*key, std::nullopt});
    results.push_back(engine.run(s));
  }
  if (!opts.cost_profile.empty()) {
    const auto profile = parse_profile(opts.cost_profile);
    if (!profile) return 2;
    replay::Scenario s;
    s.name = "cost-profile " + opts.cost_profile;
    s.cost_profile = *profile;
    results.push_back(engine.run(s));
  }
  if (opts.epc_mb > 0) {
    replay::Scenario s;
    s.name = support::format("epc %zu MiB", opts.epc_mb);
    s.epc_pages = opts.epc_mb * (1024 * 1024 / sgxsim::kPageSize);
    results.push_back(engine.run(s));
  }

  std::vector<RankedRecommendation> ranked;
  if (opts.all_recommendations) {
    perf::AnalyzerConfig acfg = opts.config;
    acfg.predict_speedups = true;
    acfg.replay_cost = rcfg.recorded_cost;
    acfg.switchless_min_workers = workers->first;
    acfg.switchless_max_workers = workers->second;
    acfg.replay_threads = opts.replay_threads;
    perf::Analyzer analyzer(db, acfg);
    if (!opts.edl_path.empty()) {
      try {
        analyzer.set_interface(opts.enclave_id, sgxsim::edl::parse_file(opts.edl_path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error parsing EDL: %s\n", e.what());
        return 1;
      }
    }
    const auto report = analyzer.analyze();
    for (const auto& f : report.findings) {
      for (const auto& r : f.recommendations) {
        if (r.scenario.empty()) continue;  // no replay model for this action
        ranked.push_back({perf::to_string(f.kind), f.subject_name, perf::to_string(r.action),
                          r.scenario, r.predicted_speedup, r.best_workers});
      }
    }
    std::stable_sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.predicted_speedup > b.predicted_speedup;
    });
  }

  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    replay::write_whatif_json(w, validation, results);
    if (opts.all_recommendations) {
      w.key("ranked");
      w.begin_array();
      for (const auto& r : ranked) {
        w.begin_object();
        w.kv("finding", r.finding);
        w.kv("subject", r.subject);
        w.kv("action", r.action);
        w.kv("scenario", r.scenario);
        w.kv("predicted_speedup", r.predicted_speedup);
        w.kv("best_workers", static_cast<std::uint64_t>(r.best_workers));
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    std::printf("%s\n", w.take().c_str());
    return 0;
  }

  std::fputs(replay::render_validation(validation).c_str(), stdout);
  if (!sweep_text.empty()) {
    std::fputs("\n", stdout);
    std::fputs(sweep_text.c_str(), stdout);
  }
  if (!results.empty()) {
    std::fputs("\n", stdout);
    std::fputs(replay::render_whatif_text(results).c_str(), stdout);
  }
  if (opts.all_recommendations) {
    std::printf("\nranked recommendations (%zu with a replay model, best first):\n",
                ranked.size());
    for (const auto& r : ranked) {
      std::printf("  %6.2fx  %s — %s (%s)", r.predicted_speedup, r.action.c_str(),
                  r.subject.c_str(), r.finding.c_str());
      if (r.best_workers > 0) std::printf(" [%zu worker(s)]", r.best_workers);
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace

/// Emits a store's section table as JSON (`store info --json` and friends).
/// Deliberately path-free so the output is byte-stable for golden gates.
std::string store_info_json(tracedb::store::StoreReader& reader) {
  const auto info = reader.info();
  support::json::Writer w;
  w.begin_object();
  w.kv("schema_version", support::json::kSchemaVersion);
  w.kv("generation", info.generation);
  w.kv("payload_version", static_cast<std::uint64_t>(info.payload_version));
  w.kv("total_bytes", info.total_bytes);
  w.kv("event_chunks", info.event_chunks);
  w.key("sections");
  w.begin_array();
  for (const auto& s : info.sections) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("file", s.file);
    w.kv("length", s.length);
    w.kv("crc32", static_cast<std::uint64_t>(s.crc));
    w.key("row_counts");
    w.begin_array();
    for (const std::uint64_t c : s.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void print_store_info(const char* dir, tracedb::store::StoreReader& reader) {
  const auto info = reader.info();
  std::printf("store %s: generation %llu, payload v%u, %llu bytes, %llu event chunks\n", dir,
              static_cast<unsigned long long>(info.generation),
              static_cast<unsigned>(info.payload_version),
              static_cast<unsigned long long>(info.total_bytes),
              static_cast<unsigned long long>(info.event_chunks));
  for (const auto& s : info.sections) {
    std::string counts;
    for (const std::uint64_t c : s.counts) {
      if (!counts.empty()) counts += ", ";
      counts += std::to_string(c);
    }
    std::printf("  %-8s %-16s %10llu bytes  crc32 %08x  rows [%s]\n", s.name.c_str(),
                s.file.c_str(), static_cast<unsigned long long>(s.length), s.crc,
                counts.c_str());
  }
}

/// `sgxperf store pack|unpack|info|compact`: convert between the flat
/// SGXPTRC format and SGXSTORE directories, inspect section tables, and
/// fold several stores/traces into one.
int run_store(const Options& opts) {
  const auto& args = opts.store_args;
  const auto arity_error = [](const char* want) {
    std::fprintf(stderr, "error: usage: sgxperf store %s\n", want);
    return 2;
  };
  try {
    if (opts.store_subcommand == "pack") {
      if (args.size() != 2) return arity_error("pack <trace.bin> <dir.store>");
      const tracedb::TraceDatabase db = tracedb::open_trace(args[0]);
      tracedb::store::pack(db, args[1]);
      tracedb::store::StoreReader reader(args[1]);
      if (opts.json) {
        std::printf("%s\n", store_info_json(reader).c_str());
      } else {
        std::printf("packed %s -> %s\n", args[0].c_str(), args[1].c_str());
        print_store_info(args[1].c_str(), reader);
      }
      return 0;
    }
    if (opts.store_subcommand == "unpack") {
      if (args.size() != 2) return arity_error("unpack <dir.store> <out.bin>");
      const tracedb::TraceDatabase db = tracedb::store::unpack(args[0]);
      db.save(args[1]);
      std::printf("unpacked %s -> %s (%zu calls, %zu latency rows, %zu alerts)\n",
                  args[0].c_str(), args[1].c_str(), db.calls().size(), db.latencies().size(),
                  db.alerts().size());
      return 0;
    }
    if (opts.store_subcommand == "info") {
      if (args.size() != 1) return arity_error("info <dir.store> [--json]");
      tracedb::store::StoreReader reader(args[0]);
      if (opts.json) {
        std::printf("%s\n", store_info_json(reader).c_str());
      } else {
        print_store_info(args[0].c_str(), reader);
      }
      return 0;
    }
    if (opts.store_subcommand == "compact") {
      if (args.empty() || opts.out_path.empty()) {
        return arity_error("compact <in...> --out <dir.store>");
      }
      tracedb::store::compact(args, opts.out_path);
      tracedb::store::StoreReader reader(opts.out_path);
      if (opts.json) {
        std::printf("%s\n", store_info_json(reader).c_str());
      } else {
        std::printf("compacted %zu input%s into %s\n", args.size(),
                    args.size() == 1 ? "" : "s", opts.out_path.c_str());
        print_store_info(opts.out_path.c_str(), reader);
      }
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "error: unknown store subcommand '%s' (pack, unpack, info, compact)\n",
               opts.store_subcommand.c_str());
  return 2;
}

/// `sgxperf doctor`: the event-conservation audit (DESIGN.md §13) as a CLI
/// verb.  Builds a ledger from one of four sources and verifies
/// produced == delivered + Σdrops stage-by-stage:
///
///   doctor <trace.bin>          stages rebuilt from persisted loss counters
///   doctor <dir.store>          index totals cross-checked against the chunk
///                               directory — a genuine on-disk audit
///   doctor --workload W ...     live run through logger + MonitorSession
///   doctor --query-socket PATH  fetch `status` from a serve daemon and
///                               re-audit its ledger client-side
///
/// Exit codes: 0 = conserved and attributed loss <= --max-loss; 1 =
/// conservation violated (a stage leaks or reports indeterminate loss);
/// 2 = usage/IO error; 3 = conserved but attributed loss exceeds --max-loss.
int run_doctor(const Options& opts) {
  telemetry::Ledger led;
  std::string mode;
  try {
    if (!opts.query_socket_path.empty()) {
      mode = "daemon";
      const std::string response = fleet::query_server(opts.query_socket_path, "status");
      const support::json::Value doc = support::json::parse(response);
      const support::json::Value* ledger = doc.find("ledger");
      if (ledger == nullptr) {
        std::fputs("error: status response carries no ledger\n", stderr);
        return 2;
      }
      led = telemetry::ledger_from_json(*ledger);
    } else if (!opts.trace_path.empty()) {
      struct stat st{};
      if (::stat(opts.trace_path.c_str(), &st) != 0) {
        std::fprintf(stderr, "error: cannot stat %s: %s\n", opts.trace_path.c_str(),
                     std::strerror(errno));
        return 2;
      }
      if (S_ISDIR(st.st_mode)) {
        mode = "store";
        led = telemetry::ledger_from_store(opts.trace_path);
      } else {
        mode = "trace";
        const tracedb::TraceDatabase db = tracedb::open_trace(opts.trace_path);
        led = telemetry::ledger_from_database(db);
      }
    } else {
      mode = "live";
      if (opts.threads == 0 || opts.calls == 0) {
        std::fputs("error: --threads and --calls must be > 0\n", stderr);
        return 2;
      }
      if (!check_workload(opts)) return 2;
      sgxsim::Urts urts;
      tracedb::TraceDatabase db;
      perf::Logger logger(db);
      logger.attach(urts);
      perf::MonitorSessionConfig scfg;
      scfg.identity = {opts.fleet_host, opts.workload};
      scfg.subscription_name = "doctor";
      scfg.online.analyzer = opts.config;
      if (opts.window_ns > 0) scfg.online.window_ns = opts.window_ns;
      perf::MonitorSession session(logger, urts, scfg);
      if (!session.ok()) {
        std::fputs("error: no free streaming subscriber slot\n", stderr);
        return 2;
      }
      std::atomic<bool> done{false};
      std::thread worker([&] {
        run_named_workload(urts, opts);
        done.store(true, std::memory_order_release);
      });
      for (;;) {
        if (session.poll() > 0) continue;
        if (done.load(std::memory_order_acquire)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
      }
      worker.join();
      session.poll();   // drain everything published before `done` flipped
      logger.detach();  // seal + merge so the record stage is final
      session.finish();
      led = session.ledger();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const telemetry::LedgerAudit audit = led.audit();
  int rc = 0;
  if (!audit.ok) {
    rc = 1;
  } else if (audit.total_dropped > opts.max_loss) {
    rc = 3;
  }
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("mode", mode);
    w.kv("max_loss", opts.max_loss);
    w.key("ledger");
    led.write_json(w);
    w.kv("conservation_ok", audit.ok);
    w.kv("attributed_dropped", audit.total_dropped);
    w.kv("verdict",
         rc == 0 ? "ok" : (rc == 1 ? "conservation_failed" : "loss_over_budget"));
    w.kv("exit_code", static_cast<std::uint64_t>(rc));
    w.end_object();
    std::printf("%s\n", w.take().c_str());
  } else {
    std::fputs(led.render_table().c_str(), stdout);
    if (rc == 1) {
      std::printf("doctor: FAIL — conservation violated at stage %s\n",
                  audit.first_leak_stage.c_str());
    } else if (rc == 3) {
      std::printf("doctor: FAIL — %llu attributed drop(s) exceed --max-loss %llu\n",
                  static_cast<unsigned long long>(audit.total_dropped),
                  static_cast<unsigned long long>(opts.max_loss));
    } else {
      std::printf("doctor: ok — %llu attributed drop(s) within budget %llu\n",
                  static_cast<unsigned long long>(audit.total_dropped),
                  static_cast<unsigned long long>(opts.max_loss));
    }
  }
  return rc;
}

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 2;
  }

  if (opts.command == "record") return run_record(opts);
  if (opts.command == "top") return run_top(opts);
  if (opts.command == "monitor") return run_monitor(opts);
  if (opts.command == "stress") return run_stress(opts);
  if (opts.command == "serve") return run_serve(opts);
  if (opts.command == "fleet") return run_fleet(opts);
  if (opts.command == "doctor") return run_doctor(opts);
  if (opts.command == "store") return run_store(opts);

  // Summary consumers declare the sections they need, so an SGXSTORE input
  // maps only meta+profile(+alerts) and never faults in the event log; the
  // event-reading visualisers skip the profile tables instead.  Flat files
  // always load whole — the flat format has no addressable sections.
  unsigned sections = tracedb::store::kAllSections;
  if (opts.command == "stats") {
    sections = tracedb::store::kSummarySections;
  } else if (opts.command == "metrics") {
    // --prom also exports the event-count ledger, which needs the event log.
    sections = opts.prom ? tracedb::store::kAllSections
                         : (tracedb::store::kSectionMeta | tracedb::store::kSectionProfile);
  } else if (opts.command == "timeline" || opts.command == "graph" ||
             opts.command == "flamegraph" || opts.command == "hist" ||
             opts.command == "scatter" ||
             (opts.command == "order" && opts.order_subcommand == "check")) {
    // `order check` reads the embedded rule table (meta) and replays the
    // call sequence (events); it has no use for histograms or windows.
    sections = tracedb::store::kSectionMeta | tracedb::store::kSectionEvents;
  }

  tracedb::OpenStats open_stats;
  tracedb::TraceDatabase db = [&] {
    try {
      return tracedb::open_trace(opts.trace_path, sections, &open_stats);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  if (opts.command == "order") return run_order(opts, db);

  if (opts.command == "csv") {
    db.export_csv(opts.csv_dir);
    std::printf("exported %zu calls, %zu AEXs, %zu paging events to %s\n", db.calls().size(),
                db.aexs().size(), db.paging().size(), opts.csv_dir.c_str());
    return 0;
  }
  if (opts.command == "compare") {
    if (opts.whatif) {
      // Diff the recorded trace against a replayed what-if scenario instead
      // of a second recording: same table, no second measurement run needed.
      const auto recorded = parse_profile(opts.recorded_profile);
      if (!recorded) return 2;
      const auto workers = parse_workers(opts.workers_range);
      if (!workers) return 2;
      bool any = false;
      const auto scenario = scenario_from_flags(opts, db, workers->first, &any);
      if (!scenario) return 1;
      if (!any) {
        std::fputs("error: compare --whatif needs at least one scenario flag "
                   "(--switchless/--eliminate/--merge/--cost-profile/--epc-mb)\n",
                   stderr);
        return 2;
      }
      replay::ReplayConfig rcfg;
      rcfg.recorded_cost = sgxsim::CostModel::preset(*recorded);
      rcfg.threads = opts.replay_threads;
      replay::ReplayEngine engine(db, rcfg);
      const auto after = engine.materialize(*scenario);
      std::fputs(perf::render_comparison(perf::compare_traces(db, after)).c_str(), stdout);
      return 0;
    }
    if (opts.csv_dir.empty()) {
      std::fputs("error: compare needs an after-trace or --whatif scenario flags\n", stderr);
      return 2;
    }
    try {
      const auto after = tracedb::open_trace(opts.csv_dir);
      std::fputs(perf::render_comparison(perf::compare_traces(db, after)).c_str(), stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (opts.command == "whatif") {
    return run_whatif(opts, db);
  }
  if (opts.command == "timeline") {
    std::fputs(perf::render_timeline(db).c_str(), stdout);
    return 0;
  }
  if (opts.command == "metrics") {
    if (opts.prom) {
      std::fputs(telemetry::render_prometheus(db).c_str(), stdout);
    } else {
      std::fputs(telemetry::render_metrics_summary(db).c_str(), stdout);
    }
    return 0;
  }
  if (opts.command == "export") {
    if (opts.chrome_path.empty()) {
      std::fputs("error: export requires --chrome FILE\n", stderr);
      return 2;
    }
    const std::string json = telemetry::export_chrome_trace(db);
    std::FILE* f = std::fopen(opts.chrome_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", opts.chrome_path.c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok) {
      std::fprintf(stderr, "error: short write to %s\n", opts.chrome_path.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events (%zu bytes) to %s — load in chrome://tracing or ui.perfetto.dev\n",
                db.calls().size() + db.aexs().size() + db.paging().size() +
                    db.metric_samples().size(),
                json.size(), opts.chrome_path.c_str());
    return 0;
  }
  if (opts.command == "graph") {
    std::fputs(perf::render_callgraph_dot(db).c_str(), stdout);
    return 0;
  }
  if (opts.command == "flamegraph") {
    const perf::CallTree tree(db);
    std::fputs((opts.tree ? tree.render_text() : tree.collapsed()).c_str(), stdout);
    return 0;
  }
  if (opts.command == "hist" || opts.command == "scatter") {
    if (opts.call_name.empty()) {
      std::fputs("error: --call NAME required\n", stderr);
      return 2;
    }
    const auto key = find_call(db, opts.enclave_id, opts.call_name);
    if (!key) return 1;
    if (opts.command == "hist") {
      const auto hist = perf::duration_histogram(db, *key, opts.bins);
      std::fputs(hist.render_ascii(60, "us").c_str(), stdout);
      std::fputs(hist.to_csv().c_str(), stdout);
    } else {
      std::fputs(perf::scatter_csv(db, *key).c_str(), stdout);
    }
    return 0;
  }
  if (opts.command == "report" || opts.command == "stats") {
    perf::Analyzer analyzer(db, opts.config);
    if (!opts.edl_path.empty()) {
      try {
        analyzer.set_interface(opts.enclave_id, sgxsim::edl::parse_file(opts.edl_path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error parsing EDL: %s\n", e.what());
        return 1;
      }
    }
    auto report = analyzer.analyze();
    // JSON stats keep the findings (with predicted speedups) for CI; the
    // text stats table drops them — that is what `report` is for.
    if (opts.command == "stats" && !opts.json) report.findings.clear();
    if (opts.json) {
      std::printf("%s\n", stats_json(report, db, open_stats).c_str());
    } else {
      std::fputs(perf::render_text(report).c_str(), stdout);
    }
    return 0;
  }

  usage();
  return 2;
}
