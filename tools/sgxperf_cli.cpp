// sgxperf — offline analysis of recorded traces.
//
// The real tool's workflow is record-then-analyse: the logger serialises all
// events to a database, and the analyser is run on it afterwards, possibly
// many times with different options.  This CLI provides that second half:
//
//   sgxperf report  <trace.bin> [--edl FILE] [--enclave ID]   text report
//   sgxperf graph   <trace.bin>                               DOT call graph
//   sgxperf hist    <trace.bin> --call NAME [--bins N]        duration histogram
//   sgxperf scatter <trace.bin> --call NAME                   time series (CSV)
//   sgxperf csv     <trace.bin> <directory>                   dump all tables
//   sgxperf stats   <trace.bin>                               general statistics
//   sgxperf compare <before.bin> <after.bin>                  optimisation diff
//   sgxperf timeline <trace.bin>                              per-thread activity
//   sgxperf metrics <trace.bin>                               telemetry summary
//   sgxperf export  <trace.bin> --chrome FILE                 Chrome/Perfetto JSON
//   sgxperf flamegraph <trace.bin> [--tree]                   collapsed stacks
//   sgxperf record  <out.bin> [--threads N] [--calls N]       demo recording
//   sgxperf top     [--workload demo|kv|db] [--frames N]      live monitor
//
// `record` exercises the first half on a built-in multi-threaded workload:
// it attaches the logger (sharded per-thread buffers), runs N threads of
// ecall+ocall pairs, merges the shards and saves the trace — useful as a
// quick source of traces for the other commands and as a smoke test of the
// concurrent recording path.
//
// `top` is the third workflow: neither record-then-analyse nor post-mortem,
// but live.  It attaches the logger to a running workload, subscribes to the
// lock-free event stream and repaints calls/s, per-site latency percentiles,
// AEX rate and EPC residency while the workload is still in flight.
//
// Weights of the Eq. 1-3 detectors are tunable: --eq1-alpha 0.5 etc.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "minikv/driver.hpp"
#include "perf/analyzer.hpp"
#include "perf/calltree.hpp"
#include "perf/compare.hpp"
#include "perf/live.hpp"
#include "perf/logger.hpp"
#include "perf/timeline.hpp"
#include "perf/report.hpp"
#include "sgxsim/edl.hpp"
#include "sgxsim/runtime.hpp"
#include "support/json.hpp"
#include "telemetry/chrome_trace.hpp"

namespace {

struct Options {
  std::string command;
  std::string trace_path;
  std::string edl_path;
  std::string call_name;
  std::string csv_dir;
  std::string chrome_path;
  tracedb::EnclaveId enclave_id = 1;
  std::size_t bins = 100;
  std::size_t threads = 4;
  std::size_t calls = 1000;
  support::Nanoseconds sample_ns = 0;  // 0 = telemetry sampling off
  bool json = false;
  bool tree = false;                   // flamegraph: indented tree, not stacks
  std::string workload = "demo";       // top: demo | kv | db
  std::size_t frames = 5;              // top: frames to render
  std::size_t interval_ms = 100;       // top: wall-clock delay between frames
  perf::AnalyzerConfig config;
};

void usage() {
  std::fputs(
      "usage: sgxperf <command> <trace.bin> [options]\n"
      "commands:\n"
      "  report   full analysis report (findings + recommendations)\n"
      "  stats    general statistics only\n"
      "  graph    Graphviz DOT call graph (Figure 5 style) to stdout\n"
      "  hist     ASCII+CSV duration histogram    (--call NAME [--bins N])\n"
      "  scatter  duration-over-time CSV          (--call NAME)\n"
      "  csv      export all tables as CSV        (csv <trace> <directory>)\n"
      "  compare  diff two traces                 (compare <before> <after>)\n"
      "  timeline per-thread enclave activity\n"
      "  metrics  telemetry metric series recorded in the trace\n"
      "  export   convert to another format       (export <trace> --chrome FILE)\n"
      "  flamegraph  collapsed call stacks for flamegraph.pl  (--tree for ASCII tree)\n"
      "  record   record a demo workload          (record <out.bin> [--threads N] [--calls N])\n"
      "  top      live monitor over a running workload (top [--workload demo|kv|db]\n"
      "           [--frames N] [--interval-ms N] [--threads N] [--calls N])\n"
      "options:\n"
      "  --edl FILE        enclave EDL for security analysis\n"
      "  --enclave ID      enclave id the EDL/call belongs to (default 1)\n"
      "  --call NAME       call to plot (as shown by 'stats')\n"
      "  --bins N          histogram bins (default 100)\n"
      "  --eq1-alpha X --eq1-beta X --eq1-gamma X    Eq.1 weights\n"
      "  --eq2-gamma X                                Eq.2 threshold\n"
      "  --eq3-epsilon X --eq3-lambda X               Eq.3 weights\n"
      "  --transition-ns N  ecall transition time to subtract (default 4205)\n"
      "  --chrome FILE     (export) write Chrome trace-event JSON to FILE\n"
      "  --sample-ns N     (record) telemetry sample period, virtual ns (0 = off)\n"
      "  --json            (record, stats) machine-readable JSON on stdout\n"
      "  --tree            (flamegraph) indented call tree instead of collapsed stacks\n"
      "  --workload W      (top) workload to drive: demo, kv (minikv), db (minidb)\n"
      "  --frames N        (top) frames to render before exiting (default 5)\n"
      "  --interval-ms N   (top) wall-clock delay between frames (default 100)\n",
      stderr);
}

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  int i;
  if (opts.command == "top") {
    i = 2;  // `top` drives its own workload — no trace path argument
  } else {
    if (argc < 3) return false;
    opts.trace_path = argv[2];
    i = 3;
    if (opts.command == "csv" || opts.command == "compare") {
      if (argc < 4) return false;
      opts.csv_dir = argv[3];  // second path (csv directory / after-trace)
      i = 4;
    }
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--edl") {
      opts.edl_path = next();
    } else if (arg == "--enclave") {
      opts.enclave_id = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--call") {
      opts.call_name = next();
    } else if (arg == "--bins") {
      opts.bins = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--threads") {
      opts.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--calls") {
      opts.calls = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--eq1-alpha") {
      opts.config.eq1_alpha = std::strtod(next(), nullptr);
    } else if (arg == "--eq1-beta") {
      opts.config.eq1_beta = std::strtod(next(), nullptr);
    } else if (arg == "--eq1-gamma") {
      opts.config.eq1_gamma = std::strtod(next(), nullptr);
    } else if (arg == "--eq2-gamma") {
      opts.config.eq2_gamma = std::strtod(next(), nullptr);
    } else if (arg == "--eq3-epsilon") {
      opts.config.eq3_epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--eq3-lambda") {
      opts.config.eq3_lambda = std::strtod(next(), nullptr);
    } else if (arg == "--transition-ns") {
      opts.config.ecall_transition_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--chrome") {
      opts.chrome_path = next();
    } else if (arg == "--sample-ns") {
      opts.sample_ns = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--tree") {
      opts.tree = true;
    } else if (arg == "--workload") {
      opts.workload = next();
    } else if (arg == "--frames") {
      opts.frames = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--interval-ms") {
      opts.interval_ms = std::strtoul(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

constexpr const char* kDemoEdl = R"(
enclave {
  trusted {
    public int ecall_with_ocall(void);
  };
  untrusted {
    void ocall_noop(void);
  };
};
)";

sgxsim::SgxStatus demo_ocall(void*) { return sgxsim::SgxStatus::kSuccess; }

/// Drives the built-in demo enclave: `threads` workers, each issuing `calls`
/// ecall+ocall pairs.  Shared by `record` and `top --workload demo`.
void run_demo_workload(sgxsim::Urts& urts, std::size_t threads, std::size_t calls) {
  using namespace sgxsim;
  EnclaveConfig config;
  config.name = "demo";
  config.tcs_count = threads + 1;
  const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kDemoEdl));
  urts.enclave(eid).register_ecall("ecall_with_ocall", [](TrustedContext& ctx, void*) {
    ctx.work(500);
    return ctx.ocall(0, nullptr);
  });
  OcallTable table = make_ocall_table({&demo_ocall});

  const auto body = [&] {
    for (std::size_t i = 0; i < calls; ++i) {
      urts.sgx_ecall(eid, 0, &table, nullptr);
    }
  };
  if (threads == 1) {
    body();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) workers.emplace_back(body);
    for (auto& w : workers) w.join();
  }
}

/// `sgxperf record`: run the built-in demo workload (--threads workers, each
/// issuing --calls ecall+ocall pairs) through the sharded logger and save the
/// merged trace to opts.trace_path.
int run_record(const Options& opts) {
  using namespace sgxsim;
  if (opts.threads == 0 || opts.calls == 0) {
    std::fputs("error: --threads and --calls must be > 0\n", stderr);
    return 2;
  }
  Urts urts;
  tracedb::TraceDatabase db;
  perf::LoggerConfig logger_config;
  logger_config.metric_sample_period_ns = opts.sample_ns;
  perf::Logger logger(db, logger_config);
  logger.attach(urts);

  run_demo_workload(urts, opts.threads, opts.calls);
  logger.detach();  // seals + merges the per-thread shards

  const auto stats = db.merge_stats();
  try {
    db.save(opts.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (opts.json) {
    support::json::Writer w;
    w.begin_object();
    w.kv("calls", static_cast<std::uint64_t>(db.calls().size()));
    w.kv("aexs", static_cast<std::uint64_t>(db.aexs().size()));
    w.kv("paging", static_cast<std::uint64_t>(db.paging().size()));
    w.kv("syncs", static_cast<std::uint64_t>(db.syncs().size()));
    w.kv("shards_registered", static_cast<std::uint64_t>(db.shard_count()));
    w.kv("shards_merged", static_cast<std::uint64_t>(stats.shards_merged));
    w.kv("merges", static_cast<std::uint64_t>(stats.merges));
    w.kv("dropped_events", static_cast<std::uint64_t>(stats.dropped));
    w.kv("metric_series", static_cast<std::uint64_t>(db.metric_series().size()));
    w.kv("metric_samples", static_cast<std::uint64_t>(db.metric_samples().size()));
    w.kv("trace", opts.trace_path);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("recorded %zu calls, %zu AEXs, %zu paging events, %zu syncs\n", db.calls().size(),
                db.aexs().size(), db.paging().size(), db.syncs().size());
    std::printf("shards: %zu registered, %zu merged in %zu merge(s), %zu events dropped\n",
                db.shard_count(), stats.shards_merged, stats.merges, stats.dropped);
    if (db.metric_samples().size() > 0) {
      std::printf("telemetry: %zu metric series, %zu samples\n", db.metric_series().size(),
                  db.metric_samples().size());
    }
    std::printf("trace written to %s\n", opts.trace_path.c_str());
  }
  return 0;
}

/// `sgxperf top`: attach the logger to a live workload, subscribe to the
/// event stream and repaint aggregate statistics while it runs.  The logger
/// is never detached between frames — everything shown comes through the
/// lock-free streaming subscription, not the merged trace.
int run_top(const Options& opts) {
  if (opts.threads == 0 || opts.calls == 0 || opts.frames == 0) {
    std::fputs("error: --threads, --calls and --frames must be > 0\n", stderr);
    return 2;
  }
  if (opts.workload != "demo" && opts.workload != "kv" && opts.workload != "db") {
    std::fprintf(stderr, "error: unknown workload '%s' (demo, kv, db)\n",
                 opts.workload.c_str());
    return 2;
  }

  sgxsim::Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  perf::LiveMonitor monitor(logger);
  if (!monitor.ok()) {
    std::fputs("error: no free streaming subscriber slot\n", stderr);
    return 1;
  }

  std::atomic<bool> done{false};
  std::thread worker([&] {
    if (opts.workload == "kv") {
      minikv::Store store(urts.clock());
      minikv::KvProxy proxy(urts, store);
      minikv::DriverConfig config;
      config.clients = opts.threads;
      config.ops_per_client = opts.calls;
      minikv::run_workload(proxy, config);
    } else if (opts.workload == "db") {
      minidb::HostVfs vfs(urts.clock());
      minidb::DbEnclave dbe(urts, vfs, minidb::WriteMode::kSeekThenWrite);
      dbe.open("/top.db");
      minidb::CommitGenerator gen;
      for (std::size_t i = 0; i < opts.calls; ++i) {
        dbe.begin();
        for (const auto& [k, v] : gen.make(static_cast<std::uint64_t>(i)).to_records()) {
          dbe.put_in_txn(k, v);
        }
        dbe.commit();
      }
      dbe.close_db();
    } else {
      run_demo_workload(urts, opts.threads, opts.calls);
    }
    done.store(true, std::memory_order_release);
  });

  // Repaint in place on a terminal; emit sequential frames when piped.
  const bool tty = isatty(fileno(stdout)) != 0;
  for (std::size_t frame = 0; frame + 1 < opts.frames; ++frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    const std::string text = monitor.render_frame();
    if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(text.c_str(), stdout);
    if (!tty) std::fputs("\n", stdout);
    std::fflush(stdout);
    if (done.load(std::memory_order_acquire)) break;
  }
  worker.join();

  // Final frame after the workload finished: drains whatever is still queued.
  const std::string text = monitor.render_frame();
  if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
  std::fputs(text.c_str(), stdout);

  logger.detach();
  std::printf("\nworkload '%s' finished: %llu calls observed live, %llu dropped by the "
              "subscriber (trace recorded %zu calls)\n",
              opts.workload.c_str(),
              static_cast<unsigned long long>(monitor.total_calls()),
              static_cast<unsigned long long>(monitor.dropped()), db.calls().size());
  return 0;
}

/// `sgxperf stats --json`: general statistics as a JSON document, one object
/// per call site, so CI can assert on counts without scraping the text table.
std::string stats_json(const perf::AnalysisReport& report) {
  support::json::Writer w;
  w.begin_object();
  w.key("dropped_events");
  w.value(report.dropped_events);
  w.key("stream_dropped_events");
  w.value(report.stream_dropped);
  w.key("enclaves");
  w.begin_array();
  for (const auto& ov : report.overviews) {
    w.begin_object();
    w.kv("enclave_id", static_cast<std::uint64_t>(ov.enclave_id));
    w.kv("name", ov.name);
    w.kv("ecalls_called", static_cast<std::uint64_t>(ov.ecalls_called));
    w.kv("ocalls_called", static_cast<std::uint64_t>(ov.ocalls_called));
    w.kv("ecall_instances", static_cast<std::uint64_t>(ov.ecall_instances));
    w.kv("ocall_instances", static_cast<std::uint64_t>(ov.ocall_instances));
    w.kv("ecalls_below_10us", ov.ecalls_below_10us);
    w.kv("ocalls_below_10us", ov.ocalls_below_10us);
    w.kv("page_ins", static_cast<std::uint64_t>(ov.page_ins));
    w.kv("page_outs", static_cast<std::uint64_t>(ov.page_outs));
    w.end_object();
  }
  w.end_array();
  w.key("calls");
  w.begin_array();
  for (const auto& s : report.stats) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("type", s.key.type == tracedb::CallType::kEcall ? "ecall" : "ocall");
    w.kv("enclave_id", static_cast<std::uint64_t>(s.key.enclave_id));
    w.kv("call_id", static_cast<std::uint64_t>(s.key.call_id));
    w.kv("count", static_cast<std::uint64_t>(s.duration_ns.count));
    w.kv("mean_ns", s.duration_ns.mean);
    w.kv("median_ns", s.duration_ns.median);
    w.kv("stddev_ns", s.duration_ns.stddev);
    // HDR-quantized percentiles (same bucketing as the trace's latency table).
    w.kv("p50_ns", s.p50_ns);
    w.kv("p90_ns", s.p90_ns);
    w.kv("p99_ns", s.p99_ns);
    w.kv("p999_ns", s.p999_ns);
    w.kv("aex_total", s.aex_total);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

/// Resolves a call by registered name across both call types.
std::optional<tracedb::CallKey> find_call(const tracedb::TraceDatabase& db,
                                          tracedb::EnclaveId enclave,
                                          const std::string& name) {
  for (const auto& rec : db.call_names()) {
    if (rec.enclave_id == enclave && rec.name == name) {
      return tracedb::CallKey{rec.enclave_id, rec.type, rec.call_id};
    }
  }
  // Fall back to the synthesized "ecall_<id>"/"ocall_<id>" names.
  const auto groups = tracedb::group_calls(db);
  for (const auto& [key, _] : groups) {
    if (key.enclave_id == enclave && db.name_of(key.enclave_id, key.type, key.call_id) == name) {
      return key;
    }
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 2;
  }

  if (opts.command == "record") return run_record(opts);
  if (opts.command == "top") return run_top(opts);

  tracedb::TraceDatabase db = [&] {
    try {
      return tracedb::TraceDatabase::load(opts.trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }();

  if (opts.command == "csv") {
    db.export_csv(opts.csv_dir);
    std::printf("exported %zu calls, %zu AEXs, %zu paging events to %s\n", db.calls().size(),
                db.aexs().size(), db.paging().size(), opts.csv_dir.c_str());
    return 0;
  }
  if (opts.command == "compare") {
    try {
      const auto after = tracedb::TraceDatabase::load(opts.csv_dir);
      std::fputs(perf::render_comparison(perf::compare_traces(db, after)).c_str(), stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (opts.command == "timeline") {
    std::fputs(perf::render_timeline(db).c_str(), stdout);
    return 0;
  }
  if (opts.command == "metrics") {
    std::fputs(telemetry::render_metrics_summary(db).c_str(), stdout);
    return 0;
  }
  if (opts.command == "export") {
    if (opts.chrome_path.empty()) {
      std::fputs("error: export requires --chrome FILE\n", stderr);
      return 2;
    }
    const std::string json = telemetry::export_chrome_trace(db);
    std::FILE* f = std::fopen(opts.chrome_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n", opts.chrome_path.c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok) {
      std::fprintf(stderr, "error: short write to %s\n", opts.chrome_path.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events (%zu bytes) to %s — load in chrome://tracing or ui.perfetto.dev\n",
                db.calls().size() + db.aexs().size() + db.paging().size() +
                    db.metric_samples().size(),
                json.size(), opts.chrome_path.c_str());
    return 0;
  }
  if (opts.command == "graph") {
    std::fputs(perf::render_callgraph_dot(db).c_str(), stdout);
    return 0;
  }
  if (opts.command == "flamegraph") {
    const perf::CallTree tree(db);
    std::fputs((opts.tree ? tree.render_text() : tree.collapsed()).c_str(), stdout);
    return 0;
  }
  if (opts.command == "hist" || opts.command == "scatter") {
    if (opts.call_name.empty()) {
      std::fputs("error: --call NAME required\n", stderr);
      return 2;
    }
    const auto key = find_call(db, opts.enclave_id, opts.call_name);
    if (!key) {
      std::fprintf(stderr, "error: no call named '%s' for enclave %llu\n",
                   opts.call_name.c_str(),
                   static_cast<unsigned long long>(opts.enclave_id));
      return 1;
    }
    if (opts.command == "hist") {
      const auto hist = perf::duration_histogram(db, *key, opts.bins);
      std::fputs(hist.render_ascii(60, "us").c_str(), stdout);
      std::fputs(hist.to_csv().c_str(), stdout);
    } else {
      std::fputs(perf::scatter_csv(db, *key).c_str(), stdout);
    }
    return 0;
  }
  if (opts.command == "report" || opts.command == "stats") {
    perf::Analyzer analyzer(db, opts.config);
    if (!opts.edl_path.empty()) {
      try {
        analyzer.set_interface(opts.enclave_id, sgxsim::edl::parse_file(opts.edl_path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error parsing EDL: %s\n", e.what());
        return 1;
      }
    }
    auto report = analyzer.analyze();
    if (opts.command == "stats") report.findings.clear();
    if (opts.json) {
      std::printf("%s\n", stats_json(report).c_str());
    } else {
      std::fputs(perf::render_text(report).c_str(), stdout);
    }
    return 0;
  }

  usage();
  return 2;
}
