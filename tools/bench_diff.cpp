// bench_diff — compare fresh BENCH_*.json results against committed
// baselines.
//
//   bench_diff --fresh DIR --baseline DIR [--threshold 0.25] [--strict] [file...]
//
// For each listed BENCH_<name>.json, metrics are matched by name and the
// relative change |fresh - base| / base is computed.  Changes beyond the
// threshold are flagged and make the exit status nonzero.
//
// A listed file with no baseline counterpart is *reported* as skipped, never
// silently dropped: a brand-new bench that nobody ever diffs is exactly how
// regressions in new subsystems go unnoticed.  Skips are listed in the
// summary and, with --strict, make the exit status nonzero on their own —
// the mode for CI setups that require every bench to carry a baseline.
//
// Metric direction (higher- vs lower-is-better) is not encoded in the
// files, so bench_diff flags drift in *either* direction: a 2x "speedup"
// on a ns-metric is as suspicious as a 2x slowdown when the workload was
// supposed to be unchanged.  CI runs this as an advisory leg — virtual-time
// metrics are deterministic, but wall-clock metrics vary with machine load,
// so a red bench_diff is a prompt to look, not a build failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

struct Metrics {
  std::map<std::string, double> values;  // metric name -> value
  std::string unit_of;                   // unused; units live in the files
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Loads the metrics array of one BENCH_*.json.  Returns false (with a
/// message) on parse/shape errors.
bool load_metrics(const std::string& path, std::map<std::string, double>& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  try {
    const auto doc = support::json::parse(text);
    if (!doc.is_object()) throw std::runtime_error("top-level value is not an object");
    const auto* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->is_array()) {
      throw std::runtime_error("missing \"metrics\" array");
    }
    for (const auto& row : metrics->array) {
      const auto* name = row.find("name");
      const auto* value = row.find("value");
      if (name == nullptr || !name->is_string() || value == nullptr || !value->is_number()) {
        throw std::runtime_error("metric row without string name / numeric value");
      }
      out[name->string] = value->number;
    }
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string fresh_dir;
  std::string baseline_dir;
  double threshold = 0.25;
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fresh" && i + 1 < argc) {
      fresh_dir = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg[0] != '-') {
      files.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: bench_diff --fresh DIR --baseline DIR [--threshold F] "
                   "[--strict] [BENCH_name.json...]\n");
      return 2;
    }
  }
  if (fresh_dir.empty() || baseline_dir.empty() || files.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff --fresh DIR --baseline DIR [--threshold F] "
                 "[--strict] [BENCH_name.json...]\n");
    return 2;
  }

  int flagged = 0;
  int compared = 0;
  std::vector<std::string> skipped;
  std::printf("%-16s %-28s %14s %14s %9s\n", "bench", "metric", "baseline", "fresh", "change");
  for (const auto& file : files) {
    // A missing baseline is a skip (reported, and fatal only under --strict);
    // an unreadable or malformed file on either side stays a hard flag.
    if (std::string probe; !read_file(baseline_dir + "/" + file, probe)) {
      std::printf("%-16s %-28s %14s %14s %9s  SKIPPED (no baseline)\n", file.c_str(), "-",
                  "-", "-", "-");
      skipped.push_back(file);
      continue;
    }
    std::map<std::string, double> base;
    std::map<std::string, double> fresh;
    if (!load_metrics(baseline_dir + "/" + file, base) ||
        !load_metrics(fresh_dir + "/" + file, fresh)) {
      ++flagged;
      continue;
    }
    for (const auto& [name, base_value] : base) {
      const auto it = fresh.find(name);
      if (it == fresh.end()) {
        std::printf("%-16s %-28s %14.4g %14s %9s  MISSING\n", file.c_str(), name.c_str(),
                    base_value, "-", "-");
        ++flagged;
        continue;
      }
      ++compared;
      const double change =
          base_value == 0.0 ? (it->second == 0.0 ? 0.0 : 1.0)
                            : (it->second - base_value) / base_value;
      const bool over = change > threshold || change < -threshold;
      if (over) ++flagged;
      std::printf("%-16s %-28s %14.4g %14.4g %+8.1f%%%s\n", file.c_str(), name.c_str(),
                  base_value, it->second, change * 100.0, over ? "  DRIFT" : "");
    }
    for (const auto& [name, value] : fresh) {
      if (base.find(name) == base.end()) {
        std::printf("%-16s %-28s %14s %14.4g %9s  NEW\n", file.c_str(), name.c_str(), "-", value,
                    "-");
      }
    }
  }
  std::printf("\nbench_diff: %d metric(s) compared, %d flagged (threshold %.0f%%)\n", compared,
              flagged, threshold * 100.0);
  if (!skipped.empty()) {
    std::string names;
    for (const auto& file : skipped) {
      if (!names.empty()) names += ' ';
      names += file;
    }
    std::printf("bench_diff: %zu bench(es) skipped, no baseline%s: %s\n", skipped.size(),
                strict ? " (fatal under --strict)" : "", names.c_str());
  }
  if (flagged != 0) return 1;
  return (strict && !skipped.empty()) ? 1 : 0;
}
