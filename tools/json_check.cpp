// json_check — validates that a file (or stdin) is a well-formed JSON
// document, using the same parser the test-suite uses.  CI runs it over every
// artefact the toolchain emits as JSON (BENCH_*.json, `sgxperf export
// --chrome`, `--json` CLI output) so a malformed writer fails the pipeline
// instead of silently producing garbage for downstream consumers.
//
//   json_check FILE...     validate each file; first failure wins
//   json_check -           validate stdin
//
// Exit status: 0 = all valid, 1 = parse error (reported with byte offset),
// 2 = usage / IO error.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace {

bool read_all(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return std::ferror(f) == 0;
}

int check(const char* name, std::FILE* f) {
  std::string text;
  if (!read_all(f, text)) {
    std::fprintf(stderr, "json_check: %s: read error\n", name);
    return 2;
  }
  try {
    (void)support::json::parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "json_check: %s: %s\n", name, e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs("usage: json_check FILE...  (or '-' for stdin)\n", stderr);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int rc = 0;
    if (arg == "-") {
      rc = check("<stdin>", stdin);
    } else {
      std::FILE* f = std::fopen(arg.c_str(), "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "json_check: %s: cannot open\n", arg.c_str());
        return 2;
      }
      rc = check(arg.c_str(), f);
      std::fclose(f);
    }
    if (rc != 0) return rc;
  }
  return 0;
}
