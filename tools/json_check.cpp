// json_check — validates that a file (or stdin) is a well-formed JSON
// document, using the same parser the test-suite uses.  CI runs it over every
// artefact the toolchain emits as JSON (BENCH_*.json, `sgxperf export
// --chrome`, `--json` CLI output) so a malformed writer fails the pipeline
// instead of silently producing garbage for downstream consumers.
//
// Beyond grammar, every artefact must be a JSON object carrying a numeric
// top-level "schema_version" (support::json::kSchemaVersion) — downstream
// consumers dispatch on it, so an emitter that forgets the stamp fails CI
// here rather than surprising a parser later.
//
//   json_check FILE...        validate each file; first failure wins
//   json_check -              validate stdin
//   json_check --prom FILE... validate Prometheus text-exposition files
//                             instead: every line is a '#' comment or
//                             `name value` with a legal metric name and a
//                             parseable number, and at least one sample is
//                             present (`sgxperf metrics --prom`, serve
//                             --prom-out)
//
// Exit status: 0 = all valid, 1 = parse/schema error (reported with byte
// offset for parse errors), 2 = usage / IO error.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace {

bool read_all(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return std::ferror(f) == 0;
}

int check(const char* name, std::FILE* f) {
  std::string text;
  if (!read_all(f, text)) {
    std::fprintf(stderr, "json_check: %s: read error\n", name);
    return 2;
  }
  try {
    const auto doc = support::json::parse(text);
    if (!doc.is_object()) {
      std::fprintf(stderr, "json_check: %s: top-level value is not an object\n", name);
      return 1;
    }
    const auto* version = doc.find("schema_version");
    if (version == nullptr || !version->is_number()) {
      std::fprintf(stderr, "json_check: %s: missing numeric top-level \"schema_version\"\n",
                   name);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "json_check: %s: %s\n", name, e.what());
    return 1;
  }
  return 0;
}

/// Prometheus text-exposition grammar (the subset our emitters produce):
/// lines are `# ...` comments (including TYPE/HELP) or `name value` samples
/// with name matching [a-zA-Z_:][a-zA-Z0-9_:]* and a strtod-parseable value.
bool prom_name_ok(const std::string& name) {
  if (name.empty()) return false;
  const auto head_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
  };
  if (!head_ok(name[0])) return false;
  for (const char c : name) {
    if (!head_ok(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

int check_prom(const char* name, std::FILE* f) {
  std::string text;
  if (!read_all(f, text)) {
    std::fprintf(stderr, "json_check: %s: read error\n", name);
    return 2;
  }
  std::size_t samples = 0;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      std::fprintf(stderr, "json_check: %s: missing final newline\n", name);
      return 1;
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    line_no += 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      std::fprintf(stderr, "json_check: %s:%zu: expected 'name value'\n", name, line_no);
      return 1;
    }
    if (!prom_name_ok(line.substr(0, space))) {
      std::fprintf(stderr, "json_check: %s:%zu: illegal metric name\n", name, line_no);
      return 1;
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "json_check: %s:%zu: unparseable sample value\n", name, line_no);
      return 1;
    }
    samples += 1;
  }
  if (samples == 0) {
    std::fprintf(stderr, "json_check: %s: no samples\n", name);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool prom = false;
  int first = 1;
  if (argc > 1 && std::string(argv[1]) == "--prom") {
    prom = true;
    first = 2;
  }
  if (first >= argc) {
    std::fputs("usage: json_check [--prom] FILE...  (or '-' for stdin)\n", stderr);
    return 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    int rc = 0;
    if (arg == "-") {
      rc = prom ? check_prom("<stdin>", stdin) : check("<stdin>", stdin);
    } else {
      std::FILE* f = std::fopen(arg.c_str(), "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "json_check: %s: cannot open\n", arg.c_str());
        return 2;
      }
      rc = prom ? check_prom(arg.c_str(), f) : check(arg.c_str(), f);
      std::fclose(f);
    }
    if (rc != 0) return rc;
  }
  return 0;
}
