// json_check — validates that a file (or stdin) is a well-formed JSON
// document, using the same parser the test-suite uses.  CI runs it over every
// artefact the toolchain emits as JSON (BENCH_*.json, `sgxperf export
// --chrome`, `--json` CLI output) so a malformed writer fails the pipeline
// instead of silently producing garbage for downstream consumers.
//
// Beyond grammar, every artefact must be a JSON object carrying a numeric
// top-level "schema_version" (support::json::kSchemaVersion) — downstream
// consumers dispatch on it, so an emitter that forgets the stamp fails CI
// here rather than surprising a parser later.
//
//   json_check FILE...     validate each file; first failure wins
//   json_check -           validate stdin
//
// Exit status: 0 = all valid, 1 = parse/schema error (reported with byte
// offset for parse errors), 2 = usage / IO error.
#include <cstdio>
#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace {

bool read_all(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return std::ferror(f) == 0;
}

int check(const char* name, std::FILE* f) {
  std::string text;
  if (!read_all(f, text)) {
    std::fprintf(stderr, "json_check: %s: read error\n", name);
    return 2;
  }
  try {
    const auto doc = support::json::parse(text);
    if (!doc.is_object()) {
      std::fprintf(stderr, "json_check: %s: top-level value is not an object\n", name);
      return 1;
    }
    const auto* version = doc.find("schema_version");
    if (version == nullptr || !version->is_number()) {
      std::fprintf(stderr, "json_check: %s: missing numeric top-level \"schema_version\"\n",
                   name);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "json_check: %s: %s\n", name, e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs("usage: json_check FILE...  (or '-' for stdin)\n", stderr);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int rc = 0;
    if (arg == "-") {
      rc = check("<stdin>", stdin);
    } else {
      std::FILE* f = std::fopen(arg.c_str(), "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "json_check: %s: cannot open\n", arg.c_str());
        return 2;
      }
      rc = check(arg.c_str(), f);
      std::fclose(f);
    }
    if (rc != 0) return rc;
  }
  return 0;
}
