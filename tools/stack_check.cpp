// stack_check — validator for collapsed-stack (flamegraph) text, in the
// spirit of json_check: CI pipes every `sgxperf flamegraph` artefact through
// it so a malformed line fails the pipeline instead of silently producing a
// broken flamegraph.
//
//   stack_check FILE [--golden GOLDEN]
//
// Validates the collapsed format line by line:
//   frame(;frame)* <positive integer>\n
// with non-empty frames (no empty stack, no leading/trailing/double ';',
// no missing or non-numeric weight), and requires the lines to be sorted —
// the order `sgxperf flamegraph` guarantees.  With --golden the file must
// additionally match GOLDEN byte-for-byte.
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

bool valid_line(const std::string& line, std::string& error) {
  const std::size_t space = line.rfind(' ');
  if (space == std::string::npos) {
    error = "no weight separator";
    return false;
  }
  const std::string stack = line.substr(0, space);
  const std::string weight = line.substr(space + 1);
  if (stack.empty()) {
    error = "empty stack";
    return false;
  }
  if (weight.empty()) {
    error = "empty weight";
    return false;
  }
  for (const char c : weight) {
    if (c < '0' || c > '9') {
      error = "non-numeric weight '" + weight + "'";
      return false;
    }
  }
  if (weight == "0") {
    error = "zero-weight line (should have been omitted)";
    return false;
  }
  if (stack.front() == ';' || stack.back() == ';' ||
      stack.find(";;") != std::string::npos) {
    error = "empty frame in stack";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && !(argc == 4 && std::string(argv[2]) == "--golden")) {
    std::fprintf(stderr, "usage: stack_check FILE [--golden GOLDEN]\n");
    return 2;
  }
  const std::string path = argv[1];
  const std::string text = slurp(path);
  if (text.empty()) {
    std::fprintf(stderr, "%s: empty or unreadable\n", path.c_str());
    return 1;
  }
  if (text.back() != '\n') {
    std::fprintf(stderr, "%s: missing trailing newline\n", path.c_str());
    return 1;
  }

  std::size_t line_no = 0;
  std::size_t begin = 0;
  std::string prev;
  while (begin < text.size()) {
    ++line_no;
    const std::size_t end = text.find('\n', begin);
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    std::string error;
    if (!valid_line(line, error)) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_no, error.c_str());
      return 1;
    }
    if (!prev.empty() && !(prev < line)) {
      std::fprintf(stderr, "%s:%zu: lines not sorted/unique\n", path.c_str(), line_no);
      return 1;
    }
    prev = line;
  }

  if (argc == 4) {
    const std::string golden = slurp(argv[3]);
    if (golden.empty()) {
      std::fprintf(stderr, "%s: missing golden file\n", argv[3]);
      return 1;
    }
    if (text != golden) {
      std::fprintf(stderr, "%s: does not match golden %s\n", path.c_str(), argv[3]);
      return 1;
    }
  }
  std::printf("%s: %zu stacks ok\n", path.c_str(), line_no);
  return 0;
}
