// E6/E7/E8 — §5.2.4 / Figures 7 and 8: SecureKeeper-like proxy under load.
//
// Runs the multi-client workload with the logger attached, then produces:
//  * Figure 7: the execution-time histogram (100 bins) of
//    ecall_handle_input_from_client (ASCII + securekeeper_histogram.csv),
//  * Figure 8: the scatter of execution time over application time
//    (ASCII + securekeeper_scatter.csv),
//  * E8: interface narrowness, mean ecall durations vs the transition cost,
//    sync-ocall timing (connection storm only) and the working-set /
//    EPC-capacity estimate (paper: 322/94 pages; 249 enclaves fit the EPC).
#include <cstdio>
#include <fstream>

#include "bench_json.hpp"
#include "minikv/driver.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/report.hpp"
#include "perf/workingset.hpp"
#include "support/strutil.hpp"

int main(int argc, char** argv) {
  using namespace minikv;
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("securekeeper", smoke, bench::strip_out_dir_flag(argc, argv));

  std::printf("=== E6-E8: SecureKeeper-like proxy (paper §5.2.4, Figs. 7/8) ===\n\n");

  // Phase 1 — the connection storm: many clients connect simultaneously,
  // contending on the in-enclave session map (sleep/wake ocalls expected).
  // The clients free-run on OS threads, so whether any of them actually
  // collide inside the session map is scheduler luck; retry a few times so
  // the exit-status assertion checks "the storm *can* contend", not "this
  // particular interleaving did".
  std::size_t storm_sync_events = 0;
  for (int attempt = 0; attempt < 5 && storm_sync_events == 0; ++attempt) {
    sgxsim::Urts storm_urts;
    Store storm_store(storm_urts.clock());
    KvProxy storm_proxy(storm_urts, storm_store);
    tracedb::TraceDatabase storm_trace;
    perf::Logger storm_logger(storm_trace);
    storm_logger.attach(storm_urts);
    DriverConfig storm_config;
    storm_config.clients = 12;
    storm_config.ops_per_client = 50;
    const DriverReport storm = run_workload(storm_proxy, storm_config);
    storm_logger.detach();
    storm_sync_events = storm_trace.syncs().size();
    std::printf("connection storm: %zu clients, %llu ops, %zu sync (sleep/wake) events "
                "(paper: 18 sync ocalls, all during connect)\n\n",
                storm_config.clients, static_cast<unsigned long long>(storm.operations),
                storm_sync_events);
  }

  // Phase 2 — steady-state load from one pipelined client: clean per-call
  // timings for the Figure 7/8 plots (a single shared virtual clock would
  // otherwise attribute concurrent threads' work to each other's calls).
  sgxsim::Urts urts;
  Store store(urts.clock());
  KvProxy::Config proxy_config;
  proxy_config.connect_spin_iterations = 0;
  KvProxy proxy(urts, store, proxy_config);
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);

  DriverConfig config;
  config.clients = 1;
  config.ops_per_client = smoke ? 2'000 : 20'000;
  const DriverReport report = run_workload(proxy, config);
  logger.detach();

  std::printf("clients: %zu, operations: %llu (failures: %llu), virtual duration: %.2f s, "
              "throughput: %.0f ops/s\n",
              config.clients, static_cast<unsigned long long>(report.operations),
              static_cast<unsigned long long>(report.failures),
              static_cast<double>(report.virtual_duration_ns) / 1e9,
              report.throughput_ops_per_s);
  json.metric("throughput_ops_per_s", report.throughput_ops_per_s, "ops/s");
  json.metric("storm_sync_events", static_cast<double>(storm_sync_events), "events");

  perf::Analyzer analyzer(trace);
  analyzer.set_interface(proxy.enclave_id(), sgxsim::edl::parse(kKvEdl));
  const auto analysis = analyzer.analyze();
  for (const auto& ov : analysis.overviews) {
    std::printf("interface: %zu ecalls / %zu ocalls defined; %zu / %zu called "
                "(paper: 2/6 defined, 2/3 called)\n",
                ov.ecalls_defined, ov.ocalls_defined, ov.ecalls_called, ov.ocalls_called);
  }
  std::printf("\n--- call statistics (paper: both ecalls ~14/18 us, 4-6x the transition) ---\n");
  std::printf("%-44s %10s %10s %10s\n", "call", "count", "mean[us]", "p99[us]");
  for (const auto& s : analysis.stats) {
    std::printf("%s %-42s %10zu %10.2f %10.2f\n",
                s.key.type == tracedb::CallType::kEcall ? "E" : "O", s.name.c_str(),
                s.duration_ns.count, s.duration_ns.mean / 1e3, s.duration_ns.p99 / 1e3);
  }

  // Sync ocalls: connection storm only (paper observed 18, none afterwards).
  std::printf("\nsync events: %zu (sleep+wake, connection storm; paper saw 18 sync ocalls "
              "during connect, none in steady state)\n",
              trace.syncs().size());

  // --- Figure 7: histogram ---------------------------------------------------------
  const tracedb::CallKey key{proxy.enclave_id(), tracedb::CallType::kEcall, 0};
  const auto hist = perf::duration_histogram(trace, key, 100);
  std::printf("\n--- Figure 7: ecall_handle_input_from_client duration histogram "
              "(100 bins; paper mode ~15 us) ---\n");
  // Compact the 100 bins to 25 rows for the console; the CSV has all 100.
  {
    const auto full = perf::duration_histogram(trace, key, 25);
    std::fputs(full.render_ascii(48, "us").c_str(), stdout);
  }
  {
    std::ofstream out("securekeeper_histogram.csv");
    out << hist.to_csv();
  }
  std::printf("full histogram written to securekeeper_histogram.csv\n");

  // --- Figure 8: scatter -------------------------------------------------------------
  std::printf("\n--- Figure 8: execution time over application time ---\n");
  std::fputs(perf::render_scatter_ascii(trace, key, 72, 14).c_str(), stdout);
  {
    std::ofstream out("securekeeper_scatter.csv");
    out << perf::scatter_csv(trace, key);
  }
  std::printf("full scatter written to securekeeper_scatter.csv\n");

  // --- E8: working set and EPC capacity ------------------------------------------------
  {
    sgxsim::Urts ws_urts;
    Store ws_store(ws_urts.clock());
    KvProxy ws_proxy(ws_urts, ws_store);
    perf::WorkingSetEstimator ws(ws_urts.enclave(ws_proxy.enclave_id()));
    ws.start();
    for (std::uint64_t c = 0; c < 4; ++c) ws_proxy.connect_client(c);
    const auto startup = ws.checkpoint();
    for (int i = 0; i < 50; ++i) {
      Request req;
      req.client_id = static_cast<std::uint64_t>(i % 4);
      req.xid = static_cast<std::uint64_t>(i + 1);
      req.op = i % 2 == 0 ? OpCode::kCreate : OpCode::kGetData;
      const std::string path = support::format("/bench/%d", i % 16);
      req.path.assign(path.begin(), path.end());
      if (req.op == OpCode::kCreate) req.payload.assign(900, 1);
      (void)ws_proxy.process(req);
    }
    const auto steady = ws.accessed_pages();
    ws.stop();

    const auto& enclave = ws_urts.enclave(ws_proxy.enclave_id());
    const std::size_t epc_pages = ws_urts.driver().epc_pages();
    const std::size_t enclaves_per_epc = epc_pages / enclave.total_pages();
    std::printf("\nworking set: %zu pages (%s) at start-up, %zu pages (%s) in steady state "
                "(paper: 322 / 94)\n",
                startup.size(),
                support::format_bytes(startup.size() * sgxsim::kPageSize).c_str(),
                steady.size(), support::format_bytes(steady.size() * sgxsim::kPageSize).c_str());
    std::printf("enclave size: %zu pages; one-enclave-per-client fits ~%zu enclaves in the "
                "93 MiB EPC (paper: 249)\n",
                enclave.total_pages(), enclaves_per_epc);
    json.metric("working_set_startup", static_cast<double>(startup.size()), "pages");
    json.metric("working_set_steady", static_cast<double>(steady.size()), "pages");
    json.metric("enclaves_per_epc", static_cast<double>(enclaves_per_epc), "enclaves");
  }

  std::printf("\nanalyser findings: %zu (paper: 'we were not able to spot any performance "
              "optimisation possibilities' beyond the storm)\n",
              analysis.findings.size());
  json.metric("findings", static_cast<double>(analysis.findings.size()), "findings");
  if (!json.write()) return 1;
  return report.failures == 0 && storm_sync_events > 0 ? 0 : 1;
}
