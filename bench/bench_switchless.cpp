// Extension bench — switchless calls (SDK 2.x / HotCalls-style).
//
// §2.3 and §6 of the paper point at asynchronous/switchless calls
// (SCONE, HotCalls) as the systems-level fix for transition-bound
// workloads.  This ablation runs the same short-ecall storm through (a)
// regular transitions and (b) the switchless worker path enabled via the
// EDL's `transition_using_threads`, at all three patch levels — showing
// that the win grows exactly where sgx-perf's SISC findings hurt the most,
// and that the call remains visible to the profiler either way.
#include <cstdio>

#include "bench_json.hpp"
#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_fast(uint64_t v) transition_using_threads;
    public int ecall_regular(uint64_t v);
  };
  untrusted {};
};
)";

double storm_ns_per_call(Urts& urts, EnclaveId eid, OcallTable& table, CallId id, int calls) {
  std::uint64_t v = 0;
  const auto t0 = urts.clock().now();
  for (int i = 0; i < calls; ++i) urts.sgx_ecall(eid, id, &table, &v);
  return static_cast<double>(urts.clock().now() - t0) / calls;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("switchless", smoke, out_dir);
  const int kCalls = smoke ? 5'000 : 50'000;
  std::printf("=== extension: switchless calls vs regular transitions ===\n");
  std::printf("the remedy §2.3/§6 cites (SCONE async calls, HotCalls) for SISC-bound "
              "interfaces; %d short ecalls (~150 ns of work each)\n\n",
              kCalls);

  std::printf("%-16s %16s %16s %10s\n", "patch level", "regular[ns]", "switchless[ns]",
              "speedup");
  for (const auto lvl : {PatchLevel::kUnpatched, PatchLevel::kSpectre,
                         PatchLevel::kSpectreL1tf}) {
    Urts urts(CostModel::preset(lvl));
    const EnclaveId eid = urts.create_enclave({}, edl::parse(kEdl));
    Enclave& enclave = urts.enclave(eid);
    const auto work = [](TrustedContext& ctx, void*) {
      ctx.work(150);
      return SgxStatus::kSuccess;
    };
    enclave.register_ecall("ecall_fast", work);
    enclave.register_ecall("ecall_regular", work);
    OcallTable table = make_ocall_table({});
    urts.set_switchless_workers(eid, 2);

    const double regular = storm_ns_per_call(urts, eid, table, 1, kCalls);
    const double switchless = storm_ns_per_call(urts, eid, table, 0, kCalls);
    std::printf("%-16s %16.0f %16.0f %9.1fx\n", to_string(lvl), regular, switchless,
                regular / switchless);
    const std::string lvl_name = to_string(lvl);
    json.metric("regular_ns." + lvl_name, regular, "ns");
    json.metric("switchless_ns." + lvl_name, switchless, "ns");
  }

  // The profiler still sees switchless calls (they go through sgx_ecall, the
  // interposition point) — their short duration now reflects the cheap path.
  Urts urts;
  const EnclaveId eid = urts.create_enclave({}, edl::parse(kEdl));
  urts.enclave(eid).register_ecall("ecall_fast", [](TrustedContext& ctx, void*) {
    ctx.work(150);
    return SgxStatus::kSuccess;
  });
  OcallTable table = make_ocall_table({});
  urts.set_switchless_workers(eid, 2);
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  std::uint64_t v = 0;
  for (int i = 0; i < 100; ++i) urts.sgx_ecall(eid, 0, &table, &v);
  logger.detach();
  double mean = 0;
  for (const auto& c : trace.calls()) mean += static_cast<double>(c.duration());
  mean /= static_cast<double>(trace.calls().size());
  std::printf("\nwith sgx-perf attached, the switchless ecall still appears in the trace: "
              "%zu records, mean %.0f ns\n",
              trace.calls().size(), mean);
  std::printf("(a fixed SISC finding would show exactly this before/after signature)\n");
  json.metric("traced_switchless_mean_ns", mean, "ns");
  if (smoke && !json.write()) return 1;
  return 0;
}
