// E17: SGXSTORE conversion throughput and the lazy-open read ratio.
//
// The store's reason to exist is that summary consumers should not pay for
// the event log.  This bench builds a synthetic events-dominated trace of
// the shape a fleet checkpoint has (most bytes in calls/AEXs, a small
// per-site summary), then measures: flat->store pack throughput,
// store->flat unpack throughput, and the fraction of the store's bytes a
// summary open (the `sgxperf stats` path) actually reads.  Real time is
// measured — the conversions are pure I/O+encode cost, invisible to the
// virtual clock — and the round trip is asserted byte-identical before any
// number is reported.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "tracedb/database.hpp"
#include "tracedb/open.hpp"
#include "tracedb/store/store.hpp"

namespace {

std::uint64_t rng_state = 0x9e3779b97f4a7c15ULL;
std::uint64_t next_rand() {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return rng_state;
}

/// An events-dominated trace: `n_calls` ecall/ocall rows with AEX and sync
/// noise, plus the compact summary a real run persists alongside them.
tracedb::TraceDatabase make_db(std::size_t n_calls) {
  tracedb::TraceDatabase db;
  db.add_enclave({1, "bench", 0, 0, 8, 1 << 24});
  for (std::uint32_t id = 0; id < 8; ++id) {
    db.add_call_name({1, tracedb::CallType::kEcall, id, "ecall_" + std::to_string(id)});
  }
  tracedb::Nanoseconds t = 1'000;
  for (std::size_t i = 0; i < n_calls; ++i) {
    t += 200 + next_rand() % 800;
    tracedb::CallRecord call;
    call.type = (i % 4 == 3) ? tracedb::CallType::kOcall : tracedb::CallType::kEcall;
    call.thread_id = static_cast<tracedb::ThreadId>(next_rand() % 8);
    call.enclave_id = 1;
    call.call_id = static_cast<tracedb::CallId>(next_rand() % 8);
    if (call.type == tracedb::CallType::kOcall) {
      call.parent = static_cast<tracedb::CallIndex>(i - 1);
    }
    call.start_ns = t;
    call.end_ns = t + 100 + next_rand() % 500;
    const auto idx = db.add_call(call);
    if (i % 16 == 0) {
      db.add_aex({call.thread_id, 1, call.start_ns + 10, idx, tracedb::AexCause::kInterrupt});
    }
    if (i % 64 == 0) {
      db.add_sync({tracedb::SyncKind::kSleep, call.thread_id, 0, 1, call.start_ns + 20});
    }
  }
  // Summary tables at realistic (small, per-site) cardinality.
  for (std::uint32_t id = 0; id < 8; ++id) {
    tracedb::LatencyRecord lat;
    lat.enclave_id = 1;
    lat.type = tracedb::CallType::kEcall;
    lat.call_id = id;
    lat.count = n_calls / 8;
    lat.sum_ns = 350 * lat.count;
    for (std::uint32_t b = 0; b < 24; ++b) lat.buckets.push_back({40 + b, 1 + b});
    db.set_latency(lat);
  }
  db.set_window_period(5'000'000);
  const std::uint32_t n_windows = static_cast<std::uint32_t>(t / 5'000'000) + 1;
  for (std::uint32_t w = 0; w < n_windows; ++w) {
    tracedb::WindowRecord win;
    win.window_index = w;
    win.start_ns = w * 5'000'000ull;
    win.end_ns = (w + 1) * 5'000'000ull;
    win.calls = n_calls / n_windows;
    db.add_window(win);
    for (std::uint32_t id = 0; id < 8; ++id) {
      tracedb::WindowSiteRecord site;
      site.window_index = w;
      site.enclave_id = 1;
      site.type = tracedb::CallType::kEcall;
      site.call_id = id;
      site.calls = win.calls / 8;
      site.p50_ns = 350;
      site.p99_ns = 590;
      db.add_window_site(site);
    }
  }
  return db;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("store", smoke, out_dir);

  const std::size_t kCalls = smoke ? 50'000 : 500'000;
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "bench_store_scratch").string();
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const std::string flat_path = scratch + "/trace.bin";
  const std::string store_path = scratch + "/trace.store";

  const tracedb::TraceDatabase db = make_db(kCalls);
  db.save(flat_path);
  const std::string flat = slurp(flat_path);
  const double flat_mb = static_cast<double>(flat.size()) / (1024.0 * 1024.0);
  std::printf("=== SGXSTORE conversion: %zu calls, %.1f MB flat ===\n\n", kCalls, flat_mb);

  // Correctness gate: the round trip must be byte-identical before any
  // throughput number means anything.
  tracedb::store::pack(db, store_path);
  {
    const tracedb::TraceDatabase back = tracedb::store::unpack(store_path);
    back.save(flat_path + ".rt");
    if (slurp(flat_path + ".rt") != flat) {
      std::fprintf(stderr, "FAIL: pack -> unpack is not byte-identical\n");
      return 1;
    }
  }
  std::printf("losslessness: pack -> unpack byte-identical (%.1f MB)\n\n", flat_mb);

  const int kReps = smoke ? 3 : 5;
  double best_pack = 1e300;
  double best_unpack = 1e300;
  for (int r = 0; r < kReps; ++r) {
    std::filesystem::remove_all(store_path);
    auto t0 = std::chrono::steady_clock::now();
    tracedb::store::pack(db, store_path);
    best_pack = std::min(best_pack, ms_since(t0));

    t0 = std::chrono::steady_clock::now();
    const tracedb::TraceDatabase back = tracedb::store::unpack(store_path);
    best_unpack = std::min(best_unpack, ms_since(t0));
    if (back.calls().size() != db.calls().size()) return 1;  // keep `back` live
  }

  const double store_mb = static_cast<double>(dir_bytes(store_path)) / (1024.0 * 1024.0);

  // The lazy-open claim, measured on the real stats open path.
  tracedb::OpenStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  const tracedb::TraceDatabase summary =
      tracedb::open_trace(store_path, tracedb::store::kSummarySections, &stats);
  const double summary_ms = ms_since(t0);
  const double ratio =
      static_cast<double>(stats.bytes_read) / static_cast<double>(stats.total_bytes);
  if (summary.latencies().size() != db.latencies().size()) return 1;

  std::printf("pack   (flat -> store):  %8.2f ms  %8.1f MB/s\n", best_pack,
              flat_mb / (best_pack / 1000.0));
  std::printf("unpack (store -> flat):  %8.2f ms  %8.1f MB/s\n", best_unpack,
              flat_mb / (best_unpack / 1000.0));
  std::printf("store size:              %8.2f MB (flat %.2f MB)\n", store_mb, flat_mb);
  std::printf("summary open:            %8.2f ms, %llu of %llu bytes (%.1f%%)\n", summary_ms,
              static_cast<unsigned long long>(stats.bytes_read),
              static_cast<unsigned long long>(stats.total_bytes), 100.0 * ratio);

  json.metric("calls", static_cast<double>(kCalls), "calls");
  json.metric("flat_mb", flat_mb, "MB");
  json.metric("store_mb", store_mb, "MB");
  json.metric("pack_mb_per_s", flat_mb / (best_pack / 1000.0), "MB/s");
  json.metric("unpack_mb_per_s", flat_mb / (best_unpack / 1000.0), "MB/s");
  json.metric("summary_open_ms", summary_ms, "ms");
  json.metric("summary_read_ratio", ratio, "ratio");
  std::filesystem::remove_all(scratch);
  return json.write() ? 0 : 1;
}
