// E12 — what-if replay: predicted vs measured switchless speedup.
//
// Records the SecureKeeper-like minikv workload, validates the replay
// engine's identity reconstruction against the recorded trace, predicts the
// speedup of converting both input ecalls to switchless calls (worker-count
// sweep per site), then actually applies the recommendation — re-runs the
// workload with the switchless EDL variant and the runtime worker pool
// enabled — and compares the measured speedup with the prediction.
//
// Pool-shape caveat: the replay engine provisions an independent worker pool
// per converted site, while the runtime shares one per-enclave pool across
// both sites; the measured run therefore gets 2x the per-site best count so
// both arms have the same total worker budget.
#include <cstdio>

#include "bench_json.hpp"
#include "minikv/driver.hpp"
#include "perf/logger.hpp"
#include "replay/engine.hpp"
#include "replay/render.hpp"
#include "tracedb/query.hpp"

namespace {

minikv::DriverReport record_run(tracedb::TraceDatabase& db, const minikv::DriverConfig& dcfg,
                                bool switchless, std::size_t pool_workers) {
  sgxsim::Urts urts;
  perf::Logger logger(db);
  logger.attach(urts);
  minikv::DriverReport report;
  {
    minikv::Store store(urts.clock());
    minikv::KvProxy::Config pcfg;
    pcfg.switchless_ecalls = switchless;
    minikv::KvProxy proxy(urts, store, pcfg);
    if (switchless) urts.set_switchless_workers(proxy.enclave_id(), pool_workers);
    report = minikv::run_workload(proxy, dcfg);
  }
  logger.detach();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("replay", smoke, out_dir);

  minikv::DriverConfig dcfg;
  dcfg.clients = smoke ? 3 : 8;
  dcfg.ops_per_client = smoke ? 150 : 1000;

  std::printf("=== E12: what-if replay — predicted vs measured switchless speedup ===\n");
  std::printf("workload: minikv, %zu clients x %zu ops\n\n", dcfg.clients, dcfg.ops_per_client);

  // --- 1. record the baseline --------------------------------------------------
  tracedb::TraceDatabase baseline;
  const auto base_report = record_run(baseline, dcfg, /*switchless=*/false, 0);
  std::printf("baseline: %llu ops in %.2f virtual ms (%.0f ops/s)\n",
              static_cast<unsigned long long>(base_report.operations),
              static_cast<double>(base_report.virtual_duration_ns) / 1e6,
              base_report.throughput_ops_per_s);
  json.metric("baseline_ops_per_s", base_report.throughput_ops_per_s, "ops/s");

  // --- 2. validate the replay against the recording ----------------------------
  replay::ReplayEngine engine(baseline);
  const auto validation = engine.validate();
  std::fputs(replay::render_validation(validation).c_str(), stdout);
  json.metric("validation_span_error", validation.span_error, "fraction");
  if (!validation.within(0.01)) {
    std::fputs("error: identity replay drifted more than 1% from the recording\n", stderr);
    return 1;
  }

  // --- 3. predict: switchless sweep over both input ecalls ---------------------
  const auto client_site =
      tracedb::find_call_by_name(baseline, 1, "ecall_handle_input_from_client");
  const auto server_site =
      tracedb::find_call_by_name(baseline, 1, "ecall_handle_input_from_server");
  if (!client_site || !server_site) {
    std::fputs("error: input ecalls missing from the recorded trace\n", stderr);
    return 1;
  }
  const auto sweep = engine.sweep_switchless(*client_site, 1, 4);
  std::fputs("\n", stdout);
  std::fputs(replay::render_sweep_text(sweep, 1).c_str(), stdout);

  replay::Scenario combined;
  combined.name = "switchless both input ecalls";
  combined.switchless.push_back({*client_site, sweep.best_workers});
  combined.switchless.push_back({*server_site, sweep.best_workers});
  const auto predicted = engine.run(combined);
  std::printf("\npredicted: %.2fx (%.2f -> %.2f virtual ms, %llu transitions removed)\n",
              predicted.speedup(),
              static_cast<double>(predicted.recorded_span_ns) / 1e6,
              static_cast<double>(predicted.replayed_span_ns) / 1e6,
              static_cast<unsigned long long>(predicted.transitions_removed));
  json.metric("predicted_speedup", predicted.speedup(), "x");
  json.metric("predicted_best_workers", static_cast<double>(sweep.best_workers), "workers");

  // --- 4. measure: apply the recommendation and re-record ----------------------
  tracedb::TraceDatabase after;
  const auto sw_report =
      record_run(after, dcfg, /*switchless=*/true, 2 * sweep.best_workers);
  const double measured = static_cast<double>(base_report.virtual_duration_ns) /
                          static_cast<double>(sw_report.virtual_duration_ns);
  std::printf("measured:  %.2fx (%.2f -> %.2f virtual ms, switchless EDL + %zu workers)\n",
              measured, static_cast<double>(base_report.virtual_duration_ns) / 1e6,
              static_cast<double>(sw_report.virtual_duration_ns) / 1e6,
              2 * sweep.best_workers);
  json.metric("measured_speedup", measured, "x");
  json.metric("switchless_ops_per_s", sw_report.throughput_ops_per_s, "ops/s");

  const double error = measured > 0.0
                           ? 100.0 * (predicted.speedup() - measured) / measured
                           : 0.0;
  std::printf("prediction error: %+.1f%%\n", error);
  json.metric("prediction_error_pct", error, "%");

  if (smoke && !json.write()) return 1;
  if (base_report.failures + sw_report.failures > 0) {
    std::fprintf(stderr, "error: %llu workload failures\n",
                 static_cast<unsigned long long>(base_report.failures + sw_report.failures));
    return 1;
  }
  return 0;
}
