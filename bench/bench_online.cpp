// E13 — online analyser feed cost.
//
// `sgxperf monitor` runs OnlineAnalyzer::feed() on the consumer side of the
// streaming subscription while the workload is live, so the per-event cost
// bounds the event rate one monitoring thread can sustain without dropping.
// Feeds a pre-built synthetic stream (ecalls with nested short ocalls, the
// shape that exercises every detector's hot path: Eq. 1 counting, Eq. 2
// start/end correlation, Eq. 3 same-key gaps, windowed HDR recording) and
// reports ns/event, events/s and what the detectors concluded.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "perf/online.hpp"
#include "perf/orderliness.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("online", smoke, bench::strip_out_dir_flag(argc, argv));
  const std::size_t kEvents = smoke ? 200'000 : 2'000'000;

  // Pre-build the stream so the measured loop is feed() alone.
  std::vector<perf::StreamEvent> events;
  events.reserve(kEvents + 1);
  support::Rng rng(11);
  std::uint64_t t = 0;
  while (events.size() < kEvents) {
    const auto call_id = static_cast<std::uint32_t>(rng.next_below(8));
    const std::uint64_t e_start = t;
    const std::uint64_t o_start = e_start + 1'000;
    const std::uint64_t o_end = o_start + 600 + rng.next_below(400);
    const std::uint64_t e_end = o_end + 2'000 + rng.next_below(4'000);

    // Children publish before their parent (stream order on one thread).
    perf::StreamEvent oc;
    oc.kind = perf::StreamEvent::Kind::kCall;
    oc.call_type = tracedb::CallType::kOcall;
    oc.thread_id = 1;
    oc.enclave_id = 1;
    oc.call_id = call_id;
    oc.start_ns = o_start;
    oc.end_ns = o_end;
    oc.parent_valid = true;
    oc.parent_type = tracedb::CallType::kEcall;
    oc.parent_call_id = call_id;
    oc.parent_start_ns = e_start;
    events.push_back(oc);

    perf::StreamEvent ec;
    ec.kind = perf::StreamEvent::Kind::kCall;
    ec.call_type = tracedb::CallType::kEcall;
    ec.thread_id = 1;
    ec.enclave_id = 1;
    ec.call_id = call_id;
    ec.start_ns = e_start;
    ec.end_ns = e_end;
    ec.aex_count = rng.chance(1.0 / 64.0) ? 1 : 0;
    events.push_back(ec);

    t = e_end + rng.next_below(3'000);
  }

  perf::OnlineAnalyzer online;
  const auto t0 = std::chrono::steady_clock::now();
  online.feed(events);
  online.finish(t);
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Second leg: the same stream with the interface-orderliness checker armed
  // on a worst-case-dense model (every id an entry, all 64 edges legal), so
  // every ecall takes the full known/entry/edge lookup path and no violation
  // short-circuits it.  The delta against the first leg is the per-event
  // price of `monitor --order-model`.
  perf::OnlineConfig checked_config;
  auto& em = checked_config.order.enclaves[1];
  for (std::uint32_t a = 0; a < 8; ++a) {
    em.known.insert(a);
    em.entries.insert(a);
    for (std::uint32_t b = 0; b < 8; ++b) em.edges.emplace(a, b);
  }
  perf::OnlineAnalyzer checked(checked_config);
  const auto t1 = std::chrono::steady_clock::now();
  checked.feed(events);
  checked.finish(t);
  const double checked_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  std::size_t order_alerts = 0;
  for (const auto& a : checked.active_alerts()) {
    if (a.kind >= tracedb::AlertKind::kOutOfOrderEcall) ++order_alerts;
  }

  // Third leg (E18): the conservation-ledger instrumentation cost.  The
  // ledger adds exactly one per-event touch to the hot pipeline — the
  // subscription's relaxed `published` increment (the record stage's
  // produced side is derived from the existing merge accounting at zero
  // per-event cost).  Re-running feed() and subtracting would bury a couple
  // of ns under tens of ns of run-to-run noise, so the increment is timed
  // directly and reported relative to the feed baseline.
  std::atomic<std::uint64_t> published{0};
  const auto t2 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    published.fetch_add(1, std::memory_order_relaxed);
  }
  const double ledger_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2).count();
  if (published.load() != events.size()) return 1;  // keep the loop alive

  const double ns_per_event = sec * 1e9 / static_cast<double>(events.size());
  const double events_per_s = static_cast<double>(events.size()) / sec;
  const double checked_ns_per_event = checked_sec * 1e9 / static_cast<double>(events.size());
  const double checker_overhead = ns_per_event == 0.0
                                      ? 0.0
                                      : (checked_ns_per_event - ns_per_event) / ns_per_event;
  std::printf("=== E13: online analyser feed throughput ===\n\n");
  std::printf("events fed:       %zu (%.3f virtual s)\n", events.size(),
              static_cast<double>(t) / 1e9);
  std::printf("feed cost:        %.0f ns/event (%.2fM events/s)\n", ns_per_event,
              events_per_s / 1e6);
  std::printf("windows closed:   %zu\n", online.windows().size());
  std::printf("alerts recorded:  %zu (%zu active at end)\n", online.alerts().size(),
              online.active_alerts().size());
  std::printf("with order check: %.0f ns/event (%+.1f%%), %zu orderliness alerts\n",
              checked_ns_per_event, checker_overhead * 100.0, order_alerts);

  const double ledger_ns_per_event = ledger_sec * 1e9 / static_cast<double>(events.size());
  const double ledger_overhead =
      ns_per_event == 0.0 ? 0.0 : ledger_ns_per_event / ns_per_event;
  std::printf("ledger tax:       %.2f ns/event (+%.2f%% of feed — budget <2%%)\n",
              ledger_ns_per_event, ledger_overhead * 100.0);

  json.metric("feed_ns_per_event", ns_per_event, "ns");
  json.metric("feed_events_per_s", events_per_s, "events/s");
  json.metric("windows", static_cast<double>(online.windows().size()), "windows");
  json.metric("alerts", static_cast<double>(online.alerts().size()), "alerts");
  json.metric("feed_checked_ns_per_event", checked_ns_per_event, "ns");
  json.metric("order_alerts", static_cast<double>(order_alerts), "alerts");
  json.metric("ledger_ns_per_event", ledger_ns_per_event, "ns");
  json.metric("ledger_overhead_pct", ledger_overhead * 100.0, "%");
  return json.write() ? 0 : 1;
}
