// E11 — §2.3.3 / §3.5 / §4.1.5 ablation: EPC oversubscription and paging.
//
// An enclave sweeps a data set sized at several fractions of a (shrunken)
// EPC.  Reports page-in/out counts and throughput per sweep — the cliff once
// the working set exceeds the EPC — and demonstrates the pre-loading
// mitigation (touch the pages *before* the ecall, §3.5 (ii)): page faults
// then happen outside enclave execution, avoiding the in-enclave AEX+fault
// path.  Also shows the logger's paging trace identifying the victim pages.
#include <cstdio>

#include "bench_json.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_sweep(void);
  };
  untrusted {};
};
)";

constexpr std::size_t kEpcPages = 512;  // shrunken EPC so the sweep is fast

struct SweepResult {
  std::uint64_t page_ins = 0;
  std::uint64_t page_outs = 0;
  double virtual_ms = 0;
};

SweepResult run_sweep(double epc_fraction, bool preload, int sweeps = 4,
                      bool flush_first = false) {
  Urts urts(CostModel::preset(PatchLevel::kUnpatched), kEpcPages);
  const auto data_pages = static_cast<std::size_t>(static_cast<double>(kEpcPages) * epc_fraction);

  EnclaveConfig config;
  config.code_pages = 8;
  config.heap_pages = data_pages + 4;
  config.stack_pages = 2;
  config.tcs_count = 1;
  const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kEdl));
  Enclave& enclave = urts.enclave(eid);
  OcallTable table = make_ocall_table({});

  enclave.register_ecall("ecall_sweep", [data_pages](TrustedContext& ctx, void*) {
    const auto base = ctx.enclave().heap_base_page() * kPageSize;
    for (std::size_t p = 0; p < data_pages; ++p) {
      ctx.touch(base + p * kPageSize, 64, MemAccess::kWrite);
      ctx.work(500);  // per-page computation
    }
    return SgxStatus::kSuccess;
  });

  if (flush_first) {
    // A noisy neighbour fills the shared EPC and evicts our pages — the
    // multi-tenant cloud scenario of §3.5 where pre-loading pays off.
    EnclaveConfig flusher;
    flusher.code_pages = 8;
    flusher.heap_pages = kEpcPages;
    flusher.stack_pages = 2;
    flusher.tcs_count = 1;
    const EnclaveId noisy = urts.create_enclave(std::move(flusher), edl::parse(kEdl));
    urts.destroy_enclave(noisy);
  }

  const auto ins_before = urts.driver().page_in_count();
  const auto outs_before = urts.driver().page_out_count();
  const auto t0 = urts.clock().now();
  for (int s = 0; s < sweeps; ++s) {
    if (preload) {
      // §3.5 (ii): fault the pages in *before* the ecall, from outside.
      for (std::size_t p = 0; p < data_pages; ++p) {
        urts.driver().ensure_resident(eid, enclave.heap_base_page() + p);
      }
    }
    urts.sgx_ecall(eid, 0, &table, nullptr);
  }
  SweepResult result;
  result.page_ins = urts.driver().page_in_count() - ins_before;
  result.page_outs = urts.driver().page_out_count() - outs_before;
  result.virtual_ms = static_cast<double>(urts.clock().now() - t0) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("paging", smoke, out_dir);
  std::printf("=== E11: EPC oversubscription / paging ablation (paper §2.3.3, §3.5) ===\n");
  std::printf("EPC shrunk to %zu pages; 4 sweeps over a data set of varying size\n\n",
              kEpcPages);

  std::printf("%-12s %12s %12s %14s %16s\n", "data/EPC", "page-ins", "page-outs", "virt ms",
              "ms per sweep");
  for (const double fraction : {0.25, 0.5, 0.8, 1.2, 2.0, 4.0}) {
    const SweepResult r = run_sweep(fraction, /*preload=*/false);
    std::printf("%10.2fx %12llu %12llu %14.2f %16.2f\n", fraction,
                static_cast<unsigned long long>(r.page_ins),
                static_cast<unsigned long long>(r.page_outs), r.virtual_ms, r.virtual_ms / 4);
    char key[48];
    std::snprintf(key, sizeof key, "sweep_ms.%.2fx_epc", fraction);
    json.metric(key, r.virtual_ms / 4, "ms");
    std::snprintf(key, sizeof key, "page_ins.%.2fx_epc", fraction);
    json.metric(key, static_cast<double>(r.page_ins), "pages");
  }

  std::printf("\npre-loading mitigation, data set at 0.9x EPC, single cold sweep "
              "(§3.5 (ii): fault pages in before the ecall):\n");
  const SweepResult naive = run_sweep(0.9, false, /*sweeps=*/1, /*flush_first=*/true);
  const SweepResult preloaded = run_sweep(0.9, true, /*sweeps=*/1, /*flush_first=*/true);
  std::printf("  naive:     %llu in-enclave faults (each with an AEX), %.2f ms\n",
              static_cast<unsigned long long>(naive.page_ins), naive.virtual_ms);
  std::printf("  preloaded: %llu faults taken outside the enclave, %.2f ms\n",
              static_cast<unsigned long long>(preloaded.page_ins), preloaded.virtual_ms);
  json.metric("cold_sweep_naive_ms", naive.virtual_ms, "ms");
  json.metric("cold_sweep_preloaded_ms", preloaded.virtual_ms, "ms");
  std::printf("  (beyond 1x EPC pre-loading cannot help: the set does not fit and the sweep "
              "evicts its own pre-loaded pages)\n");

  // The logger's paging trace + the analyser's paging finding.
  Urts urts(CostModel::preset(PatchLevel::kUnpatched), kEpcPages);
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  {
    EnclaveConfig config;
    config.code_pages = 8;
    config.heap_pages = kEpcPages;  // guaranteed oversubscription
    config.stack_pages = 2;
    config.tcs_count = 1;
    const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kEdl));
    Enclave& enclave = urts.enclave(eid);
    OcallTable table = make_ocall_table({});
    enclave.register_ecall("ecall_sweep", [&](TrustedContext& ctx, void*) {
      const auto base = ctx.enclave().heap_base_page() * kPageSize;
      for (std::size_t p = 0; p < kEpcPages; ++p) ctx.touch(base + p * kPageSize, 64,
                                                            MemAccess::kWrite);
      return SgxStatus::kSuccess;
    });
    urts.sgx_ecall(eid, 0, &table, nullptr);
    urts.sgx_ecall(eid, 0, &table, nullptr);
  }
  logger.detach();

  std::printf("\nlogger captured %zu paging events (kprobe trace, §4.1.5)\n",
              trace.paging().size());
  json.metric("traced_paging_events", static_cast<double>(trace.paging().size()), "events");
  if (smoke && !json.write()) return 1;
  const auto report = perf::Analyzer(trace).analyze();
  for (const auto& f : report.findings) {
    if (f.kind == perf::FindingKind::kPaging) {
      std::printf("analyser: %s — %s\n", perf::to_string(f.kind), f.detail.c_str());
      for (const auto& r : f.recommendations) std::printf("  -> %s\n", perf::to_string(r.action));
      return 0;
    }
  }
  std::printf("analyser did not flag paging (unexpected)\n");
  return 1;
}
