// E10 — §2.3.2 / §3.4 ablation: in-enclave synchronisation strategies.
//
// A contended counter protected by (a) the SDK default mutex (sleep/wake
// ocalls on contention) and (b) the hybrid spin-then-sleep mutex sgx-perf
// recommends for short critical sections.  Reports sync-ocall counts and
// virtual-time cost per operation for several spin budgets.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "sgxsim/runtime.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted { public int ecall_hammer(void); };
  untrusted {};
};
)";

struct SyncStats {
  std::atomic<std::uint64_t> sleeps{0};
  std::atomic<std::uint64_t> wakes{0};
};
SyncStats* g_stats = nullptr;
OcallFn g_real_sleep = nullptr;
OcallFn g_real_wake = nullptr;

SgxStatus counting_sleep(void* ms) {
  g_stats->sleeps.fetch_add(1, std::memory_order_relaxed);
  return g_real_sleep(ms);
}
SgxStatus counting_wake(void* ms) {
  g_stats->wakes.fetch_add(1, std::memory_order_relaxed);
  return g_real_wake(ms);
}

struct Run {
  std::uint64_t sleeps = 0;
  std::uint64_t wakes = 0;
  double virtual_us_per_op = 0;
};

Run run_contended(MutexKind kind, std::uint32_t spin_limit, int threads, int ops_per_thread,
                  support::Nanoseconds critical_ns) {
  Urts urts;
  EnclaveConfig config;
  config.tcs_count = static_cast<std::size_t>(threads) + 2;
  const EnclaveId eid = urts.create_enclave(std::move(config), edl::parse(kEdl));
  OcallTable table = make_ocall_table({});
  SyncStats stats;
  g_stats = &stats;
  g_real_sleep = table.entries[table.sync_base + 0];
  g_real_wake = table.entries[table.sync_base + 1];
  table.entries[table.sync_base + 0] = &counting_sleep;
  table.entries[table.sync_base + 1] = &counting_wake;

  Enclave& enclave = urts.enclave(eid);
  const MutexId mutex = enclave.create_mutex(kind, spin_limit);
  std::atomic<std::uint64_t> counter{0};
  enclave.register_ecall("ecall_hammer",
                         [mutex, &counter, ops_per_thread, critical_ns](TrustedContext& ctx, void*) {
    for (int i = 0; i < ops_per_thread; ++i) {
      if (auto st = ctx.mutex_lock(mutex); st != SgxStatus::kSuccess) return st;
      counter.fetch_add(1, std::memory_order_relaxed);
      ctx.work(critical_ns);
      // The critical section also takes real time (and yields the CPU), so
      // OS threads genuinely overlap and contend even on a single core.
      if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::microseconds(30));
      if (auto st = ctx.mutex_unlock(mutex); st != SgxStatus::kSuccess) return st;
    }
    return SgxStatus::kSuccess;
  });

  // Rendezvous so the workers genuinely overlap.
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  const auto t0 = urts.clock().now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      ++ready;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      urts.sgx_ecall(eid, 0, &table, nullptr);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto elapsed = urts.clock().now() - t0;

  Run run;
  run.sleeps = stats.sleeps.load();
  run.wakes = stats.wakes.load();
  run.virtual_us_per_op = static_cast<double>(elapsed) / 1e3 /
                          static_cast<double>(threads * ops_per_thread);
  g_stats = nullptr;
  return run;
}

void BM_SdkMutexUncontended(benchmark::State& state) {
  Urts urts;
  const EnclaveId eid = urts.create_enclave({}, edl::parse(kEdl));
  OcallTable table = make_ocall_table({});
  Enclave& enclave = urts.enclave(eid);
  const MutexId mutex = enclave.create_mutex();
  enclave.register_ecall("ecall_hammer", [mutex](TrustedContext& ctx, void*) {
    for (int i = 0; i < 100; ++i) {
      ctx.mutex_lock(mutex);
      ctx.mutex_unlock(mutex);
    }
    return SgxStatus::kSuccess;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(urts.sgx_ecall(eid, 0, &table, nullptr));
  }
}
BENCHMARK(BM_SdkMutexUncontended);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("sync", smoke, out_dir);
  std::printf("=== E10: in-enclave synchronisation ablation (paper §2.3.2 / §3.4) ===\n\n");
  constexpr int kThreads = 4;
  const int kOps = smoke ? 100 : 400;

  std::printf("contended counter: %d threads x %d ops, 2 us critical section\n\n", kThreads,
              kOps);
  std::printf("%-28s %10s %10s %16s\n", "mutex", "sleeps", "wakes", "sync ocalls/op");
  {
    const Run sdk = run_contended(MutexKind::kSdkDefault, 0, kThreads, kOps, 2'000);
    std::printf("%-28s %10llu %10llu %16.4f\n", "SDK default (sleep ocalls)",
                static_cast<unsigned long long>(sdk.sleeps),
                static_cast<unsigned long long>(sdk.wakes),
                static_cast<double>(sdk.sleeps + sdk.wakes) / (kThreads * kOps));
    json.metric("sync_ocalls_per_op.sdk_default",
                static_cast<double>(sdk.sleeps + sdk.wakes) / (kThreads * kOps), "ocalls");
  }
  for (const std::uint32_t spin : {64u, 512u, 100'000u}) {
    const Run hybrid = run_contended(MutexKind::kHybridSpin, spin, kThreads, kOps, 2'000);
    char label[64];
    std::snprintf(label, sizeof(label), "hybrid spin (limit %u)", spin);
    std::printf("%-28s %10llu %10llu %16.4f\n", label,
                static_cast<unsigned long long>(hybrid.sleeps),
                static_cast<unsigned long long>(hybrid.wakes),
                static_cast<double>(hybrid.sleeps + hybrid.wakes) / (kThreads * kOps));
    std::snprintf(label, sizeof(label), "sync_ocalls_per_op.hybrid_spin_%u", spin);
    json.metric(label, static_cast<double>(hybrid.sleeps + hybrid.wakes) / (kThreads * kOps),
                "ocalls");
  }
  std::printf("\nthe hybrid lock eliminates the short wake-up ocalls (<10 us) the analyser "
              "flags as SSC\n\n");
  if (smoke) return json.write() ? 0 : 1;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
