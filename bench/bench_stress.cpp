// E14 — stress suite throughput + analyser feed cost under storm.
//
// Two questions:
//  * bogo-ops/s per stressor — the Stress-SGX-style headline number, both in
//    virtual time (deterministic, comparable across machines) and wall time
//    (what the simulator actually sustains);
//  * ns/event for OnlineAnalyzer::feed() on a real ocall-storm stream — the
//    monitor-side cost under the nastiest event mix the suite generates
//    (bench_online measures the same loop on a synthetic stream; this one is
//    recorded from the storm stressor through the actual logger).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "perf/logger.hpp"
#include "perf/online.hpp"
#include "sgxsim/runtime.hpp"
#include "stress/stressor.hpp"
#include "tracedb/database.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// 4 MiB EPC for the paging stressors so the 1.25x-EPC working set stays
/// bench-sized; the transition/sync stressors never page and keep the default.
std::size_t epc_pages_for(const std::string& name) {
  return (name == "vm" || name == "mixed") ? 1024 : sgxsim::Driver::kDefaultEpcPages;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("stress", smoke, bench::strip_out_dir_flag(argc, argv));

  std::printf("=== E14: stress suite bogo-ops + feed cost under storm ===\n\n");
  std::printf("%-12s %10s %14s %14s %10s\n", "stressor", "bogo-ops", "bogo-ops/vs",
              "wall-ops/s", "wall-ms");

  for (const auto& name : stress::stressor_names()) {
    const auto stressor = stress::make_stressor(name);
    sgxsim::Urts urts(sgxsim::CostModel::preset(sgxsim::PatchLevel::kUnpatched),
                      epc_pages_for(name));
    stress::StressConfig config;
    config.threads = 4;
    config.duration_ns = smoke ? 40'000'000 : 400'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = stress::run_stressor(*stressor, urts, config);
    const double wall_s = seconds_since(t0);

    const double wall_ops_per_s =
        wall_s > 0 ? static_cast<double>(result.bogo_ops) / wall_s : 0.0;
    std::printf("%-12s %10llu %14.0f %14.0f %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(result.bogo_ops), result.bogo_ops_per_vsec(),
                wall_ops_per_s, wall_s * 1e3);
    json.metric(name + "_bogo_ops", static_cast<double>(result.bogo_ops), "ops");
    json.metric(name + "_bogo_ops_per_vsec", result.bogo_ops_per_vsec(), "ops/s");
    json.metric(name + "_wall_ops_per_s", wall_ops_per_s, "ops/s");
  }

  // Record a real ocall-storm stream through the logger, then time the
  // online analyser's feed loop over it in isolation.
  const auto storm = stress::make_stressor("ocall-storm");
  sgxsim::Urts urts;
  tracedb::TraceDatabase db;
  perf::Logger logger(db);
  logger.attach(urts);
  auto sub = logger.subscribe("bench-stress", 1 << 20);
  stress::StressConfig config;
  config.threads = 4;
  config.duration_ns = smoke ? 100'000'000 : 1'000'000'000;
  const auto storm_result = stress::run_stressor(*storm, urts, config);
  logger.detach();

  std::vector<perf::StreamEvent> events;
  std::vector<perf::StreamEvent> batch;
  std::uint64_t end_ns = 0;
  while (sub->poll(batch, 4096) > 0) {
    for (const auto& ev : batch) {
      end_ns = std::max(end_ns, ev.end_ns);
      events.push_back(ev);
    }
    batch.clear();
  }
  sub->close();

  perf::OnlineAnalyzer online;
  const auto t0 = std::chrono::steady_clock::now();
  online.feed(events);
  online.finish(end_ns);
  const double feed_s = seconds_since(t0);
  const double ns_per_event =
      events.empty() ? 0.0 : feed_s * 1e9 / static_cast<double>(events.size());
  const double events_per_s = feed_s > 0 ? static_cast<double>(events.size()) / feed_s : 0.0;

  std::printf("\nstorm stream:     %zu events from %llu bogo-ops (dropped: %llu)\n",
              events.size(), static_cast<unsigned long long>(storm_result.bogo_ops),
              static_cast<unsigned long long>(sub->dropped()));
  std::printf("feed cost:        %.0f ns/event (%.2fM events/s), %zu alerts recorded\n",
              ns_per_event, events_per_s / 1e6, online.alerts().size());

  json.metric("storm_events", static_cast<double>(events.size()), "events");
  json.metric("storm_feed_ns_per_event", ns_per_event, "ns");
  json.metric("storm_feed_events_per_s", events_per_s, "events/s");
  json.metric("storm_alerts", static_cast<double>(online.alerts().size()), "alerts");
  return json.write() ? 0 : 1;
}
