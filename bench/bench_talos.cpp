// E3 — §5.2.1 / Figure 5: TaLoS + nginx under sgx-perf.
//
// Performs 1000 HTTPS GET requests against the enclavised TLS stack with the
// event logger attached, then:
//  * prints the per-call counts of the main calls (the Figure 5 edges),
//  * reports the interface width and the short-call percentages the paper
//    quotes (60.78% of ecalls / 73.69% of ocalls below 10 us),
//  * writes the call graph as Graphviz DOT (bench output: talos_callgraph.dot),
//  * runs the analyser and prints its top findings.
#include <cstdio>
#include <fstream>

#include "bench_json.hpp"
#include "minissl/http.hpp"
#include "minissl/talos.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/report.hpp"

int main(int argc, char** argv) {
  using namespace minissl;
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("talos", smoke, bench::strip_out_dir_flag(argc, argv));
  const int kRequests = smoke ? 100 : 1000;

  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);

  std::uint64_t served = 0;
  {
    TalosEnclave talos(urts);
    SslCtx client_ctx;
    for (int r = 0; r < kRequests; ++r) {
      SimConnection conn;
      const auto conn_id =
          talos.register_connection(std::make_unique<PipeEnd>(conn.server_end()));
      auto server_session = talos.new_session(conn_id, /*server=*/true);
      NativeTlsSession client(client_ctx, std::make_unique<PipeEnd>(conn.client_end()), false,
                              static_cast<std::uint64_t>(r) + 1000);
      MiniNginx nginx;
      MiniCurl curl;
      if (run_exchange(nginx, *server_session, curl, client)) ++served;
      talos.drop_connection(conn_id);
    }
  }
  logger.detach();

  std::printf("=== E3: TaLoS + mini-nginx, %d HTTP GET requests (paper §5.2.1, Fig. 5) ===\n\n",
              kRequests);
  std::printf("requests served: %llu/%d\n", static_cast<unsigned long long>(served), kRequests);

  json.metric("requests_served", static_cast<double>(served), "requests");

  perf::Analyzer analyzer(trace);
  analyzer.set_interface(1, sgxsim::edl::parse(kTalosEdl));
  const auto report = analyzer.analyze();
  for (const auto& ov : report.overviews) {
    json.metric("ecall_instances", static_cast<double>(ov.ecall_instances), "calls");
    json.metric("ocall_instances", static_cast<double>(ov.ocall_instances), "calls");
    json.metric("ecalls_below_10us", 100.0 * ov.ecalls_below_10us, "%");
    json.metric("ocalls_below_10us", 100.0 * ov.ocalls_below_10us, "%");
    std::printf(
        "interface: %zu ecalls / %zu ocalls defined; %zu / %zu called "
        "(paper: 207/61 defined, 61/10 called)\n",
        ov.ecalls_defined, ov.ocalls_defined, ov.ecalls_called, ov.ocalls_called);
    std::printf("instances: %zu ecalls, %zu ocalls (paper: 27,631 / 28,969)\n",
                ov.ecall_instances, ov.ocall_instances);
    std::printf(
        "short calls: %.2f%% of ecalls and %.2f%% of ocalls < 10 us "
        "(paper: 60.78%% / 73.69%%)\n\n",
        100.0 * ov.ecalls_below_10us, 100.0 * ov.ocalls_below_10us);
  }

  std::printf("--- main per-request calls (Figure 5 nodes; counts per %d requests) ---\n",
              kRequests);
  std::printf("%-52s %10s %12s %12s\n", "call", "count", "mean[us]", "p99[us]");
  for (const auto& s : report.stats) {
    if (s.duration_ns.count < static_cast<std::size_t>(kRequests) / 2) continue;
    std::printf("%s %-50s %10zu %12.2f %12.2f\n",
                s.key.type == tracedb::CallType::kEcall ? "E" : "O", s.name.c_str(),
                s.duration_ns.count, s.duration_ns.mean / 1e3, s.duration_ns.p99 / 1e3);
  }

  const std::string dot = perf::render_callgraph_dot(trace);
  {
    std::ofstream out("talos_callgraph.dot");
    out << dot;
  }
  std::printf("\ncall graph written to talos_callgraph.dot (%zu bytes, %s)\n", dot.size(),
              "square=ecall, round=ocall, solid=direct, dashed=indirect");

  std::printf("\n--- analyser findings (top 12) ---\n");
  std::size_t shown = 0;
  for (const auto& f : report.findings) {
    if (++shown > 12) break;
    std::printf("[%zu] %s: %s\n", shown, perf::to_string(f.kind), f.subject_name.c_str());
    for (const auto& r : f.recommendations) std::printf("     -> %s\n", perf::to_string(r.action));
  }
  json.metric("findings", static_cast<double>(report.findings.size()), "findings");
  return json.write() ? 0 : 1;
}
