// E4 — §5.2.2 / Figure 6 (left): minidb (SQLite stand-in) insert throughput.
//
// Replays synthetic git commits (one transaction per commit) into a
// persistent database in three builds:
//   native      — engine runs untrusted
//   enclavised  — engine inside the enclave, syscalls naively as ocalls
//   optimised   — lseek+write merged into one pwrite ocall (sgx-perf's
//                 recommendation after detecting the SDSC pair)
// and at three patch levels for the Figure 6 normalisation.  Also verifies
// the analyser flags the lseek->write merge and prints the top-3 ocalls by
// total time (paper: lseek, write and fsync each ~33% of ocall time).
#include <cstdio>
#include <map>

#include "bench_json.hpp"
#include "minidb/enclave_db.hpp"
#include "minidb/workload.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"

namespace {

using namespace minidb;

std::uint64_t kCommits = 400;  // --smoke: 100

struct RunResult {
  double requests_per_s = 0.0;
  std::uint64_t records = 0;
};

/// One run: replay kCommits commits, report records/s in virtual time.
RunResult run_native(sgxsim::Urts& urts) {
  HostVfs vfs(urts.clock());
  Database db(vfs, "/bench-native.db");
  CommitGenerator gen;
  RunResult result;
  const auto t0 = urts.clock().now();
  for (std::uint64_t i = 0; i < kCommits; ++i) result.records += replay_commit(db, gen.make(i));
  const auto elapsed = urts.clock().now() - t0;
  result.requests_per_s =
      static_cast<double>(result.records) / (static_cast<double>(elapsed) / 1e9);
  return result;
}

RunResult run_enclavised(sgxsim::Urts& urts, WriteMode mode) {
  HostVfs vfs(urts.clock());
  DbEnclave db(urts, vfs, mode);
  db.open("/bench-enclave.db");
  CommitGenerator gen;
  RunResult result;
  const auto t0 = urts.clock().now();
  for (std::uint64_t i = 0; i < kCommits; ++i) {
    db.begin();
    for (const auto& [k, v] : gen.make(i).to_records()) {
      db.put_in_txn(k, v);
      ++result.records;
    }
    db.commit();
  }
  const auto elapsed = urts.clock().now() - t0;
  result.requests_per_s =
      static_cast<double>(result.records) / (static_cast<double>(elapsed) / 1e9);
  db.close_db();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("sqlite", smoke, bench::strip_out_dir_flag(argc, argv));
  if (smoke) kCommits = 100;
  std::printf("=== E4: minidb insert throughput (paper §5.2.2, Fig. 6 left) ===\n");
  std::printf("paper: native 23,087 req/s; enclavised 13,160 (0.57x); merged 17,483 (+33%%)\n\n");

  std::printf("%-16s %14s %14s %14s %12s %12s\n", "patch level", "native[req/s]", "enclave",
              "optimised", "encl/nat", "opt/encl");
  for (const auto lvl : {sgxsim::PatchLevel::kUnpatched, sgxsim::PatchLevel::kSpectre,
                         sgxsim::PatchLevel::kSpectreL1tf}) {
    sgxsim::Urts urts(sgxsim::CostModel::preset(lvl));
    const RunResult native = run_native(urts);
    const RunResult enclave = run_enclavised(urts, WriteMode::kSeekThenWrite);
    const RunResult optimised = run_enclavised(urts, WriteMode::kMergedPwrite);
    std::printf("%-16s %14.0f %14.0f %14.0f %11.2fx %11.2fx\n", sgxsim::to_string(lvl),
                native.requests_per_s, enclave.requests_per_s, optimised.requests_per_s,
                enclave.requests_per_s / native.requests_per_s,
                optimised.requests_per_s / enclave.requests_per_s);
    const std::string lvl_name = sgxsim::to_string(lvl);
    json.metric("native_req_per_s." + lvl_name, native.requests_per_s, "req/s");
    json.metric("enclave_req_per_s." + lvl_name, enclave.requests_per_s, "req/s");
    json.metric("optimised_req_per_s." + lvl_name, optimised.requests_per_s, "req/s");
    json.metric("merge_speedup." + lvl_name,
                optimised.requests_per_s / enclave.requests_per_s, "x");
  }

  // --- the analysis pass that motivates the merge ------------------------------
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  (void)run_enclavised(urts, WriteMode::kSeekThenWrite);
  logger.detach();

  perf::Analyzer analyzer(trace);
  analyzer.set_interface(1, sgxsim::edl::parse(kDbEdl));
  const auto report = analyzer.analyze();

  std::printf("\n--- ocalls by share of total ocall time (paper: lseek/write/fsync ~33%% each) ---\n");
  double total_ocall_ns = 0;
  for (const auto& s : report.stats) {
    if (s.key.type == tracedb::CallType::kOcall) total_ocall_ns += s.duration_ns.sum;
  }
  std::printf("%-28s %10s %12s %10s\n", "ocall", "count", "mean[us]", "share");
  for (const auto& s : report.stats) {
    if (s.key.type != tracedb::CallType::kOcall) continue;
    const double share = s.duration_ns.sum / total_ocall_ns;
    if (share < 0.02) continue;
    std::printf("%-28s %10zu %12.2f %9.1f%%\n", s.name.c_str(), s.duration_ns.count,
                s.duration_ns.mean / 1e3, 100.0 * share);
  }

  std::printf("\n--- analyser findings on the naive build ---\n");
  bool merge_found = false;
  std::size_t shown = 0;
  for (const auto& f : report.findings) {
    if (shown < 8) {
      std::printf("[%zu] %s: %s%s%s\n", ++shown, perf::to_string(f.kind),
                  f.subject_name.c_str(), f.partner ? " <- follows " : "",
                  f.partner ? f.partner_name.c_str() : "");
    }
    if (f.kind == perf::FindingKind::kMergeable && f.subject_name == "ocall_vfs_write" &&
        f.partner_name == "ocall_vfs_lseek") {
      merge_found = true;
    }
  }
  std::printf("\nSDSC merge of lseek+write detected: %s (the paper's key finding)\n",
              merge_found ? "YES" : "NO");
  json.metric("sdsc_merge_detected", merge_found ? 1.0 : 0.0, "bool");
  if (!json.write()) return 1;
  return merge_found ? 0 : 1;
}
