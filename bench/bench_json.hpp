// Machine-readable bench output.
//
// Every bench binary accepts `--smoke` (a fast, reduced-workload run for CI)
// and, when given it, writes its headline numbers to `BENCH_<name>.json` in
// the current directory alongside the usual human-readable tables.  CI
// validates each file with tools/json_check and can diff the numbers across
// commits without scraping stdout.
//
// File shape (deterministic key order, one metric per row):
//
//   {"bench":"transitions","smoke":true,"metrics":[
//     {"name":"ecall_ns.unpatched","value":4205,"unit":"ns"}, ...]}
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace bench {

/// Detects `--smoke` and removes it from argv so downstream argument parsers
/// (notably benchmark::Initialize, which rejects unknown flags) never see it.
inline bool strip_smoke_flag(int& argc, char** argv) {
  bool smoke = false;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::string_view(argv[r]) == "--smoke") {
      smoke = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  argv[argc = w] = nullptr;
  return smoke;
}

/// Detects `--out-dir DIR` and removes both tokens from argv.  Returns DIR,
/// or "." when absent — the directory JsonReport::write() lands in, so CI
/// can collect every bench's JSON in one place (the repo root) regardless
/// of each binary's working directory.
inline std::string strip_out_dir_flag(int& argc, char** argv) {
  std::string dir = ".";
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::string_view(argv[r]) == "--out-dir" && r + 1 < argc) {
      dir = argv[++r];
      continue;
    }
    argv[w++] = argv[r];
  }
  argv[argc = w] = nullptr;
  return dir;
}

/// Accumulates named scalar results; write() emits BENCH_<name>.json.
class JsonReport {
 public:
  JsonReport(std::string name, bool smoke, std::string out_dir = ".")
      : name_(std::move(name)), smoke_(smoke), out_dir_(std::move(out_dir)) {}

  void metric(std::string_view metric, double value, std::string_view unit = "") {
    rows_.push_back({std::string(metric), value, std::string(unit)});
  }

  /// Writes `BENCH_<name>.json` into the current directory.  Returns false
  /// (and reports to stderr) on IO failure so the bench can exit nonzero.
  [[nodiscard]] bool write() const {
    support::json::Writer w;
    w.begin_object();
    w.kv("schema_version", support::json::kSchemaVersion);
    w.kv("bench", name_);
    w.kv("smoke", smoke_);
    w.key("metrics");
    w.begin_array();
    for (const auto& row : rows_) {
      w.begin_object();
      w.kv("name", row.name);
      w.kv("value", row.value);
      w.kv("unit", row.unit);
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const std::string path = out_dir_ + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string& text = w.str();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                    std::fputc('\n', f) != EOF && std::fclose(f) == 0;
    if (!ok) std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
    else std::printf("bench results written to %s\n", path.c_str());
    return ok;
  }

 private:
  struct Row {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  std::string name_;
  bool smoke_;
  std::string out_dir_;
  std::vector<Row> rows_;
};

}  // namespace bench
