// E1 — §2.3.1 transition costs across microcode patch levels.
//
// Reproduces the in-text table: one EENTER..EEXIT round trip costs
// ~5,850 / ~10,170 / ~13,100 cycles (~2,130 / ~3,850 / ~4,890 ns) on an
// unpatched / Spectre-patched / Spectre+L1TF-patched machine, plus the full
// SDK ecall and ecall+ocall costs the rest of the evaluation builds on.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "sgxsim/runtime.hpp"
#include "support/clock.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_empty(void);
    public int ecall_with_ocall(void);
  };
  untrusted { void ocall_empty(void); };
};
)";

SgxStatus empty_ocall(void*) { return SgxStatus::kSuccess; }

struct Machine {
  explicit Machine(PatchLevel lvl) : urts(CostModel::preset(lvl)) {
    eid = urts.create_enclave({}, edl::parse(kEdl));
    table = make_ocall_table({&empty_ocall});
    Enclave& e = urts.enclave(eid);
    e.register_ecall("ecall_empty", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
    e.register_ecall("ecall_with_ocall",
                     [](TrustedContext& ctx, void*) { return ctx.ocall(0, nullptr); });
  }
  Urts urts;
  EnclaveId eid = 0;
  OcallTable table;
};

void BM_EcallRoundTrip(benchmark::State& state) {
  Machine m(static_cast<PatchLevel>(state.range(0)));
  std::uint64_t virtual_ns = 0;
  for (auto _ : state) {
    const auto t0 = m.urts.clock().now();
    benchmark::DoNotOptimize(m.urts.sgx_ecall(m.eid, 0, &m.table, nullptr));
    virtual_ns += m.urts.clock().now() - t0;
  }
  state.counters["virtual_ns_per_call"] =
      static_cast<double>(virtual_ns) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_EcallRoundTrip)->Arg(0)->Arg(1)->Arg(2);

void BM_EcallPlusOcall(benchmark::State& state) {
  Machine m(static_cast<PatchLevel>(state.range(0)));
  std::uint64_t virtual_ns = 0;
  for (auto _ : state) {
    const auto t0 = m.urts.clock().now();
    benchmark::DoNotOptimize(m.urts.sgx_ecall(m.eid, 1, &m.table, nullptr));
    virtual_ns += m.urts.clock().now() - t0;
  }
  state.counters["virtual_ns_per_call"] =
      static_cast<double>(virtual_ns) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_EcallPlusOcall)->Arg(0)->Arg(1)->Arg(2);

void print_paper_table(bench::JsonReport& report) {
  const support::CycleConverter cycles(2.75);
  std::printf("\n=== E1: enclave transition costs vs patch level (paper §2.3.1) ===\n");
  std::printf("paper: ~5,850 cy (~2,130 ns) / ~10,170 cy (~3,850 ns) / ~13,100 cy (~4,890 ns)\n\n");
  std::printf("%-18s %18s %14s %16s %20s\n", "patch level", "EENTER..EEXIT[ns]", "cycles@2.75G",
              "full ecall[ns]", "ecall+ocall[ns]");
  for (const PatchLevel lvl :
       {PatchLevel::kUnpatched, PatchLevel::kSpectre, PatchLevel::kSpectreL1tf}) {
    Machine m(lvl);
    const auto t0 = m.urts.clock().now();
    m.urts.sgx_ecall(m.eid, 0, &m.table, nullptr);
    const auto ecall_ns = m.urts.clock().now() - t0;
    const auto t1 = m.urts.clock().now();
    m.urts.sgx_ecall(m.eid, 1, &m.table, nullptr);
    const auto both_ns = m.urts.clock().now() - t1;
    const auto round_trip = m.urts.cost().transition_round_trip_ns();
    std::printf("%-18s %18llu %14llu %16llu %20llu\n", to_string(lvl),
                static_cast<unsigned long long>(round_trip),
                static_cast<unsigned long long>(cycles.ns_to_cycles(round_trip)),
                static_cast<unsigned long long>(ecall_ns),
                static_cast<unsigned long long>(both_ns));
    const std::string lvl_name = to_string(lvl);
    report.metric("round_trip_ns." + lvl_name, static_cast<double>(round_trip), "ns");
    report.metric("ecall_ns." + lvl_name, static_cast<double>(ecall_ns), "ns");
    report.metric("ecall_ocall_ns." + lvl_name, static_cast<double>(both_ns), "ns");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport report("transitions", smoke, out_dir);
  print_paper_table(report);
  if (smoke) return report.write() ? 0 : 1;  // virtual time: the table is exact
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
