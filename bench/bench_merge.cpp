// E-merge: detach-time shard stitching — sequential sort-based merge cost
// versus the parallel tournament-tree merge (tracedb/merge.hpp).
//
// The workload mimics what Logger::detach() sees: k per-thread shards whose
// timestamps interleave globally but are *nearly* sorted within a shard
// (records are appended at call completion, so nested calls appear slightly
// out of start order).  Real time is measured — virtual time cannot see
// merge cost — and the parallel output is asserted byte-identical to the
// sequential one before any number is reported.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "tracedb/merge.hpp"

namespace {

/// Deterministic xorshift so runs are comparable across machines.
std::uint64_t rng_state = 0x9e3779b97f4a7c15ULL;
std::uint64_t next_rand() {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return rng_state;
}

/// One shard's key table: globally interleaved timestamps with local jitter
/// (each record may complete up to ~16 ticks after a later-starting one).
std::vector<std::vector<tracedb::Nanoseconds>> make_shards(std::size_t k, std::size_t per_shard) {
  std::vector<std::vector<tracedb::Nanoseconds>> keys(k);
  for (std::size_t s = 0; s < k; ++s) {
    keys[s].reserve(per_shard);
    std::uint64_t t = s;  // offset the interleave per shard
    for (std::size_t i = 0; i < per_shard; ++i) {
      t += 1 + next_rand() % (2 * k);
      keys[s].push_back(t + next_rand() % 16);
    }
  }
  return keys;
}

double merge_ms(const std::vector<std::vector<tracedb::Nanoseconds>>& keys,
                const std::vector<std::uint32_t>& ids, std::size_t threads,
                std::vector<tracedb::MergeRef>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = tracedb::parallel_merge_order(keys, ids, threads);
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("merge", smoke, out_dir);

  const std::size_t kShards = 8;
  const std::size_t kPerShard = smoke ? 40'000 : 400'000;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const auto keys = make_shards(kShards, kPerShard);
  std::vector<std::uint32_t> ids(kShards);
  for (std::size_t s = 0; s < kShards; ++s) ids[s] = static_cast<std::uint32_t>(s);

  std::printf("=== detach-time k-way merge: %zu shards x %zu records, %zu hw threads ===\n\n",
              kShards, kPerShard, hw);

  // Warm-up + correctness gate: the parallel order must equal the sequential
  // order element-for-element, or the speedup is meaningless.
  std::vector<tracedb::MergeRef> seq;
  std::vector<tracedb::MergeRef> par;
  (void)merge_ms(keys, ids, 1, seq);
  (void)merge_ms(keys, ids, hw, par);
  if (seq.size() != par.size()) {
    std::fprintf(stderr, "FAIL: size mismatch %zu vs %zu\n", seq.size(), par.size());
    return 1;
  }
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].shard != par[i].shard || seq[i].local != par[i].local) {
      std::fprintf(stderr, "FAIL: order diverges at %zu\n", i);
      return 1;
    }
  }
  std::printf("determinism: parallel order identical to sequential (%zu records)\n\n",
              seq.size());

  const int kReps = smoke ? 3 : 7;
  double best_seq = 1e300;
  double best_par = 1e300;
  for (int r = 0; r < kReps; ++r) {
    std::vector<tracedb::MergeRef> out;
    best_seq = std::min(best_seq, merge_ms(keys, ids, 1, out));
    best_par = std::min(best_par, merge_ms(keys, ids, hw, out));
  }

  std::printf("sequential (1 thread):   %8.2f ms\n", best_seq);
  std::printf("parallel (%2zu threads):   %8.2f ms\n", hw, best_par);
  std::printf("speedup:                 %8.2fx\n", best_seq / best_par);

  json.metric("records", static_cast<double>(seq.size()), "records");
  json.metric("threads", static_cast<double>(hw), "threads");
  json.metric("merge_ms.sequential", best_seq, "ms");
  json.metric("merge_ms.parallel", best_par, "ms");
  json.metric("speedup", best_seq / best_par, "x");
  return json.write() ? 0 : 1;
}
