// E15 — fleet aggregation service: produce, ingest and query cost.
//
// Three questions:
//  * wire overhead — bytes per producer stream and per merged window, the
//    budget a `sgxperf monitor --fleet` producer adds to its run;
//  * ingest throughput — MB/s and windows/s through Aggregator::ingest with
//    incremental frame reassembly (chunked pushes, the socket read path);
//  * query cost — ms per full snapshot_json and per top-N ranking over the
//    merged state, which bounds how often a dashboard can poll `serve`.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/corpus.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("fleet", smoke, bench::strip_out_dir_flag(argc, argv));

  std::printf("=== E15: fleet aggregation — produce, ingest, query ===\n\n");

  fleet::CorpusConfig config = fleet::default_corpus();
  for (auto& p : config.producers) p.duration_ns = smoke ? 20'000'000 : 100'000'000;

  // Produce: each corpus producer is a full lockstep stress run under a
  // MonitorSession + FrameSink, so this is the end-to-end producer cost.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> streams;
  std::size_t stream_bytes = 0;
  for (const auto& spec : config.producers) {
    streams.push_back(fleet::run_corpus_producer(spec, config));
    stream_bytes += streams.back().size();
  }
  const double produce_s = seconds_since(t0);
  std::printf("%-28s %3zu producers, %8zu bytes, %7.1f ms\n", "produce (stress + frames)",
              streams.size(), stream_bytes, produce_s * 1e3);

  // Ingest repeatedly into fresh aggregators to get a stable rate; chunked
  // pushes exercise the incremental reassembly the socket loop relies on.
  const int ingest_rounds = smoke ? 20 : 100;
  std::uint64_t windows_merged = 0;
  t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < ingest_rounds; ++round) {
    fleet::Aggregator agg;
    for (const auto& bytes : streams) {
      const fleet::ProducerId id = agg.connect();
      constexpr std::size_t kChunk = 4096;
      for (std::size_t off = 0; off < bytes.size(); off += kChunk) {
        agg.ingest(id, bytes.data() + off, std::min(kChunk, bytes.size() - off));
      }
      agg.disconnect(id);
    }
    windows_merged = agg.windows_merged();
  }
  const double ingest_s = seconds_since(t0);
  const double ingest_mb_s =
      static_cast<double>(stream_bytes) * ingest_rounds / (1024.0 * 1024.0) / ingest_s;
  const double windows_per_s = static_cast<double>(windows_merged) * ingest_rounds / ingest_s;
  std::printf("%-28s %8.1f MB/s, %10.0f windows/s (%llu windows/round)\n", "ingest (4 KiB chunks)",
              ingest_mb_s, windows_per_s, static_cast<unsigned long long>(windows_merged));

  // Query: snapshot and rankings over the merged state.
  fleet::Aggregator agg;
  fleet::run_corpus(agg, config);
  const int query_rounds = smoke ? 50 : 500;
  t0 = std::chrono::steady_clock::now();
  std::size_t snapshot_bytes = 0;
  for (int i = 0; i < query_rounds; ++i) snapshot_bytes = agg.snapshot_json().size();
  const double snapshot_ms = seconds_since(t0) * 1e3 / query_rounds;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < query_rounds; ++i) (void)agg.top_json("p99", 10);
  const double top_ms = seconds_since(t0) * 1e3 / query_rounds;
  std::printf("%-28s %8.3f ms/snapshot (%zu bytes), %.3f ms/top-10\n", "query", snapshot_ms,
              snapshot_bytes, top_ms);

  json.metric("producers", static_cast<double>(streams.size()));
  json.metric("stream_bytes", static_cast<double>(stream_bytes), "bytes");
  json.metric("bytes_per_window",
              static_cast<double>(stream_bytes) / static_cast<double>(windows_merged), "bytes");
  json.metric("produce_ms", produce_s * 1e3, "ms");
  json.metric("ingest_mb_per_s", ingest_mb_s, "MB/s");
  json.metric("ingest_windows_per_s", windows_per_s, "windows/s");
  json.metric("snapshot_ms", snapshot_ms, "ms");
  json.metric("top10_ms", top_ms, "ms");
  return json.write() ? 0 : 1;
}
