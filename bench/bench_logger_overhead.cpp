// E2 — Table 2: performance overhead of the sgx-perf event logger.
//
// Three experiments, as in §5.1:
//   (1) a single empty ecall, executed n times;
//   (2) an ecall performing one ocall, executed n times;
//   (3) a long ecall (k loop iterations), with AEX counting / tracing.
// Reported: mean virtual time per call, native vs with-logger, and the
// derived per-call / per-AEX overheads next to the paper's numbers.
//
// Experiment (4) is ours: a contended multi-thread workload comparing the
// sharded per-thread recording path against the legacy global-mutex path in
// REAL time (virtual time cannot see lock contention).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_empty(void);
    public int ecall_with_ocall(void);
    public int ecall_long(void);
  };
  untrusted { void ocall_empty(void); };
};
)";

SgxStatus empty_ocall(void*) { return SgxStatus::kSuccess; }

struct Machine {
  Machine() {
    EnclaveConfig config;
    config.tcs_count = 16;  // enough TCSs for the contended experiment
    eid = urts.create_enclave(std::move(config), edl::parse(kEdl));
    table = make_ocall_table({&empty_ocall});
    Enclave& e = urts.enclave(eid);
    e.register_ecall("ecall_empty", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
    e.register_ecall("ecall_with_ocall",
                     [](TrustedContext& ctx, void*) { return ctx.ocall(0, nullptr); });
    e.register_ecall("ecall_long", [](TrustedContext& ctx, void*) {
      // k = 1,000,000 iterations "doing nothing" — ~45 ns each.
      for (int i = 0; i < 1'000'000; ++i) ctx.work(45);
      return SgxStatus::kSuccess;
    });
  }
  Urts urts;
  EnclaveId eid = 0;
  OcallTable table;
};

/// Mean virtual ns of `n` invocations of ecall `id` (after `warmup` calls).
double mean_call_ns(Machine& m, CallId id, int n, int warmup) {
  for (int i = 0; i < warmup; ++i) m.urts.sgx_ecall(m.eid, id, &m.table, nullptr);
  const auto t0 = m.urts.clock().now();
  for (int i = 0; i < n; ++i) m.urts.sgx_ecall(m.eid, id, &m.table, nullptr);
  return static_cast<double>(m.urts.clock().now() - t0) / n;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  const std::string out_dir = bench::strip_out_dir_flag(argc, argv);
  bench::JsonReport json("logger_overhead", smoke, out_dir);
  // The paper uses n = 1,000,000 for (1)/(2); virtual time is deterministic,
  // so a smaller n gives identical means while keeping real time low.
  const int kN = smoke ? 2'000 : 20'000;
  const int kWarmup = smoke ? 100 : 1'000;

  std::printf("=== E2: logger overhead (paper Table 2) ===\n\n");

  double native1 = 0;
  double native2 = 0;
  {
    Machine m;
    native1 = mean_call_ns(m, 0, kN, kWarmup);
    native2 = mean_call_ns(m, 1, kN, kWarmup);
  }
  double logged1 = 0;
  double logged2 = 0;
  {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = false;  // experiments (1)/(2) trace calls only
    config.trace_paging = false;
    perf::Logger logger(db, config);
    logger.attach(m.urts);
    logged1 = mean_call_ns(m, 0, kN, kWarmup);
    logged2 = mean_call_ns(m, 1, kN, kWarmup);
    logger.detach();
  }

  std::printf("%-22s %18s %18s\n", "", "(1) single ecall", "(2) ecall + ocall");
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: 4,205 / 8,013)\n", "native", native1,
              native2);
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: 5,572 / 10,699)\n", "with logging", logged1,
              logged2);
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: ~1,366 / ~2,686)\n", "overhead",
              logged1 - native1, logged2 - native2);
  std::printf("%-22s %18s %15.0f ns   (paper: ~1,320)\n", "ocall only", "-",
              (logged2 - native2) - (logged1 - native1));
  json.metric("ecall_native_ns", native1, "ns");
  json.metric("ecall_logged_ns", logged1, "ns");
  json.metric("ecall_overhead_ns", logged1 - native1, "ns");
  json.metric("ecall_ocall_native_ns", native2, "ns");
  json.metric("ecall_ocall_logged_ns", logged2, "ns");
  json.metric("ocall_overhead_ns", (logged2 - native2) - (logged1 - native1), "ns");

  // --- experiment (3): long ecall with AEX counting / tracing --------------
  const int kLongN = smoke ? 8 : 40;  // paper: n = 1,000 reps of a ~45 ms call
  struct LongResult {
    double per_call_us = 0;
    double aex_per_call = 0;
  };
  const auto run_long = [&](bool attach, bool trace_aex) {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = !trace_aex;
    config.trace_aex = trace_aex;
    config.trace_paging = false;
    perf::Logger logger(db, config);
    if (attach) logger.attach(m.urts);
    const auto t0 = m.urts.clock().now();
    for (int i = 0; i < kLongN; ++i) m.urts.sgx_ecall(m.eid, 2, &m.table, nullptr);
    const double per_call =
        static_cast<double>(m.urts.clock().now() - t0) / kLongN / 1e3;  // us
    LongResult result;
    result.per_call_us = per_call;
    if (attach) {
      logger.detach();  // merges the shards: db is readable only afterwards
      std::uint64_t aex = 0;
      for (const auto& c : db.calls()) aex += c.aex_count;
      result.aex_per_call = static_cast<double>(aex) / kLongN;
    }
    return result;
  };

  // "with Logging" in Table 2's experiment (3) means calls traced but AEXs
  // not instrumented; we approximate by counting AEXs via a plain hook.
  double plain_long_us = 0;
  {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = false;
    config.trace_paging = false;
    perf::Logger logger(db, config);
    logger.attach(m.urts);
    const auto t0 = m.urts.clock().now();
    for (int i = 0; i < kLongN; ++i) m.urts.sgx_ecall(m.eid, 2, &m.table, nullptr);
    plain_long_us = static_cast<double>(m.urts.clock().now() - t0) / kLongN / 1e3;
    logger.detach();
  }
  const LongResult counting = run_long(true, false);
  const LongResult tracing = run_long(true, true);

  std::printf("\n(3) long ecall (k=1,000,000 empty iterations)\n");
  std::printf("%-22s %14s %12s\n", "", "exec time", "AEX count");
  std::printf("%-22s %11.0f us %12s   (paper: 45,377 us)\n", "with logging", plain_long_us, "-");
  std::printf("%-22s %11.0f us %12.2f   (paper: 45,390 us / 11.51)\n", "+ AEX counting",
              counting.per_call_us, counting.aex_per_call);
  std::printf("%-22s %11.0f us %12.2f   (paper: 45,390 us / 11.56)\n", "+ AEX tracing",
              tracing.per_call_us, tracing.aex_per_call);
  if (counting.aex_per_call > 0) {
    std::printf("%-22s %11.0f ns per AEX   (paper: ~1,076)\n", "counting overhead",
                (counting.per_call_us - plain_long_us) * 1e3 / counting.aex_per_call);
    std::printf("%-22s %11.0f ns per AEX   (paper: ~1,118)\n", "tracing overhead",
                (tracing.per_call_us - plain_long_us) * 1e3 / tracing.aex_per_call);
  }
  json.metric("long_ecall_logged_us", plain_long_us, "us");
  json.metric("long_ecall_aex_counting_us", counting.per_call_us, "us");
  json.metric("long_ecall_aex_tracing_us", tracing.per_call_us, "us");
  json.metric("aex_per_long_ecall", tracing.aex_per_call);

  // Experiments (4)/(5) measure real wall-clock contention — slow and noisy
  // under CI, so the smoke run reports the deterministic virtual-time numbers
  // above and stops here.
  if (smoke) return json.write() ? 0 : 1;

  // --- experiment (4): contended recording primitive -----------------------
  // The hot-path cost the refactor targets: appending one call record.  T
  // threads append kRecordsPerThread records each, either through the
  // database mutex (the old path) or into their own EventShard (the new
  // path, with the one-time merge accounted separately).  Real wall-clock
  // time — virtual time cannot see lock traffic.
  constexpr std::size_t kRecordsPerThread = 200'000;
  struct PrimitiveResult {
    double ns_per_record = 0;
    double merge_ms = 0;
  };
  const auto run_primitive = [&](std::size_t threads, bool sharded) {
    tracedb::TraceDatabase db;
    std::vector<tracedb::EventShard*> shards;
    for (std::size_t t = 0; t < threads && sharded; ++t) {
      shards.push_back(&db.register_shard(static_cast<tracedb::ThreadId>(t + 1), t));
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        tracedb::CallRecord rec;
        rec.thread_id = static_cast<tracedb::ThreadId>(t + 1);
        for (std::size_t i = 0; i < kRecordsPerThread; ++i) {
          rec.start_ns = i;
          rec.end_ns = i + 1;
          if (sharded) {
            shards[t]->add_call(rec);
          } else {
            db.add_call(rec);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto t1 = std::chrono::steady_clock::now();
    if (sharded) db.merge_shards();
    const auto t2 = std::chrono::steady_clock::now();

    PrimitiveResult result;
    result.ns_per_record = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                           static_cast<double>(threads * kRecordsPerThread);
    result.merge_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    return result;
  };

  std::printf("\n(4) contended record append, %zu records per thread (real time)\n",
              kRecordsPerThread);
  std::printf("%8s %20s %20s %10s %12s\n", "threads", "mutex (ns/rec)", "sharded (ns/rec)",
              "speedup", "merge (ms)");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const PrimitiveResult mutex_path = run_primitive(threads, false);
    const PrimitiveResult sharded_path = run_primitive(threads, true);
    std::printf("%8zu %17.1f ns %17.1f ns %9.2fx %9.2f ms\n", threads,
                mutex_path.ns_per_record, sharded_path.ns_per_record,
                mutex_path.ns_per_record / sharded_path.ns_per_record,
                sharded_path.merge_ms);
  }

  // --- experiment (5): the same contention seen end-to-end -----------------
  // T worker threads hammer ecall+ocall pairs through one attached logger;
  // reported is the logger's per-event overhead over an identical native
  // (logger-free) run, so the simulator's own shared-clock cost cancels out.
  constexpr int kContendedCallsPerThread = 4'000;
  const auto run_workload = [&](std::size_t threads, int mode /*0=native,1=mutex,2=sharded*/) {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = false;
    config.trace_paging = false;
    config.sharded = mode == 2;
    perf::Logger logger(db, config);
    if (mode != 0) logger.attach(m.urts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kContendedCallsPerThread; ++i) {
          m.urts.sgx_ecall(m.eid, 1, &m.table, nullptr);
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto elapsed =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    if (mode != 0) logger.detach();
    // Two records (ecall + ocall) per pair.
    return elapsed / static_cast<double>(threads * kContendedCallsPerThread * 2);
  };

  std::printf("\n(5) end-to-end logger overhead under contention (real ns/event over native)\n");
  std::printf("%8s %16s %16s %16s\n", "threads", "native ns/call", "mutex overhead",
              "sharded overhead");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double native = run_workload(threads, 0);
    const double with_mutex = run_workload(threads, 1);
    const double with_shards = run_workload(threads, 2);
    std::printf("%8zu %13.0f ns %13.0f ns %13.0f ns\n", threads, native, with_mutex - native,
                with_shards - native);
  }
  return 0;
}
