// E2 — Table 2: performance overhead of the sgx-perf event logger.
//
// Three experiments, as in §5.1:
//   (1) a single empty ecall, executed n times;
//   (2) an ecall performing one ocall, executed n times;
//   (3) a long ecall (k loop iterations), with AEX counting / tracing.
// Reported: mean virtual time per call, native vs with-logger, and the
// derived per-call / per-AEX overheads next to the paper's numbers.
#include <cstdio>

#include "perf/logger.hpp"
#include "sgxsim/runtime.hpp"

namespace {

using namespace sgxsim;

constexpr const char* kEdl = R"(
enclave {
  trusted {
    public int ecall_empty(void);
    public int ecall_with_ocall(void);
    public int ecall_long(void);
  };
  untrusted { void ocall_empty(void); };
};
)";

SgxStatus empty_ocall(void*) { return SgxStatus::kSuccess; }

struct Machine {
  Machine() {
    eid = urts.create_enclave({}, edl::parse(kEdl));
    table = make_ocall_table({&empty_ocall});
    Enclave& e = urts.enclave(eid);
    e.register_ecall("ecall_empty", [](TrustedContext&, void*) { return SgxStatus::kSuccess; });
    e.register_ecall("ecall_with_ocall",
                     [](TrustedContext& ctx, void*) { return ctx.ocall(0, nullptr); });
    e.register_ecall("ecall_long", [](TrustedContext& ctx, void*) {
      // k = 1,000,000 iterations "doing nothing" — ~45 ns each.
      for (int i = 0; i < 1'000'000; ++i) ctx.work(45);
      return SgxStatus::kSuccess;
    });
  }
  Urts urts;
  EnclaveId eid = 0;
  OcallTable table;
};

/// Mean virtual ns of `n` invocations of ecall `id` (after `warmup` calls).
double mean_call_ns(Machine& m, CallId id, int n, int warmup) {
  for (int i = 0; i < warmup; ++i) m.urts.sgx_ecall(m.eid, id, &m.table, nullptr);
  const auto t0 = m.urts.clock().now();
  for (int i = 0; i < n; ++i) m.urts.sgx_ecall(m.eid, id, &m.table, nullptr);
  return static_cast<double>(m.urts.clock().now() - t0) / n;
}

}  // namespace

int main() {
  // The paper uses n = 1,000,000 for (1)/(2); virtual time is deterministic,
  // so a smaller n gives identical means while keeping real time low.
  constexpr int kN = 20'000;
  constexpr int kWarmup = 1'000;

  std::printf("=== E2: logger overhead (paper Table 2) ===\n\n");

  double native1 = 0;
  double native2 = 0;
  {
    Machine m;
    native1 = mean_call_ns(m, 0, kN, kWarmup);
    native2 = mean_call_ns(m, 1, kN, kWarmup);
  }
  double logged1 = 0;
  double logged2 = 0;
  {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = false;  // experiments (1)/(2) trace calls only
    config.trace_paging = false;
    perf::Logger logger(db, config);
    logger.attach(m.urts);
    logged1 = mean_call_ns(m, 0, kN, kWarmup);
    logged2 = mean_call_ns(m, 1, kN, kWarmup);
    logger.detach();
  }

  std::printf("%-22s %18s %18s\n", "", "(1) single ecall", "(2) ecall + ocall");
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: 4,205 / 8,013)\n", "native", native1,
              native2);
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: 5,572 / 10,699)\n", "with logging", logged1,
              logged2);
  std::printf("%-22s %15.0f ns %15.0f ns   (paper: ~1,366 / ~2,686)\n", "overhead",
              logged1 - native1, logged2 - native2);
  std::printf("%-22s %18s %15.0f ns   (paper: ~1,320)\n", "ocall only", "-",
              (logged2 - native2) - (logged1 - native1));

  // --- experiment (3): long ecall with AEX counting / tracing --------------
  constexpr int kLongN = 40;  // paper: n = 1,000 repetitions of a ~45 ms call
  struct LongResult {
    double per_call_us = 0;
    double aex_per_call = 0;
  };
  const auto run_long = [&](bool attach, bool trace_aex) {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = !trace_aex;
    config.trace_aex = trace_aex;
    config.trace_paging = false;
    perf::Logger logger(db, config);
    if (attach) logger.attach(m.urts);
    const auto t0 = m.urts.clock().now();
    for (int i = 0; i < kLongN; ++i) m.urts.sgx_ecall(m.eid, 2, &m.table, nullptr);
    const double per_call =
        static_cast<double>(m.urts.clock().now() - t0) / kLongN / 1e3;  // us
    LongResult result;
    result.per_call_us = per_call;
    if (attach) {
      std::uint64_t aex = 0;
      for (const auto& c : db.calls()) aex += c.aex_count;
      result.aex_per_call = static_cast<double>(aex) / kLongN;
      logger.detach();
    }
    return result;
  };

  // "with Logging" in Table 2's experiment (3) means calls traced but AEXs
  // not instrumented; we approximate by counting AEXs via a plain hook.
  double plain_long_us = 0;
  {
    Machine m;
    tracedb::TraceDatabase db;
    perf::LoggerConfig config;
    config.count_aex = false;
    config.trace_paging = false;
    perf::Logger logger(db, config);
    logger.attach(m.urts);
    const auto t0 = m.urts.clock().now();
    for (int i = 0; i < kLongN; ++i) m.urts.sgx_ecall(m.eid, 2, &m.table, nullptr);
    plain_long_us = static_cast<double>(m.urts.clock().now() - t0) / kLongN / 1e3;
    logger.detach();
  }
  const LongResult counting = run_long(true, false);
  const LongResult tracing = run_long(true, true);

  std::printf("\n(3) long ecall (k=1,000,000 empty iterations)\n");
  std::printf("%-22s %14s %12s\n", "", "exec time", "AEX count");
  std::printf("%-22s %11.0f us %12s   (paper: 45,377 us)\n", "with logging", plain_long_us, "-");
  std::printf("%-22s %11.0f us %12.2f   (paper: 45,390 us / 11.51)\n", "+ AEX counting",
              counting.per_call_us, counting.aex_per_call);
  std::printf("%-22s %11.0f us %12.2f   (paper: 45,390 us / 11.56)\n", "+ AEX tracing",
              tracing.per_call_us, tracing.aex_per_call);
  if (counting.aex_per_call > 0) {
    std::printf("%-22s %11.0f ns per AEX   (paper: ~1,076)\n", "counting overhead",
                (counting.per_call_us - plain_long_us) * 1e3 / counting.aex_per_call);
    std::printf("%-22s %11.0f ns per AEX   (paper: ~1,118)\n", "tracing overhead",
                (tracing.per_call_us - plain_long_us) * 1e3 / tracing.aex_per_call);
  }
  return 0;
}
