// E9 — analyser micro-validation and performance.
//
// (a) Detector threshold sweeps: synthetic traces that straddle the Eq.1/2/3
//     boundaries, confirming the paper's default weights fire exactly where
//     intended (an ablation over the configurable α/β/γ/δ/ε/λ).
// (b) google-benchmark timings of the analyser itself over traces of
//     increasing size (the tool must remain usable on million-event traces).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "perf/analyzer.hpp"
#include "support/rng.hpp"

namespace {

using perf::Analyzer;
using perf::AnalyzerConfig;
using perf::FindingKind;
using tracedb::CallRecord;
using tracedb::CallType;
using tracedb::TraceDatabase;

void add_call(TraceDatabase& db, CallType type, tracedb::CallId id, std::uint64_t start,
              std::uint64_t end, tracedb::CallIndex parent = tracedb::kNoParent) {
  CallRecord c;
  c.type = type;
  c.thread_id = 1;
  c.enclave_id = 1;
  c.call_id = id;
  c.start_ns = start;
  c.end_ns = end;
  c.parent = parent;
  db.add_call(c);
}

/// Builds a trace where `short_fraction` of ocall id 7's instances last
/// 600 ns and the rest 60 us, then reports whether Eq.1 fires.
bool eq1_fires(double short_fraction, const AnalyzerConfig& config = {}) {
  TraceDatabase db;
  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 1'000'000;
    const bool is_short = static_cast<double>(i) < short_fraction * kCalls;
    add_call(db, CallType::kOcall, 7, base, base + (is_short ? 600 : 60'000));
  }
  const auto report = Analyzer(db, config).analyze();
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kShortCalls) return true;
  }
  return false;
}

/// Builds a trace where ocall 2 starts `offset_us` after its parent ecall
/// begins; reports whether Eq.2 flags reorder-at-start.
bool eq2_fires(std::uint64_t offset_us) {
  TraceDatabase db;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t base = static_cast<std::uint64_t>(i) * 10'000'000;
    CallRecord e;
    e.type = CallType::kEcall;
    e.thread_id = 1;
    e.enclave_id = 1;
    e.call_id = 1;
    e.start_ns = base;
    e.end_ns = base + 5'000'000;
    const auto parent = db.add_call(e);
    add_call(db, CallType::kOcall, 2, base + offset_us * 1'000,
             base + offset_us * 1'000 + 2'000, parent);
  }
  const auto report = Analyzer(db).analyze();
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kReorderStart) return true;
  }
  return false;
}

/// Successive identical ecalls with a given gap; reports whether Eq.3 flags
/// batching.
bool eq3_fires(std::uint64_t gap_us) {
  TraceDatabase db;
  std::uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    add_call(db, CallType::kEcall, 4, t, t + 4'500);
    t += 4'500 + gap_us * 1'000;
  }
  const auto report = Analyzer(db).analyze();
  for (const auto& f : report.findings) {
    if (f.kind == FindingKind::kBatchable) return true;
  }
  return false;
}

TraceDatabase make_large_trace(std::size_t calls) {
  TraceDatabase db;
  support::Rng rng(7);
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < calls; ++i) {
    const auto id = static_cast<tracedb::CallId>(rng.next_below(24));
    const auto duration = 1'000 + rng.next_below(30'000);
    const bool is_ecall = rng.chance(0.5);
    add_call(db, is_ecall ? CallType::kEcall : CallType::kOcall, id, t, t + duration);
    t += duration + rng.next_below(20'000);
  }
  return db;
}

void BM_AnalyzeTrace(benchmark::State& state) {
  const auto db = make_large_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Analyzer analyzer(db);
    benchmark::DoNotOptimize(analyzer.analyze());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnalyzeTrace)->Arg(1'000)->Arg(10'000)->Arg(100'000);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("analyzer", smoke, bench::strip_out_dir_flag(argc, argv));
  std::printf("=== E9: analyser detector validation (Eq. 1-3, paper §4.3.2) ===\n\n");

  std::printf("Eq.1 (move/duplicate) vs fraction of sub-1us calls (alpha = 0.35):\n  ");
  double eq1_first_fire = 1.0;
  for (const double f : {0.10, 0.20, 0.30, 0.34, 0.36, 0.50, 0.80}) {
    const bool fire = eq1_fires(f);
    if (fire && f < eq1_first_fire) eq1_first_fire = f;
    std::printf("%.2f->%s  ", f, fire ? "FIRE" : "-");
  }
  json.metric("eq1_first_firing_fraction", eq1_first_fire, "fraction");
  std::printf("\nEq.1 with alpha raised to 0.60:\n  ");
  {
    AnalyzerConfig strict;
    strict.eq1_alpha = 0.60;
    // beta/gamma would still fire for these all-short-or-long traces at 0.5:
    strict.eq1_beta = 0.70;
    strict.eq1_gamma = 0.90;
    for (const double f : {0.36, 0.50, 0.59, 0.61, 0.80}) {
      std::printf("%.2f->%s  ", f, eq1_fires(f, strict) ? "FIRE" : "-");
    }
  }

  std::printf("\n\nEq.2 (reorder) vs child offset from parent start (window 10/20 us):\n  ");
  std::uint64_t eq2_last_fire = 0;
  for (const std::uint64_t off : {1ull, 5ull, 9ull, 15ull, 25ull, 100ull}) {
    const bool fire = eq2_fires(off);
    if (fire) eq2_last_fire = off;
    std::printf("%llu us->%s  ", static_cast<unsigned long long>(off), fire ? "FIRE" : "-");
  }
  json.metric("eq2_last_firing_offset_us", static_cast<double>(eq2_last_fire), "us");

  std::printf("\n\nEq.3 (batch) vs gap between successive identical ecalls "
              "(windows 1/5/10/20 us):\n  ");
  std::uint64_t eq3_last_fire = 0;
  for (const std::uint64_t gap : {0ull, 1ull, 4ull, 9ull, 19ull, 40ull, 200ull}) {
    const bool fire = eq3_fires(gap);
    if (fire) eq3_last_fire = gap;
    std::printf("%llu us->%s  ", static_cast<unsigned long long>(gap), fire ? "FIRE" : "-");
  }
  json.metric("eq3_last_firing_gap_us", static_cast<double>(eq3_last_fire), "us");
  std::printf("\n\n");

  // Analyser cost on a mid-size trace: measured directly (real time) so the
  // smoke run reports it without the google-benchmark harness.
  {
    const auto db = make_large_trace(10'000);
    const auto t0 = std::chrono::steady_clock::now();
    Analyzer analyzer(db);
    benchmark::DoNotOptimize(analyzer.analyze());
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    std::printf("analyse 10k-call trace: %.2f ms\n\n", ms);
    json.metric("analyze_10k_calls_ms", ms, "ms");
  }

  if (smoke) return json.write() ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return json.write() ? 0 : 1;
}
