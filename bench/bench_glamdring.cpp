// E5 — §5.2.3 / Figure 6 (right): Glamdring-partitioned LibreSSL signing.
//
// Runs the certificate-signing loop in the native, partitioned and optimised
// builds at all three patch levels, reporting signs/s and the normalised
// ratios of Figure 6; then attaches the logger to the partitioned build and
// shows the trace that leads to the optimisation (bn_sub_part_words at
// ~99.5% of ecalls, flagged SISC/batchable by the analyser) plus the
// working-set measurement (paper: 61 pages at start-up, 32 during the run).
#include <cstdio>

#include "bench_json.hpp"
#include "glamdring/glamdring.hpp"
#include "perf/analyzer.hpp"
#include "perf/logger.hpp"
#include "perf/workingset.hpp"

int main(int argc, char** argv) {
  using namespace glamdring;
  const bool smoke = bench::strip_smoke_flag(argc, argv);
  bench::JsonReport json("glamdring", smoke, bench::strip_out_dir_flag(argc, argv));

  std::printf("=== E5: Glamdring-partitioned signing (paper §5.2.3, Fig. 6 right) ===\n");
  std::printf(
      "paper: native 145 signs/s, partitioned 33.9; optimisation wins 2.16x / 2.66x "
      "(+Spectre) / 2.87x (+L1TF)\n\n");

  // A shorter virtual window than the paper's 30 s keeps real time low; the
  // virtual-time rates are duration-independent (smoke shrinks it further).
  const support::Nanoseconds kWindow = smoke ? 300'000'000 : 3'000'000'000;

  std::printf("%-16s %12s %14s %14s %12s %12s\n", "patch level", "native[/s]", "partitioned",
              "optimised", "part/nat", "opt/part");
  for (const auto lvl : {sgxsim::PatchLevel::kUnpatched, sgxsim::PatchLevel::kSpectre,
                         sgxsim::PatchLevel::kSpectreL1tf}) {
    sgxsim::Urts urts(sgxsim::CostModel::preset(lvl));
    SigningBenchmark native(urts, Variant::kNative);
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    SigningBenchmark optimized(urts, Variant::kOptimized);
    const auto n = native.run_for(kWindow);
    const auto p = partitioned.run_for(kWindow);
    const auto o = optimized.run_for(kWindow);
    std::printf("%-16s %12.1f %14.1f %14.1f %11.2fx %11.2fx\n", sgxsim::to_string(lvl),
                n.signs_per_s, p.signs_per_s, o.signs_per_s, p.signs_per_s / n.signs_per_s,
                o.signs_per_s / p.signs_per_s);
    const std::string lvl_name = sgxsim::to_string(lvl);
    json.metric("native_signs_per_s." + lvl_name, n.signs_per_s, "signs/s");
    json.metric("partitioned_signs_per_s." + lvl_name, p.signs_per_s, "signs/s");
    json.metric("optimised_signs_per_s." + lvl_name, o.signs_per_s, "signs/s");
    json.metric("batch_speedup." + lvl_name, o.signs_per_s / p.signs_per_s, "x");
  }

  // --- the profiling pass --------------------------------------------------------
  sgxsim::Urts urts;
  tracedb::TraceDatabase trace;
  perf::Logger logger(trace);
  logger.attach(urts);
  {
    SigningBenchmark partitioned(urts, Variant::kPartitioned);
    for (std::uint64_t i = 0; i < 10; ++i) (void)partitioned.sign(i);
  }
  logger.detach();

  std::uint64_t sub_calls = 0;
  std::uint64_t total_ecalls = 0;
  std::uint64_t total_ocalls = 0;
  std::uint64_t short_ocalls = 0;
  double sub_mean_ns = 0;
  for (const auto& c : trace.calls()) {
    if (c.type == tracedb::CallType::kEcall) {
      ++total_ecalls;
      if (trace.name_of(c.enclave_id, c.type, c.call_id) == "ecall_bn_sub_part_words") {
        ++sub_calls;
        sub_mean_ns += static_cast<double>(c.duration());
      }
    } else {
      ++total_ocalls;
      if (c.duration() < 1'000) ++short_ocalls;
    }
  }
  if (sub_calls > 0) sub_mean_ns /= static_cast<double>(sub_calls);

  std::printf("\n--- trace of the partitioned build (10 signatures) ---\n");
  std::printf("ecalls: %llu, of which ecall_bn_sub_part_words: %llu (%.2f%%; paper: 99.5%%)\n",
              static_cast<unsigned long long>(total_ecalls),
              static_cast<unsigned long long>(sub_calls),
              100.0 * static_cast<double>(sub_calls) / static_cast<double>(total_ecalls));
  std::printf("mean bn_sub_part_words duration: %.1f us (paper: ~3 us, 'basically the "
              "transition time')\n",
              sub_mean_ns / 1e3);
  std::printf("ocalls: %llu, %.1f%% shorter than 1 us (paper: 78.65%% < 1 us)\n",
              static_cast<unsigned long long>(total_ocalls),
              total_ocalls == 0 ? 0.0
                                : 100.0 * static_cast<double>(short_ocalls) /
                                      static_cast<double>(total_ocalls));

  perf::Analyzer analyzer(trace);
  analyzer.set_interface(1, sgxsim::edl::parse(kGlamdringEdl));
  const auto report = analyzer.analyze();
  bool sisc = false;
  std::printf("\n--- analyser findings (top 8) ---\n");
  std::size_t shown = 0;
  for (const auto& f : report.findings) {
    if (shown < 8) {
      std::printf("[%zu] %s: %s\n", ++shown, perf::to_string(f.kind), f.subject_name.c_str());
    }
    if (f.subject_name == "ecall_bn_sub_part_words" &&
        (f.kind == perf::FindingKind::kBatchable || f.kind == perf::FindingKind::kShortCalls)) {
      sisc = true;
    }
  }
  std::printf("\nSISC on ecall_bn_sub_part_words detected: %s (drives the 2.16x optimisation)\n",
              sisc ? "YES" : "NO");

  // --- working set ------------------------------------------------------------------
  {
    sgxsim::Urts ws_urts;
    SigningBenchmark partitioned(ws_urts, Variant::kPartitioned);
    perf::WorkingSetEstimator ws(ws_urts.enclave(partitioned.enclave_id()));
    ws.start();
    (void)partitioned.sign(0);
    const auto startup = ws.checkpoint();
    for (std::uint64_t i = 1; i < 6; ++i) (void)partitioned.sign(i);
    const auto steady = ws.accessed_pages();
    ws.stop();
    std::printf("\nworking set: %zu pages after start-up, %zu during the benchmark "
                "(paper: 61 / 32)\n",
                startup.size(), steady.size());
    json.metric("working_set_startup", static_cast<double>(startup.size()), "pages");
    json.metric("working_set_steady", static_cast<double>(steady.size()), "pages");
  }
  json.metric("sisc_detected", sisc ? 1.0 : 0.0, "bool");
  if (!json.write()) return 1;
  return sisc ? 0 : 1;
}
