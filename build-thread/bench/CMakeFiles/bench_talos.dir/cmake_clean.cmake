file(REMOVE_RECURSE
  "CMakeFiles/bench_talos.dir/bench_talos.cpp.o"
  "CMakeFiles/bench_talos.dir/bench_talos.cpp.o.d"
  "bench_talos"
  "bench_talos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_talos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
