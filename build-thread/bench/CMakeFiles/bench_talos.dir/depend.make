# Empty dependencies file for bench_talos.
# This may be replaced when dependencies are built.
