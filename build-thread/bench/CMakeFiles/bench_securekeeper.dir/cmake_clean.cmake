file(REMOVE_RECURSE
  "CMakeFiles/bench_securekeeper.dir/bench_securekeeper.cpp.o"
  "CMakeFiles/bench_securekeeper.dir/bench_securekeeper.cpp.o.d"
  "bench_securekeeper"
  "bench_securekeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_securekeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
