file(REMOVE_RECURSE
  "CMakeFiles/bench_glamdring.dir/bench_glamdring.cpp.o"
  "CMakeFiles/bench_glamdring.dir/bench_glamdring.cpp.o.d"
  "bench_glamdring"
  "bench_glamdring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glamdring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
