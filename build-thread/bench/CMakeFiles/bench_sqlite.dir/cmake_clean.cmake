file(REMOVE_RECURSE
  "CMakeFiles/bench_sqlite.dir/bench_sqlite.cpp.o"
  "CMakeFiles/bench_sqlite.dir/bench_sqlite.cpp.o.d"
  "bench_sqlite"
  "bench_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
