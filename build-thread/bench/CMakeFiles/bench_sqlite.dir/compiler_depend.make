# Empty compiler generated dependencies file for bench_sqlite.
# This may be replaced when dependencies are built.
