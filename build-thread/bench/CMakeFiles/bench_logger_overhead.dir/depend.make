# Empty dependencies file for bench_logger_overhead.
# This may be replaced when dependencies are built.
