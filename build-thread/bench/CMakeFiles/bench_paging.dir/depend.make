# Empty dependencies file for bench_paging.
# This may be replaced when dependencies are built.
