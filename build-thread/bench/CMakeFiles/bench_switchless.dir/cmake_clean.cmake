file(REMOVE_RECURSE
  "CMakeFiles/bench_switchless.dir/bench_switchless.cpp.o"
  "CMakeFiles/bench_switchless.dir/bench_switchless.cpp.o.d"
  "bench_switchless"
  "bench_switchless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switchless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
