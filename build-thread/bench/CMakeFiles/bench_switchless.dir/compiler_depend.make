# Empty compiler generated dependencies file for bench_switchless.
# This may be replaced when dependencies are built.
