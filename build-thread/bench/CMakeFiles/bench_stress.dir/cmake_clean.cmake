file(REMOVE_RECURSE
  "CMakeFiles/bench_stress.dir/bench_stress.cpp.o"
  "CMakeFiles/bench_stress.dir/bench_stress.cpp.o.d"
  "bench_stress"
  "bench_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
