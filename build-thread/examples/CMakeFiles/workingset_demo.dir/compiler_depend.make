# Empty compiler generated dependencies file for workingset_demo.
# This may be replaced when dependencies are built.
