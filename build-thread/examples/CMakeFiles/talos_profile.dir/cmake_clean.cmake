file(REMOVE_RECURSE
  "CMakeFiles/talos_profile.dir/talos_profile.cpp.o"
  "CMakeFiles/talos_profile.dir/talos_profile.cpp.o.d"
  "talos_profile"
  "talos_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/talos_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
