file(REMOVE_RECURSE
  "CMakeFiles/tracedb_shard_test.dir/tracedb_shard_test.cpp.o"
  "CMakeFiles/tracedb_shard_test.dir/tracedb_shard_test.cpp.o.d"
  "tracedb_shard_test"
  "tracedb_shard_test.pdb"
  "tracedb_shard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracedb_shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
