# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tracedb_shard_test.
