file(REMOVE_RECURSE
  "CMakeFiles/glamdring_test.dir/glamdring_test.cpp.o"
  "CMakeFiles/glamdring_test.dir/glamdring_test.cpp.o.d"
  "glamdring_test"
  "glamdring_test.pdb"
  "glamdring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glamdring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
