# Empty dependencies file for glamdring_test.
# This may be replaced when dependencies are built.
