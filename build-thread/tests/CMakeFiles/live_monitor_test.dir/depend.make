# Empty dependencies file for live_monitor_test.
# This may be replaced when dependencies are built.
