# Empty compiler generated dependencies file for online_analyzer_test.
# This may be replaced when dependencies are built.
