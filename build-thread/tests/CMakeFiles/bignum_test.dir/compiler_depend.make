# Empty compiler generated dependencies file for bignum_test.
# This may be replaced when dependencies are built.
