file(REMOVE_RECURSE
  "CMakeFiles/tracedb_v3_test.dir/tracedb_v3_test.cpp.o"
  "CMakeFiles/tracedb_v3_test.dir/tracedb_v3_test.cpp.o.d"
  "tracedb_v3_test"
  "tracedb_v3_test.pdb"
  "tracedb_v3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracedb_v3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
