# Empty compiler generated dependencies file for edl_test.
# This may be replaced when dependencies are built.
