# Empty compiler generated dependencies file for minissl_test.
# This may be replaced when dependencies are built.
