file(REMOVE_RECURSE
  "CMakeFiles/minidb_sql_test.dir/minidb_sql_test.cpp.o"
  "CMakeFiles/minidb_sql_test.dir/minidb_sql_test.cpp.o.d"
  "minidb_sql_test"
  "minidb_sql_test.pdb"
  "minidb_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minidb_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
