# Empty compiler generated dependencies file for minidb_sql_test.
# This may be replaced when dependencies are built.
