# Empty compiler generated dependencies file for stress_soak_test.
# This may be replaced when dependencies are built.
