file(REMOVE_RECURSE
  "CMakeFiles/stress_soak_test.dir/stress_soak_test.cpp.o"
  "CMakeFiles/stress_soak_test.dir/stress_soak_test.cpp.o.d"
  "stress_soak_test"
  "stress_soak_test.pdb"
  "stress_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
