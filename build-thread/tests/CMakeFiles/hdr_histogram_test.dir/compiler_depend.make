# Empty compiler generated dependencies file for hdr_histogram_test.
# This may be replaced when dependencies are built.
