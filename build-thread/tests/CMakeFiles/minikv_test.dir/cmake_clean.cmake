file(REMOVE_RECURSE
  "CMakeFiles/minikv_test.dir/minikv_test.cpp.o"
  "CMakeFiles/minikv_test.dir/minikv_test.cpp.o.d"
  "minikv_test"
  "minikv_test.pdb"
  "minikv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minikv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
