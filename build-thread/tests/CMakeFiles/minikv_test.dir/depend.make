# Empty dependencies file for minikv_test.
# This may be replaced when dependencies are built.
