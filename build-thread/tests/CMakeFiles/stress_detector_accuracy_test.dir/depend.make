# Empty dependencies file for stress_detector_accuracy_test.
# This may be replaced when dependencies are built.
