file(REMOVE_RECURSE
  "CMakeFiles/stress_detector_accuracy_test.dir/stress_detector_accuracy_test.cpp.o"
  "CMakeFiles/stress_detector_accuracy_test.dir/stress_detector_accuracy_test.cpp.o.d"
  "stress_detector_accuracy_test"
  "stress_detector_accuracy_test.pdb"
  "stress_detector_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_detector_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
