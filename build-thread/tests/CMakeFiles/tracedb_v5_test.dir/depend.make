# Empty dependencies file for tracedb_v5_test.
# This may be replaced when dependencies are built.
