# Empty dependencies file for sgxsim_sync_test.
# This may be replaced when dependencies are built.
