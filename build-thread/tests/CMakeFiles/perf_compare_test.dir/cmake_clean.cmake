file(REMOVE_RECURSE
  "CMakeFiles/perf_compare_test.dir/perf_compare_test.cpp.o"
  "CMakeFiles/perf_compare_test.dir/perf_compare_test.cpp.o.d"
  "perf_compare_test"
  "perf_compare_test.pdb"
  "perf_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
