
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perf_compare_test.cpp" "tests/CMakeFiles/perf_compare_test.dir/perf_compare_test.cpp.o" "gcc" "tests/CMakeFiles/perf_compare_test.dir/perf_compare_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/perf/CMakeFiles/sgxperf_core.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/replay/CMakeFiles/repro_replay.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/sgxsim/CMakeFiles/repro_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/telemetry/CMakeFiles/repro_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/tracedb/CMakeFiles/repro_tracedb.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
