file(REMOVE_RECURSE
  "CMakeFiles/perf_analyzer_test.dir/perf_analyzer_test.cpp.o"
  "CMakeFiles/perf_analyzer_test.dir/perf_analyzer_test.cpp.o.d"
  "perf_analyzer_test"
  "perf_analyzer_test.pdb"
  "perf_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
