# Empty dependencies file for perf_analyzer_test.
# This may be replaced when dependencies are built.
