# Empty dependencies file for chrome_export_test.
# This may be replaced when dependencies are built.
