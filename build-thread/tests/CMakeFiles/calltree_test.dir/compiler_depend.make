# Empty compiler generated dependencies file for calltree_test.
# This may be replaced when dependencies are built.
