file(REMOVE_RECURSE
  "CMakeFiles/calltree_test.dir/calltree_test.cpp.o"
  "CMakeFiles/calltree_test.dir/calltree_test.cpp.o.d"
  "calltree_test"
  "calltree_test.pdb"
  "calltree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calltree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
