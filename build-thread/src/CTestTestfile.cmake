# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-thread/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("crypto")
subdirs("tracedb")
subdirs("telemetry")
subdirs("sgxsim")
subdirs("replay")
subdirs("perf")
subdirs("bignum")
subdirs("minissl")
subdirs("minikv")
subdirs("minidb")
subdirs("glamdring")
subdirs("stress")
