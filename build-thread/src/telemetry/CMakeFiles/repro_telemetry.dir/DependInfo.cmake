
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/chrome_trace.cpp" "src/telemetry/CMakeFiles/repro_telemetry.dir/chrome_trace.cpp.o" "gcc" "src/telemetry/CMakeFiles/repro_telemetry.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/telemetry/sampler.cpp" "src/telemetry/CMakeFiles/repro_telemetry.dir/sampler.cpp.o" "gcc" "src/telemetry/CMakeFiles/repro_telemetry.dir/sampler.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/telemetry/CMakeFiles/repro_telemetry.dir/timeseries.cpp.o" "gcc" "src/telemetry/CMakeFiles/repro_telemetry.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/tracedb/CMakeFiles/repro_tracedb.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
