
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minikv/driver.cpp" "src/minikv/CMakeFiles/repro_minikv.dir/driver.cpp.o" "gcc" "src/minikv/CMakeFiles/repro_minikv.dir/driver.cpp.o.d"
  "/root/repo/src/minikv/proxy.cpp" "src/minikv/CMakeFiles/repro_minikv.dir/proxy.cpp.o" "gcc" "src/minikv/CMakeFiles/repro_minikv.dir/proxy.cpp.o.d"
  "/root/repo/src/minikv/store.cpp" "src/minikv/CMakeFiles/repro_minikv.dir/store.cpp.o" "gcc" "src/minikv/CMakeFiles/repro_minikv.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/sgxsim/CMakeFiles/repro_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
