# Empty dependencies file for repro_minikv.
# This may be replaced when dependencies are built.
