file(REMOVE_RECURSE
  "librepro_minikv.a"
)
