
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/analyzer.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/analyzer.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/perf/calltree.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/calltree.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/calltree.cpp.o.d"
  "/root/repo/src/perf/compare.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/compare.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/compare.cpp.o.d"
  "/root/repo/src/perf/live.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/live.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/live.cpp.o.d"
  "/root/repo/src/perf/logger.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/logger.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/logger.cpp.o.d"
  "/root/repo/src/perf/online.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/online.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/online.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/report.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/report.cpp.o.d"
  "/root/repo/src/perf/stream.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/stream.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/stream.cpp.o.d"
  "/root/repo/src/perf/stubs.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/stubs.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/stubs.cpp.o.d"
  "/root/repo/src/perf/timeline.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/timeline.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/timeline.cpp.o.d"
  "/root/repo/src/perf/workingset.cpp" "src/perf/CMakeFiles/sgxperf_core.dir/workingset.cpp.o" "gcc" "src/perf/CMakeFiles/sgxperf_core.dir/workingset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/replay/CMakeFiles/repro_replay.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/sgxsim/CMakeFiles/repro_sgxsim.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/tracedb/CMakeFiles/repro_tracedb.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/telemetry/CMakeFiles/repro_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
