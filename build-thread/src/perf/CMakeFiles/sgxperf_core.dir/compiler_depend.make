# Empty compiler generated dependencies file for sgxperf_core.
# This may be replaced when dependencies are built.
