file(REMOVE_RECURSE
  "CMakeFiles/sgxperf_core.dir/analyzer.cpp.o"
  "CMakeFiles/sgxperf_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/calltree.cpp.o"
  "CMakeFiles/sgxperf_core.dir/calltree.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/compare.cpp.o"
  "CMakeFiles/sgxperf_core.dir/compare.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/live.cpp.o"
  "CMakeFiles/sgxperf_core.dir/live.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/logger.cpp.o"
  "CMakeFiles/sgxperf_core.dir/logger.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/online.cpp.o"
  "CMakeFiles/sgxperf_core.dir/online.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/report.cpp.o"
  "CMakeFiles/sgxperf_core.dir/report.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/stream.cpp.o"
  "CMakeFiles/sgxperf_core.dir/stream.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/stubs.cpp.o"
  "CMakeFiles/sgxperf_core.dir/stubs.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/timeline.cpp.o"
  "CMakeFiles/sgxperf_core.dir/timeline.cpp.o.d"
  "CMakeFiles/sgxperf_core.dir/workingset.cpp.o"
  "CMakeFiles/sgxperf_core.dir/workingset.cpp.o.d"
  "libsgxperf_core.a"
  "libsgxperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
