file(REMOVE_RECURSE
  "CMakeFiles/repro_tracedb.dir/database.cpp.o"
  "CMakeFiles/repro_tracedb.dir/database.cpp.o.d"
  "CMakeFiles/repro_tracedb.dir/merge.cpp.o"
  "CMakeFiles/repro_tracedb.dir/merge.cpp.o.d"
  "CMakeFiles/repro_tracedb.dir/query.cpp.o"
  "CMakeFiles/repro_tracedb.dir/query.cpp.o.d"
  "CMakeFiles/repro_tracedb.dir/serialize.cpp.o"
  "CMakeFiles/repro_tracedb.dir/serialize.cpp.o.d"
  "CMakeFiles/repro_tracedb.dir/shard.cpp.o"
  "CMakeFiles/repro_tracedb.dir/shard.cpp.o.d"
  "librepro_tracedb.a"
  "librepro_tracedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tracedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
