
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracedb/database.cpp" "src/tracedb/CMakeFiles/repro_tracedb.dir/database.cpp.o" "gcc" "src/tracedb/CMakeFiles/repro_tracedb.dir/database.cpp.o.d"
  "/root/repo/src/tracedb/merge.cpp" "src/tracedb/CMakeFiles/repro_tracedb.dir/merge.cpp.o" "gcc" "src/tracedb/CMakeFiles/repro_tracedb.dir/merge.cpp.o.d"
  "/root/repo/src/tracedb/query.cpp" "src/tracedb/CMakeFiles/repro_tracedb.dir/query.cpp.o" "gcc" "src/tracedb/CMakeFiles/repro_tracedb.dir/query.cpp.o.d"
  "/root/repo/src/tracedb/serialize.cpp" "src/tracedb/CMakeFiles/repro_tracedb.dir/serialize.cpp.o" "gcc" "src/tracedb/CMakeFiles/repro_tracedb.dir/serialize.cpp.o.d"
  "/root/repo/src/tracedb/shard.cpp" "src/tracedb/CMakeFiles/repro_tracedb.dir/shard.cpp.o" "gcc" "src/tracedb/CMakeFiles/repro_tracedb.dir/shard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
