file(REMOVE_RECURSE
  "librepro_tracedb.a"
)
