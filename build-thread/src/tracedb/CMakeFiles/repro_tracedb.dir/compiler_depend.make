# Empty compiler generated dependencies file for repro_tracedb.
# This may be replaced when dependencies are built.
