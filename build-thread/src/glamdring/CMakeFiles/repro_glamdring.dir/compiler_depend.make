# Empty compiler generated dependencies file for repro_glamdring.
# This may be replaced when dependencies are built.
