file(REMOVE_RECURSE
  "librepro_glamdring.a"
)
