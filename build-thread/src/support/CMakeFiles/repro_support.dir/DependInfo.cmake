
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/clock.cpp" "src/support/CMakeFiles/repro_support.dir/clock.cpp.o" "gcc" "src/support/CMakeFiles/repro_support.dir/clock.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/support/CMakeFiles/repro_support.dir/histogram.cpp.o" "gcc" "src/support/CMakeFiles/repro_support.dir/histogram.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/support/CMakeFiles/repro_support.dir/json.cpp.o" "gcc" "src/support/CMakeFiles/repro_support.dir/json.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/repro_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/repro_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/strutil.cpp" "src/support/CMakeFiles/repro_support.dir/strutil.cpp.o" "gcc" "src/support/CMakeFiles/repro_support.dir/strutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
