file(REMOVE_RECURSE
  "CMakeFiles/repro_support.dir/clock.cpp.o"
  "CMakeFiles/repro_support.dir/clock.cpp.o.d"
  "CMakeFiles/repro_support.dir/histogram.cpp.o"
  "CMakeFiles/repro_support.dir/histogram.cpp.o.d"
  "CMakeFiles/repro_support.dir/json.cpp.o"
  "CMakeFiles/repro_support.dir/json.cpp.o.d"
  "CMakeFiles/repro_support.dir/stats.cpp.o"
  "CMakeFiles/repro_support.dir/stats.cpp.o.d"
  "CMakeFiles/repro_support.dir/strutil.cpp.o"
  "CMakeFiles/repro_support.dir/strutil.cpp.o.d"
  "librepro_support.a"
  "librepro_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
