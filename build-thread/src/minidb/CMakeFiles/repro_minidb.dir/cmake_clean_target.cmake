file(REMOVE_RECURSE
  "librepro_minidb.a"
)
