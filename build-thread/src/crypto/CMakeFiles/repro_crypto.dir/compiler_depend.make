# Empty compiler generated dependencies file for repro_crypto.
# This may be replaced when dependencies are built.
