file(REMOVE_RECURSE
  "CMakeFiles/repro_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/repro_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/repro_crypto.dir/hmac.cpp.o"
  "CMakeFiles/repro_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/repro_crypto.dir/sha256.cpp.o"
  "CMakeFiles/repro_crypto.dir/sha256.cpp.o.d"
  "librepro_crypto.a"
  "librepro_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
