# Empty compiler generated dependencies file for repro_sgxsim.
# This may be replaced when dependencies are built.
