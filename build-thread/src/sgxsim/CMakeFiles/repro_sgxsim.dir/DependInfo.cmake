
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgxsim/cost_model.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/cost_model.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sgxsim/driver.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/driver.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/driver.cpp.o.d"
  "/root/repo/src/sgxsim/edl.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/edl.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/edl.cpp.o.d"
  "/root/repo/src/sgxsim/enclave.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/enclave.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/enclave.cpp.o.d"
  "/root/repo/src/sgxsim/heap.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/heap.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/heap.cpp.o.d"
  "/root/repo/src/sgxsim/runtime.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/runtime.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/runtime.cpp.o.d"
  "/root/repo/src/sgxsim/trusted.cpp" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/trusted.cpp.o" "gcc" "src/sgxsim/CMakeFiles/repro_sgxsim.dir/trusted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-thread/src/support/CMakeFiles/repro_support.dir/DependInfo.cmake"
  "/root/repo/build-thread/src/crypto/CMakeFiles/repro_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
