file(REMOVE_RECURSE
  "librepro_sgxsim.a"
)
