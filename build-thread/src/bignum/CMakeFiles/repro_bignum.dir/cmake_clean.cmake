file(REMOVE_RECURSE
  "CMakeFiles/repro_bignum.dir/bignum.cpp.o"
  "CMakeFiles/repro_bignum.dir/bignum.cpp.o.d"
  "CMakeFiles/repro_bignum.dir/signing.cpp.o"
  "CMakeFiles/repro_bignum.dir/signing.cpp.o.d"
  "librepro_bignum.a"
  "librepro_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
