file(REMOVE_RECURSE
  "CMakeFiles/repro_stress.dir/harness.cpp.o"
  "CMakeFiles/repro_stress.dir/harness.cpp.o.d"
  "CMakeFiles/repro_stress.dir/stressor.cpp.o"
  "CMakeFiles/repro_stress.dir/stressor.cpp.o.d"
  "librepro_stress.a"
  "librepro_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
