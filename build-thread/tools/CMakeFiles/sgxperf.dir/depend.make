# Empty dependencies file for sgxperf.
# This may be replaced when dependencies are built.
