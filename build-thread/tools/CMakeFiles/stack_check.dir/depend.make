# Empty dependencies file for stack_check.
# This may be replaced when dependencies are built.
